//! The metrics registry: atomic counters, per-cache 3C counters, log2
//! histograms, and the flight recorder.

use crate::event::{CacheKind, CacheOutcome, Event, EventRecord};
use crate::snapshot::{HistogramSnapshot, MetricsSnapshot};
use crate::span::{Stage, WorkerOccupancyRow, MAX_WORKERS, NUM_STAGES};
use crate::trace::FlowTracer;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Number of log2 buckets (covers the full `u64` range).
pub(crate) const BUCKETS: usize = 64;

/// Default flight-recorder capacity (events).
pub const DEFAULT_EVENT_CAPACITY: usize = 1024;

/// Every scalar counter the registry tracks. Names are hierarchical
/// (`component.metric`) and shared with the legacy stats structs'
/// `contribute` views, so a registry snapshot and a sum of legacy
/// structs land in the same namespace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Counter {
    /// Datagrams sealed and sent by endpoints.
    Sends,
    /// Datagrams verified and accepted by endpoints.
    Receives,
    /// Datagrams dropped by the freshness window.
    ReplayDrops,
    /// Datagrams dropped by MAC verification.
    MacDrops,
    /// Datagrams dropped as unparseable/undecryptable.
    MalformedDrops,
    /// Bodies encrypted.
    Encryptions,
    /// Bodies decrypted.
    Decryptions,
    /// Zero-message flow-key derivations (cache-miss path).
    KeyDerivations,
    /// Master-key daemon upcalls.
    MkdUpcalls,
    /// Master-key daemon failures.
    MkdFailures,
    /// FAM classifications.
    FamClassifications,
    /// Datagrams that joined a live flow.
    FamJoinedExisting,
    /// Flows started (fresh or replacing an expired entry).
    FamFlowsStarted,
    /// FST collisions (live entry evicted).
    FamCollisions,
    /// Flows whose sfl was seen before (Fig. 14).
    FamRepeatedFlows,
    /// FST entries removed by sweeping.
    FamSwept,
    /// Output-hook entries.
    HookOutputEntries,
    /// Output-hook successes (datagrams protected).
    HookOutputOk,
    /// Output-hook failures.
    HookOutputErrors,
    /// Input-hook entries.
    HookInputEntries,
    /// Input-hook successes (datagrams verified).
    HookInputOk,
    /// Input-hook failures.
    HookInputErrors,
    /// Outgoing datagrams that required fragmentation.
    FragmentedDatagrams,
    /// Total fragments produced.
    FragmentsProduced,
    /// Fragmented datagrams fully reassembled.
    ReassembledDatagrams,
    /// Reassembly buffers dropped on timeout.
    ReassemblyTimeouts,
    /// MRT retransmissions.
    MrtRetransmits,
    /// Certificate verification failures in the PVC.
    PvcVerifyFailures,
    /// Buffer-pool takes served from the freelist.
    PoolHits,
    /// Buffer-pool takes that had to allocate a fresh buffer.
    PoolMisses,
    /// Datagrams dispatched to parallel-sealer workers.
    SealerJobs,
    /// Batches submitted to the parallel sealer.
    SealerBatches,
    /// Wire payloads dispatched to parallel-sealer workers for opening.
    SealerOpenJobs,
    /// Open batches submitted to the parallel sealer.
    SealerOpenBatches,
    /// Output batches run through the host pipeline's security hooks.
    PipelineOutputBatches,
    /// Input batches run through the host pipeline's security hooks.
    PipelineInputBatches,
    /// Datagrams carried by pipeline hook batches (both directions).
    PipelineBatchDatagrams,
    /// Retry attempts made after a failure (directory fetch, MKD upcall).
    RetryAttempts,
    /// Retried operations that gave up (attempts/deadline exhausted).
    RetryExhausted,
    /// Circuit-breaker transitions to open.
    BreakerOpens,
    /// Circuit-breaker transitions to half-open (recovery probes).
    BreakerHalfOpens,
    /// Circuit-breaker transitions back to closed.
    BreakerCloses,
    /// Requests rejected without trying because a breaker was open.
    BreakerFastFails,
    /// Datagrams parked awaiting key material.
    ParkParked,
    /// Parked datagrams released and processed.
    ParkReleased,
    /// Parked datagrams dropped on deadline expiry.
    ParkExpired,
    /// Datagrams rejected because the parking queue was full.
    ParkOverflow,
    /// Datagrams passed through unprotected under a fail-open verdict.
    DegradeFailOpen,
    /// Datagrams dropped under a fail-closed verdict.
    DegradeFailClosed,
    /// Per-worker sub-batches processed by the worker runtime.
    WorkerBatches,
    /// Sub-batch pushes that found a worker ring full and had to back
    /// off (producer-side backpressure).
    RingStalls,
    /// Datagrams rejected by the overload-shed policy after the
    /// producer's bounded spin on a saturated ring expired. Every shed
    /// datagram still receives a Reject verdict — never a silent drop.
    ShedRejected,
    /// Sub-batches shed whole by the overload policy.
    ShedBatches,
    /// Worker-loop panics caught by the in-thread supervisor.
    WorkerPanics,
    /// Supervised respawns: a panicked worker rebuilt its shard state
    /// and resumed (soft state re-warms through normal cache misses).
    WorkerRespawns,
    /// Flight-recorder events overwritten before anyone read them
    /// (ring overflow).
    EventsDropped,
    /// Buffers recycled into a pool's freelist.
    PoolReturns,
    /// Returned buffers the pool discarded (freelist full or wrong
    /// capacity).
    PoolDiscards,
    /// Total (virtual) microseconds breakers spent closed before
    /// transitioning away.
    BreakerTimeClosedUs,
    /// Total (virtual) microseconds breakers spent open before
    /// transitioning away.
    BreakerTimeOpenUs,
    /// Total (virtual) microseconds breakers spent half-open before
    /// transitioning away.
    BreakerTimeHalfOpenUs,
    /// Datagrams sealed under the paper DES-CBC + keyed-MD5 profile.
    SealSuitePaper,
    /// Datagrams sealed under the fast word-sliced DES-CTR profile.
    SealSuiteFastDes,
    /// Datagrams sealed under the ChaCha20-Poly1305 AEAD profile.
    SealSuiteAead,
    /// Datagrams opened under the paper DES-CBC + keyed-MD5 profile.
    OpenSuitePaper,
    /// Datagrams opened under the fast word-sliced DES-CTR profile.
    OpenSuiteFastDes,
    /// Datagrams opened under the ChaCha20-Poly1305 AEAD profile.
    OpenSuiteAead,
    /// Sub-batch resolutions run by the deferred batch verifier.
    BatchAuthResolutions,
    /// Datagrams covered by batch-verify resolutions.
    BatchAuthChecked,
    /// Range folds performed while resolving (1 per clean sub-batch).
    BatchAuthFolds,
    /// Bisection steps taken isolating corrupt datagrams.
    BatchAuthBisections,
    /// Datagrams rejected by batch verification.
    BatchAuthRejected,
}

/// Number of scalar counters.
const NUM_COUNTERS: usize = 72;

impl Counter {
    /// All counters, in snapshot order.
    pub const ALL: [Counter; NUM_COUNTERS] = [
        Counter::Sends,
        Counter::Receives,
        Counter::ReplayDrops,
        Counter::MacDrops,
        Counter::MalformedDrops,
        Counter::Encryptions,
        Counter::Decryptions,
        Counter::KeyDerivations,
        Counter::MkdUpcalls,
        Counter::MkdFailures,
        Counter::FamClassifications,
        Counter::FamJoinedExisting,
        Counter::FamFlowsStarted,
        Counter::FamCollisions,
        Counter::FamRepeatedFlows,
        Counter::FamSwept,
        Counter::HookOutputEntries,
        Counter::HookOutputOk,
        Counter::HookOutputErrors,
        Counter::HookInputEntries,
        Counter::HookInputOk,
        Counter::HookInputErrors,
        Counter::FragmentedDatagrams,
        Counter::FragmentsProduced,
        Counter::ReassembledDatagrams,
        Counter::ReassemblyTimeouts,
        Counter::MrtRetransmits,
        Counter::PvcVerifyFailures,
        Counter::PoolHits,
        Counter::PoolMisses,
        Counter::SealerJobs,
        Counter::SealerBatches,
        Counter::SealerOpenJobs,
        Counter::SealerOpenBatches,
        Counter::PipelineOutputBatches,
        Counter::PipelineInputBatches,
        Counter::PipelineBatchDatagrams,
        Counter::RetryAttempts,
        Counter::RetryExhausted,
        Counter::BreakerOpens,
        Counter::BreakerHalfOpens,
        Counter::BreakerCloses,
        Counter::BreakerFastFails,
        Counter::ParkParked,
        Counter::ParkReleased,
        Counter::ParkExpired,
        Counter::ParkOverflow,
        Counter::DegradeFailOpen,
        Counter::DegradeFailClosed,
        Counter::WorkerBatches,
        Counter::RingStalls,
        Counter::ShedRejected,
        Counter::ShedBatches,
        Counter::WorkerPanics,
        Counter::WorkerRespawns,
        Counter::EventsDropped,
        Counter::PoolReturns,
        Counter::PoolDiscards,
        Counter::BreakerTimeClosedUs,
        Counter::BreakerTimeOpenUs,
        Counter::BreakerTimeHalfOpenUs,
        Counter::SealSuitePaper,
        Counter::SealSuiteFastDes,
        Counter::SealSuiteAead,
        Counter::OpenSuitePaper,
        Counter::OpenSuiteFastDes,
        Counter::OpenSuiteAead,
        Counter::BatchAuthResolutions,
        Counter::BatchAuthChecked,
        Counter::BatchAuthFolds,
        Counter::BatchAuthBisections,
        Counter::BatchAuthRejected,
    ];

    /// The hierarchical counter key.
    pub fn name(self) -> &'static str {
        match self {
            Counter::Sends => "endpoint.sends",
            Counter::Receives => "endpoint.receives",
            Counter::ReplayDrops => "endpoint.replay_drops",
            Counter::MacDrops => "endpoint.mac_drops",
            Counter::MalformedDrops => "endpoint.malformed_drops",
            Counter::Encryptions => "endpoint.encryptions",
            Counter::Decryptions => "endpoint.decryptions",
            Counter::KeyDerivations => "endpoint.key_derivations",
            Counter::MkdUpcalls => "mkd.upcalls",
            Counter::MkdFailures => "mkd.failures",
            Counter::FamClassifications => "fam.classifications",
            Counter::FamJoinedExisting => "fam.joined_existing",
            Counter::FamFlowsStarted => "fam.flows_started",
            Counter::FamCollisions => "fam.collisions",
            Counter::FamRepeatedFlows => "fam.repeated_flows",
            Counter::FamSwept => "fam.swept",
            Counter::HookOutputEntries => "hooks.output_entries",
            Counter::HookOutputOk => "hooks.output_ok",
            Counter::HookOutputErrors => "hooks.output_errors",
            Counter::HookInputEntries => "hooks.input_entries",
            Counter::HookInputOk => "hooks.input_ok",
            Counter::HookInputErrors => "hooks.input_errors",
            Counter::FragmentedDatagrams => "net.fragmented_datagrams",
            Counter::FragmentsProduced => "net.fragments_produced",
            Counter::ReassembledDatagrams => "net.reassembled_datagrams",
            Counter::ReassemblyTimeouts => "net.reassembly_timeouts",
            Counter::MrtRetransmits => "mrt.retransmits",
            Counter::PvcVerifyFailures => "pvc.verify_failures",
            Counter::PoolHits => "pool.hits",
            Counter::PoolMisses => "pool.misses",
            Counter::SealerJobs => "sealer.jobs",
            Counter::SealerBatches => "sealer.batches",
            Counter::SealerOpenJobs => "sealer.open_jobs",
            Counter::SealerOpenBatches => "sealer.open_batches",
            Counter::PipelineOutputBatches => "pipeline.output_batches",
            Counter::PipelineInputBatches => "pipeline.input_batches",
            Counter::PipelineBatchDatagrams => "pipeline.batch_datagrams",
            Counter::RetryAttempts => "retry.attempts",
            Counter::RetryExhausted => "retry.exhausted",
            Counter::BreakerOpens => "breaker.opened",
            Counter::BreakerHalfOpens => "breaker.half_open",
            Counter::BreakerCloses => "breaker.closed",
            Counter::BreakerFastFails => "breaker.fast_fails",
            Counter::ParkParked => "park.parked",
            Counter::ParkReleased => "park.released",
            Counter::ParkExpired => "park.expired",
            Counter::ParkOverflow => "park.overflow",
            Counter::DegradeFailOpen => "degrade.fail_open",
            Counter::DegradeFailClosed => "degrade.fail_closed",
            Counter::WorkerBatches => "hooks.worker_batches",
            Counter::RingStalls => "hooks.ring_stalls",
            Counter::ShedRejected => "hooks.shed.rejected",
            Counter::ShedBatches => "hooks.shed.batches",
            Counter::WorkerPanics => "hooks.worker_panics",
            Counter::WorkerRespawns => "hooks.worker_respawns",
            Counter::EventsDropped => "obs.events_dropped",
            Counter::PoolReturns => "pool.returns",
            Counter::PoolDiscards => "pool.discards",
            Counter::BreakerTimeClosedUs => "breaker.time_closed_us",
            Counter::BreakerTimeOpenUs => "breaker.time_open_us",
            Counter::BreakerTimeHalfOpenUs => "breaker.time_half_open_us",
            Counter::SealSuitePaper => "crypto.seal.paper",
            Counter::SealSuiteFastDes => "crypto.seal.fast_des",
            Counter::SealSuiteAead => "crypto.seal.aead_chacha_poly",
            Counter::OpenSuitePaper => "crypto.open.paper",
            Counter::OpenSuiteFastDes => "crypto.open.fast_des",
            Counter::OpenSuiteAead => "crypto.open.aead_chacha_poly",
            Counter::BatchAuthResolutions => "batchauth.resolutions",
            Counter::BatchAuthChecked => "batchauth.checked",
            Counter::BatchAuthFolds => "batchauth.folds",
            Counter::BatchAuthBisections => "batchauth.bisections",
            Counter::BatchAuthRejected => "batchauth.rejected",
        }
    }

    fn index(self) -> usize {
        Counter::ALL.iter().position(|c| *c == self).unwrap()
    }
}

/// The log2 histograms the registry tracks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Histogram {
    /// Microseconds per zero-message key derivation.
    KeyDerivationMicros,
    /// Payload bytes per sent datagram.
    SendBytes,
    /// Payload bytes per received datagram.
    ReceiveBytes,
}

/// Number of histograms.
const NUM_HISTOGRAMS: usize = 3;

impl Histogram {
    /// All histograms, in snapshot order.
    pub const ALL: [Histogram; NUM_HISTOGRAMS] = [
        Histogram::KeyDerivationMicros,
        Histogram::SendBytes,
        Histogram::ReceiveBytes,
    ];

    /// The histogram's snapshot key.
    pub fn name(self) -> &'static str {
        match self {
            Histogram::KeyDerivationMicros => "key_derivation_us",
            Histogram::SendBytes => "send_bytes",
            Histogram::ReceiveBytes => "receive_bytes",
        }
    }

    fn index(self) -> usize {
        self as usize
    }
}

/// Per-cache-kind 3C counters (same bookkeeping as
/// `fbs_core::cache::CacheStats`, but shared and atomic).
#[derive(Debug, Default)]
struct CacheCounters {
    hits: AtomicU64,
    cold_misses: AtomicU64,
    capacity_misses: AtomicU64,
    collision_misses: AtomicU64,
    insertions: AtomicU64,
    evictions: AtomicU64,
    /// Gauge (not a counter): bytes currently charged for resident
    /// entries across every cache of this kind. Caches add on insert
    /// and subtract on evict/invalidate, so the value tracks live
    /// residency rather than accumulating.
    resident_bytes: AtomicU64,
}

/// Log2 histogram with atomic buckets; bucket 0 holds values `<= 1`,
/// bucket `i` holds values in `[2^i, 2^(i+1))` — the same bucketing as
/// `fbs-trace`'s `LogHistogram`.
struct AtomicLogHistogram {
    buckets: [AtomicU64; BUCKETS],
    /// Exact sum of observed values (two relaxed `fetch_add`s per
    /// observation; a scraper may see the bucket before the sum, so
    /// readers tolerate one in-flight sample per writer).
    sum: AtomicU64,
}

impl AtomicLogHistogram {
    fn new() -> Self {
        AtomicLogHistogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            sum: AtomicU64::new(0),
        }
    }

    fn observe(&self, value: u64) {
        let b = if value <= 1 {
            0
        } else {
            63 - value.leading_zeros() as usize
        };
        self.buckets[b].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
    }

    fn snapshot(&self) -> HistogramSnapshot {
        let mut buckets = Vec::new();
        for (i, b) in self.buckets.iter().enumerate() {
            let count = b.load(Ordering::Relaxed);
            if count > 0 {
                let lo = if i == 0 { 0 } else { 1u64 << i };
                let hi = if i >= 63 {
                    u64::MAX
                } else {
                    (1u64 << (i + 1)) - 1
                };
                buckets.push((lo, hi, count));
            }
        }
        HistogramSnapshot {
            buckets,
            sum: self.sum.load(Ordering::Relaxed),
        }
    }
}

/// Per-worker occupancy cells (fixed-size so recording is a pair of
/// relaxed `fetch_add`s with no allocation).
#[derive(Default)]
struct WorkerOccCell {
    stalls: AtomicU64,
    stall_ns: AtomicU64,
    batches: AtomicU64,
    busy_ns: AtomicU64,
    panics: AtomicU64,
}

/// Rows in the per-shard memory gauge table. Shard `MAX_SHARDS - 1`
/// also absorbs any higher-numbered shard, mirroring the worker
/// occupancy table's clamping.
pub const MAX_SHARDS: usize = 64;

/// Per-shard memory-budget gauges (fixed-size cells; refreshing is a
/// handful of relaxed stores with no allocation). Values are *stored*,
/// not added: the owning worker republishes its shard's ledger after
/// each batch.
#[derive(Default)]
struct ShardMemCell {
    tfkc_bytes: AtomicU64,
    rfkc_bytes: AtomicU64,
    mkc_bytes: AtomicU64,
    fam_bytes: AtomicU64,
    limit_bytes: AtomicU64,
    exceeded: AtomicU64,
}

/// One shard's memory ledger, as published to the registry's gauge
/// table (see [`MetricsRegistry::set_shard_mem`]). Field names mirror
/// the `mem.shard.<i>.*` snapshot namespace.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ShardMemSample {
    /// Bytes resident in the shard's transmit flow-key cache.
    pub tfkc_bytes: u64,
    /// Bytes resident in the shard's receive flow-key cache.
    pub rfkc_bytes: u64,
    /// Bytes charged for master-key cache entries.
    pub mkc_bytes: u64,
    /// Bytes charged for flow attribute map state.
    pub fam_bytes: u64,
    /// The shard's budget ceiling (0 = unbounded).
    pub limit_bytes: u64,
    /// Charges that found the budget full.
    pub exceeded: u64,
}

impl ShardMemSample {
    /// Total resident bytes across every kind.
    pub fn used_bytes(&self) -> u64 {
        self.tfkc_bytes + self.rfkc_bytes + self.mkc_bytes + self.fam_bytes
    }
}

struct RecorderInner {
    buf: Vec<EventRecord>,
    /// Next overwrite position once the ring is full.
    write: usize,
    seq: u64,
}

/// The unified metrics registry. Cheap to share (`Arc`), cheap when
/// absent (callers hold `Option<Arc<MetricsRegistry>>` and skip all of
/// this on `None`).
pub struct MetricsRegistry {
    counters: [AtomicU64; NUM_COUNTERS],
    caches: [CacheCounters; 5],
    histograms: [AtomicLogHistogram; NUM_HISTOGRAMS],
    /// Per-stage nanosecond latency histograms for the batch pipeline.
    stages: [AtomicLogHistogram; NUM_STAGES],
    /// Per-worker ring-stall/busy occupancy table.
    workers: [WorkerOccCell; MAX_WORKERS],
    /// Per-shard memory-budget gauge table.
    shard_mem: [ShardMemCell; MAX_SHARDS],
    /// Optional flow tracer, reachable by every component that holds
    /// this registry (one atomic load when unset).
    tracer: OnceLock<Arc<FlowTracer>>,
    recorder: Mutex<RecorderInner>,
    capacity: usize,
    /// Microsecond time source stamped onto events. Defaults to a
    /// constant 0 so a bare registry is fully deterministic; wire it to
    /// a clock (e.g. `fbs_core::clock::Clock::now_micros`) for real
    /// timelines.
    time: Box<dyn Fn() -> u64 + Send + Sync>,
}

impl Default for MetricsRegistry {
    fn default() -> Self {
        MetricsRegistry::new()
    }
}

impl std::fmt::Debug for MetricsRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MetricsRegistry")
            .field("event_capacity", &self.capacity)
            .finish_non_exhaustive()
    }
}

impl MetricsRegistry {
    /// Registry with the default flight-recorder capacity
    /// ([`DEFAULT_EVENT_CAPACITY`]).
    pub fn new() -> Self {
        MetricsRegistry::with_event_capacity(DEFAULT_EVENT_CAPACITY)
    }

    /// Registry whose flight recorder keeps the last `capacity` events.
    /// A capacity of 0 disables event recording (counters and
    /// histograms still work).
    pub fn with_event_capacity(capacity: usize) -> Self {
        MetricsRegistry {
            counters: std::array::from_fn(|_| AtomicU64::new(0)),
            caches: std::array::from_fn(|_| CacheCounters::default()),
            histograms: std::array::from_fn(|_| AtomicLogHistogram::new()),
            stages: std::array::from_fn(|_| AtomicLogHistogram::new()),
            workers: std::array::from_fn(|_| WorkerOccCell::default()),
            shard_mem: std::array::from_fn(|_| ShardMemCell::default()),
            tracer: OnceLock::new(),
            recorder: Mutex::new(RecorderInner {
                buf: Vec::with_capacity(capacity.min(4096)),
                write: 0,
                seq: 0,
            }),
            capacity,
            time: Box::new(|| 0),
        }
    }

    /// Replace the event time source (builder style; call before
    /// sharing the registry).
    pub fn with_time_source(mut self, f: impl Fn() -> u64 + Send + Sync + 'static) -> Self {
        self.time = Box::new(f);
        self
    }

    /// Increment a scalar counter by 1.
    pub fn incr(&self, c: Counter) {
        self.add(c, 1);
    }

    /// Increment a scalar counter by `n`.
    pub fn add(&self, c: Counter, n: u64) {
        self.counters[c.index()].fetch_add(n, Ordering::Relaxed);
    }

    /// Read a scalar counter.
    pub fn counter(&self, c: Counter) -> u64 {
        self.counters[c.index()].load(Ordering::Relaxed)
    }

    /// Record an insertion into cache `kind` and whether it evicted.
    pub fn cache_insertion(&self, kind: CacheKind, evicted: bool) {
        let c = &self.caches[kind.index()];
        c.insertions.fetch_add(1, Ordering::Relaxed);
        if evicted {
            c.evictions.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Record an eviction from cache `kind` that did not ride on an
    /// insertion's `evicted` flag — budget-driven evictions and
    /// resize-migration conflicts book through here so the eviction
    /// count stays single-sourced.
    pub fn cache_eviction(&self, kind: CacheKind) {
        self.caches[kind.index()]
            .evictions
            .fetch_add(1, Ordering::Relaxed);
    }

    /// Raise the `cache.<kind>.resident_bytes` gauge by `bytes`.
    pub fn cache_resident_add(&self, kind: CacheKind, bytes: u64) {
        self.caches[kind.index()]
            .resident_bytes
            .fetch_add(bytes, Ordering::Relaxed);
    }

    /// Lower the `cache.<kind>.resident_bytes` gauge by `bytes`
    /// (saturating at zero rather than wrapping).
    pub fn cache_resident_sub(&self, kind: CacheKind, bytes: u64) {
        let cell = &self.caches[kind.index()].resident_bytes;
        let mut cur = cell.load(Ordering::Relaxed);
        loop {
            let next = cur.saturating_sub(bytes);
            match cell.compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed) {
                Ok(_) => return,
                Err(seen) => cur = seen,
            }
        }
    }

    /// Publish shard `shard`'s memory ledger to the per-shard gauge
    /// table (plain stores: the worker that owns the shard republishes
    /// after each batch, so the table always shows the latest ledger).
    pub fn set_shard_mem(&self, shard: usize, sample: ShardMemSample) {
        let cell = &self.shard_mem[shard.min(MAX_SHARDS - 1)];
        cell.tfkc_bytes.store(sample.tfkc_bytes, Ordering::Relaxed);
        cell.rfkc_bytes.store(sample.rfkc_bytes, Ordering::Relaxed);
        cell.mkc_bytes.store(sample.mkc_bytes, Ordering::Relaxed);
        cell.fam_bytes.store(sample.fam_bytes, Ordering::Relaxed);
        cell.limit_bytes
            .store(sample.limit_bytes, Ordering::Relaxed);
        cell.exceeded.store(sample.exceeded, Ordering::Relaxed);
    }

    /// Read back shard `shard`'s published memory ledger.
    pub fn shard_mem(&self, shard: usize) -> ShardMemSample {
        let cell = &self.shard_mem[shard.min(MAX_SHARDS - 1)];
        ShardMemSample {
            tfkc_bytes: cell.tfkc_bytes.load(Ordering::Relaxed),
            rfkc_bytes: cell.rfkc_bytes.load(Ordering::Relaxed),
            mkc_bytes: cell.mkc_bytes.load(Ordering::Relaxed),
            fam_bytes: cell.fam_bytes.load(Ordering::Relaxed),
            limit_bytes: cell.limit_bytes.load(Ordering::Relaxed),
            exceeded: cell.exceeded.load(Ordering::Relaxed),
        }
    }

    /// Add a sample to a histogram (without going through an event).
    pub fn observe(&self, h: Histogram, value: u64) {
        self.histograms[h.index()].observe(value);
    }

    /// Record a stage span: `ns` nanoseconds spent in pipeline stage
    /// `s`. Two relaxed `fetch_add`s; no allocation.
    pub fn observe_stage(&self, s: Stage, ns: u64) {
        self.stages[s.index()].observe(ns);
    }

    /// Record a producer stall on worker `worker`'s ring: `ns`
    /// nanoseconds of backpressure delay before the push succeeded.
    pub fn worker_stall(&self, worker: usize, ns: u64) {
        let cell = &self.workers[worker.min(MAX_WORKERS - 1)];
        cell.stalls.fetch_add(1, Ordering::Relaxed);
        cell.stall_ns.fetch_add(ns, Ordering::Relaxed);
    }

    /// Record a sub-batch processed by worker `worker` that kept it
    /// busy for `ns` nanoseconds.
    pub fn worker_busy(&self, worker: usize, ns: u64) {
        let cell = &self.workers[worker.min(MAX_WORKERS - 1)];
        cell.batches.fetch_add(1, Ordering::Relaxed);
        cell.busy_ns.fetch_add(ns, Ordering::Relaxed);
    }

    /// Record a panic caught by worker `worker`'s in-thread supervisor
    /// (also bumps the global [`Counter::WorkerPanics`]).
    pub fn worker_panic(&self, worker: usize) {
        let cell = &self.workers[worker.min(MAX_WORKERS - 1)];
        cell.panics.fetch_add(1, Ordering::Relaxed);
        self.incr(Counter::WorkerPanics);
    }

    /// The per-worker occupancy table (rows with activity only).
    pub fn worker_occupancy_table(&self) -> Vec<WorkerOccupancyRow> {
        let mut rows = Vec::new();
        for (i, cell) in self.workers.iter().enumerate() {
            let row = WorkerOccupancyRow {
                worker: i,
                stalls: cell.stalls.load(Ordering::Relaxed),
                stall_ns: cell.stall_ns.load(Ordering::Relaxed),
                batches: cell.batches.load(Ordering::Relaxed),
                busy_ns: cell.busy_ns.load(Ordering::Relaxed),
                panics: cell.panics.load(Ordering::Relaxed),
            };
            if !row.is_empty() {
                rows.push(row);
            }
        }
        rows
    }

    /// A stage's latency histogram.
    pub fn stage_histogram(&self, s: Stage) -> HistogramSnapshot {
        self.stages[s.index()].snapshot()
    }

    /// Attach a flow tracer. First attach wins; later calls are
    /// ignored (the registry is already shared by then).
    pub fn set_tracer(&self, tracer: Arc<FlowTracer>) {
        let _ = self.tracer.set(tracer);
    }

    /// The attached flow tracer, if any (one atomic load when unset).
    pub fn tracer(&self) -> Option<&Arc<FlowTracer>> {
        self.tracer.get()
    }

    /// Record an event: updates the counters/histograms the event
    /// implies, then appends it to the flight recorder.
    pub fn record(&self, event: Event) {
        self.apply(&event);
        // A breaker flip is a global condition, not owned by any one
        // flow: mirror it onto the trace timeline so a sampled flow's
        // stall can be read against keying-plane health.
        if let Event::BreakerTransition {
            to, in_state_us, ..
        } = &event
        {
            if let Some(tracer) = self.tracer.get() {
                tracer.annotate("breaker_transition", to.name(), (self.time)(), *in_state_us);
            }
        }
        if self.capacity == 0 {
            return;
        }
        let t_us = (self.time)();
        let mut rec = self.recorder.lock().unwrap_or_else(|e| e.into_inner());
        rec.seq += 1;
        let entry = EventRecord {
            seq: rec.seq,
            t_us,
            event,
        };
        if rec.buf.len() < self.capacity {
            rec.buf.push(entry);
        } else {
            // Overwriting unread history: make the loss visible.
            self.incr(Counter::EventsDropped);
            let w = rec.write;
            rec.buf[w] = entry;
            rec.write = (w + 1) % self.capacity;
        }
    }

    /// Counter/histogram side effects of an event.
    fn apply(&self, event: &Event) {
        use crate::event::Direction;
        match *event {
            Event::HookEntry { dir } => self.incr(match dir {
                Direction::Output => Counter::HookOutputEntries,
                Direction::Input => Counter::HookInputEntries,
            }),
            Event::HookExit { dir, ok } => self.incr(match (dir, ok) {
                (Direction::Output, true) => Counter::HookOutputOk,
                (Direction::Output, false) => Counter::HookOutputErrors,
                (Direction::Input, true) => Counter::HookInputOk,
                (Direction::Input, false) => Counter::HookInputErrors,
            }),
            Event::FamClassify {
                start, repeated, ..
            } => {
                self.incr(Counter::FamClassifications);
                match start {
                    crate::event::FlowStartKind::Existing => self.incr(Counter::FamJoinedExisting),
                    crate::event::FlowStartKind::Fresh
                    | crate::event::FlowStartKind::ReplacedExpired => {
                        self.incr(Counter::FamFlowsStarted)
                    }
                    crate::event::FlowStartKind::Collision => {
                        self.incr(Counter::FamFlowsStarted);
                        self.incr(Counter::FamCollisions);
                    }
                }
                if repeated {
                    self.incr(Counter::FamRepeatedFlows);
                }
            }
            Event::CacheLookup { kind, outcome } => {
                let c = &self.caches[kind.index()];
                match outcome {
                    CacheOutcome::Hit => c.hits.fetch_add(1, Ordering::Relaxed),
                    CacheOutcome::MissCold => c.cold_misses.fetch_add(1, Ordering::Relaxed),
                    CacheOutcome::MissCapacity => c.capacity_misses.fetch_add(1, Ordering::Relaxed),
                    CacheOutcome::MissCollision => {
                        c.collision_misses.fetch_add(1, Ordering::Relaxed)
                    }
                };
            }
            Event::KeyDerivation { micros } => {
                self.incr(Counter::KeyDerivations);
                self.observe(Histogram::KeyDerivationMicros, micros);
            }
            Event::ReplayDrop { .. } => self.incr(Counter::ReplayDrops),
            Event::MacDrop => self.incr(Counter::MacDrops),
            Event::MalformedDrop => self.incr(Counter::MalformedDrops),
            Event::Fragmented { fragments } => {
                self.incr(Counter::FragmentedDatagrams);
                self.add(Counter::FragmentsProduced, fragments as u64);
            }
            Event::Reassembled => self.incr(Counter::ReassembledDatagrams),
            Event::ReassemblyTimeout => self.incr(Counter::ReassemblyTimeouts),
            Event::MrtRetransmit => self.incr(Counter::MrtRetransmits),
            Event::Send { bytes } => {
                self.incr(Counter::Sends);
                self.observe(Histogram::SendBytes, bytes);
            }
            Event::Receive { bytes } => {
                self.incr(Counter::Receives);
                self.observe(Histogram::ReceiveBytes, bytes);
            }
            Event::RetryAttempt { .. } => self.incr(Counter::RetryAttempts),
            Event::RetryExhausted { .. } => self.incr(Counter::RetryExhausted),
            Event::BreakerTransition {
                from,
                to,
                in_state_us,
            } => {
                self.incr(match to {
                    crate::event::BreakerStateKind::Open => Counter::BreakerOpens,
                    crate::event::BreakerStateKind::HalfOpen => Counter::BreakerHalfOpens,
                    crate::event::BreakerStateKind::Closed => Counter::BreakerCloses,
                });
                self.add(
                    match from {
                        crate::event::BreakerStateKind::Closed => Counter::BreakerTimeClosedUs,
                        crate::event::BreakerStateKind::Open => Counter::BreakerTimeOpenUs,
                        crate::event::BreakerStateKind::HalfOpen => Counter::BreakerTimeHalfOpenUs,
                    },
                    in_state_us,
                );
            }
            Event::BreakerFastFail => self.incr(Counter::BreakerFastFails),
            Event::Parked { .. } => self.incr(Counter::ParkParked),
            Event::ParkReleased { .. } => self.incr(Counter::ParkReleased),
            Event::ParkExpired => self.incr(Counter::ParkExpired),
            Event::ParkOverflow => self.incr(Counter::ParkOverflow),
            Event::Degraded { open, .. } => self.incr(if open {
                Counter::DegradeFailOpen
            } else {
                Counter::DegradeFailClosed
            }),
        }
    }

    /// The flight recorder's contents, oldest first.
    pub fn events(&self) -> Vec<EventRecord> {
        let rec = self.recorder.lock().unwrap_or_else(|e| e.into_inner());
        if rec.buf.len() < self.capacity || self.capacity == 0 {
            rec.buf.clone()
        } else {
            let mut out = Vec::with_capacity(self.capacity);
            out.extend_from_slice(&rec.buf[rec.write..]);
            out.extend_from_slice(&rec.buf[..rec.write]);
            out
        }
    }

    /// Point-in-time snapshot of every non-zero counter, the cache
    /// counters, the histograms, and the flight recorder.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let mut snap = MetricsSnapshot::new();
        for c in Counter::ALL {
            let v = self.counter(c);
            if v > 0 {
                snap.add(c.name(), v);
            }
        }
        for kind in CacheKind::ALL {
            let c = &self.caches[kind.index()];
            let pairs = [
                ("hits", c.hits.load(Ordering::Relaxed)),
                ("cold_misses", c.cold_misses.load(Ordering::Relaxed)),
                ("capacity_misses", c.capacity_misses.load(Ordering::Relaxed)),
                (
                    "collision_misses",
                    c.collision_misses.load(Ordering::Relaxed),
                ),
                ("insertions", c.insertions.load(Ordering::Relaxed)),
                ("evictions", c.evictions.load(Ordering::Relaxed)),
                ("resident_bytes", c.resident_bytes.load(Ordering::Relaxed)),
            ];
            for (field, v) in pairs {
                if v > 0 {
                    snap.add(&format!("cache.{}.{}", kind.name(), field), v);
                }
            }
        }
        for h in Histogram::ALL {
            let hs = self.histograms[h.index()].snapshot();
            if !hs.buckets.is_empty() {
                snap.histograms.insert(h.name().to_string(), hs);
            }
        }
        for s in Stage::ALL {
            let hs = self.stages[s.index()].snapshot();
            if !hs.buckets.is_empty() {
                snap.histograms.insert(format!("stage.{}_ns", s.name()), hs);
            }
        }
        for row in self.worker_occupancy_table() {
            let pre = format!("hooks.worker.{}", row.worker);
            snap.add(&format!("{pre}.ring_stalls"), row.stalls);
            snap.add(&format!("{pre}.ring_stall_ns"), row.stall_ns);
            snap.add(&format!("{pre}.batches"), row.batches);
            snap.add(&format!("{pre}.busy_ns"), row.busy_ns);
            if row.panics > 0 {
                snap.add(&format!("{pre}.panics"), row.panics);
            }
        }
        for shard in 0..MAX_SHARDS {
            let s = self.shard_mem(shard);
            if s == ShardMemSample::default() {
                continue;
            }
            let pre = format!("mem.shard.{shard}");
            snap.add(&format!("{pre}.tfkc_bytes"), s.tfkc_bytes);
            snap.add(&format!("{pre}.rfkc_bytes"), s.rfkc_bytes);
            snap.add(&format!("{pre}.mkc_bytes"), s.mkc_bytes);
            snap.add(&format!("{pre}.fam_bytes"), s.fam_bytes);
            snap.add(&format!("{pre}.used_bytes"), s.used_bytes());
            snap.add(&format!("{pre}.limit_bytes"), s.limit_bytes);
            snap.add(&format!("{pre}.budget_exceeded"), s.exceeded);
        }
        snap.events = self.events();
        snap
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{Direction, FlowStartKind};

    #[test]
    fn counters_accumulate_and_snapshot() {
        let reg = MetricsRegistry::new();
        reg.incr(Counter::Encryptions);
        reg.add(Counter::Encryptions, 2);
        assert_eq!(reg.counter(Counter::Encryptions), 3);
        let snap = reg.snapshot();
        assert_eq!(snap.counter("endpoint.encryptions"), 3);
        assert_eq!(snap.counter("endpoint.sends"), 0);
    }

    #[test]
    fn events_drive_counters_and_histograms() {
        let reg = MetricsRegistry::new();
        reg.record(Event::Send { bytes: 100 });
        reg.record(Event::Send { bytes: 200 });
        reg.record(Event::KeyDerivation { micros: 5 });
        reg.record(Event::CacheLookup {
            kind: CacheKind::Tfkc,
            outcome: CacheOutcome::Hit,
        });
        reg.record(Event::CacheLookup {
            kind: CacheKind::Tfkc,
            outcome: CacheOutcome::MissCold,
        });
        reg.record(Event::HookEntry {
            dir: Direction::Output,
        });
        reg.record(Event::HookExit {
            dir: Direction::Output,
            ok: true,
        });
        reg.record(Event::FamClassify {
            sfl: 9,
            start: FlowStartKind::Fresh,
            repeated: false,
        });
        let snap = reg.snapshot();
        assert_eq!(snap.counter("endpoint.sends"), 2);
        assert_eq!(snap.counter("endpoint.key_derivations"), 1);
        assert_eq!(snap.counter("cache.tfkc.hits"), 1);
        assert_eq!(snap.counter("cache.tfkc.cold_misses"), 1);
        assert_eq!(snap.counter("hooks.output_entries"), 1);
        assert_eq!(snap.counter("hooks.output_ok"), 1);
        assert_eq!(snap.counter("fam.classifications"), 1);
        assert_eq!(snap.counter("fam.flows_started"), 1);
        assert!(snap.histograms.contains_key("send_bytes"));
        assert_eq!(snap.events.len(), 8);
    }

    #[test]
    fn ring_wraps_and_keeps_newest() {
        let reg = MetricsRegistry::with_event_capacity(4);
        for i in 0..10u64 {
            reg.record(Event::Send { bytes: i });
        }
        let events = reg.events();
        assert_eq!(events.len(), 4);
        let seqs: Vec<u64> = events.iter().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![7, 8, 9, 10]);
    }

    #[test]
    fn ring_overflow_counts_dropped_events() {
        let reg = MetricsRegistry::with_event_capacity(4);
        for i in 0..10u64 {
            reg.record(Event::Send { bytes: i });
        }
        // 10 recorded into a 4-slot ring: 6 overwritten before read.
        assert_eq!(reg.counter(Counter::EventsDropped), 6);
        assert_eq!(reg.snapshot().counter("obs.events_dropped"), 6);
        // A ring that never filled drops nothing.
        let quiet = MetricsRegistry::with_event_capacity(4);
        quiet.record(Event::MacDrop);
        assert_eq!(quiet.counter(Counter::EventsDropped), 0);
    }

    #[test]
    fn stage_and_worker_tables_snapshot() {
        let reg = MetricsRegistry::new();
        reg.observe_stage(Stage::Partition, 100);
        reg.observe_stage(Stage::Partition, 200);
        reg.observe_stage(Stage::Seal, 1_000);
        reg.worker_stall(3, 500);
        reg.worker_busy(3, 2_000);
        reg.worker_busy(3, 2_000);
        let table = reg.worker_occupancy_table();
        assert_eq!(table.len(), 1);
        assert_eq!(table[0].worker, 3);
        assert_eq!(table[0].stalls, 1);
        assert_eq!(table[0].stall_ns, 500);
        assert_eq!(table[0].batches, 2);
        assert_eq!(table[0].busy_ns, 4_000);
        let snap = reg.snapshot();
        let part = &snap.histograms["stage.partition_ns"];
        assert_eq!(part.count(), 2);
        assert_eq!(part.sum, 300);
        assert_eq!(snap.histograms["stage.seal_ns"].count(), 1);
        assert_eq!(snap.counter("hooks.worker.3.ring_stalls"), 1);
        assert_eq!(snap.counter("hooks.worker.3.busy_ns"), 4_000);
        // Out-of-range worker indices fold into the last row.
        reg.worker_busy(1_000, 7);
        assert!(reg
            .worker_occupancy_table()
            .iter()
            .any(|r| r.worker == MAX_WORKERS - 1 && r.busy_ns == 7));
    }

    #[test]
    fn tracer_attach_is_first_wins() {
        let reg = MetricsRegistry::new();
        assert!(reg.tracer().is_none());
        let a = Arc::new(FlowTracer::new(0));
        let b = Arc::new(FlowTracer::new(4));
        reg.set_tracer(a);
        reg.set_tracer(b);
        assert_eq!(reg.tracer().unwrap().rate_log2(), 0);
    }

    #[test]
    fn zero_capacity_disables_events_not_counters() {
        let reg = MetricsRegistry::with_event_capacity(0);
        reg.record(Event::MacDrop);
        assert!(reg.events().is_empty());
        assert_eq!(reg.counter(Counter::MacDrops), 1);
    }

    #[test]
    fn time_source_stamps_events() {
        let reg = MetricsRegistry::new().with_time_source(|| 42);
        reg.record(Event::Reassembled);
        assert_eq!(reg.events()[0].t_us, 42);
    }

    #[test]
    fn robustness_events_drive_counters() {
        use crate::event::BreakerStateKind;
        let reg = MetricsRegistry::new();
        reg.record(Event::RetryAttempt {
            attempt: 1,
            backoff_us: 100,
        });
        reg.record(Event::RetryAttempt {
            attempt: 2,
            backoff_us: 200,
        });
        reg.record(Event::RetryExhausted { attempts: 3 });
        reg.record(Event::BreakerTransition {
            from: BreakerStateKind::Closed,
            to: BreakerStateKind::Open,
            in_state_us: 300,
        });
        reg.record(Event::BreakerFastFail);
        reg.record(Event::BreakerTransition {
            from: BreakerStateKind::Open,
            to: BreakerStateKind::HalfOpen,
            in_state_us: 1_000,
        });
        reg.record(Event::BreakerTransition {
            from: BreakerStateKind::HalfOpen,
            to: BreakerStateKind::Closed,
            in_state_us: 40,
        });
        reg.record(Event::Parked { queued: 1 });
        reg.record(Event::ParkReleased { waited_us: 50 });
        reg.record(Event::ParkExpired);
        reg.record(Event::ParkOverflow);
        reg.record(Event::Degraded {
            dir: Direction::Output,
            open: true,
        });
        reg.record(Event::Degraded {
            dir: Direction::Input,
            open: false,
        });
        let snap = reg.snapshot();
        assert_eq!(snap.counter("retry.attempts"), 2);
        assert_eq!(snap.counter("retry.exhausted"), 1);
        assert_eq!(snap.counter("breaker.opened"), 1);
        assert_eq!(snap.counter("breaker.half_open"), 1);
        assert_eq!(snap.counter("breaker.closed"), 1);
        assert_eq!(snap.counter("breaker.time_closed_us"), 300);
        assert_eq!(snap.counter("breaker.time_open_us"), 1_000);
        assert_eq!(snap.counter("breaker.time_half_open_us"), 40);
        assert_eq!(snap.counter("breaker.fast_fails"), 1);
        assert_eq!(snap.counter("park.parked"), 1);
        assert_eq!(snap.counter("park.released"), 1);
        assert_eq!(snap.counter("park.expired"), 1);
        assert_eq!(snap.counter("park.overflow"), 1);
        assert_eq!(snap.counter("degrade.fail_open"), 1);
        assert_eq!(snap.counter("degrade.fail_closed"), 1);
    }

    #[test]
    fn empty_registry_snapshot_is_empty() {
        // A registry that never saw an event must snapshot to nothing:
        // no zero-valued counters, no cache entries, no histograms, no
        // events — and reading any counter back yields 0, not a panic.
        let reg = MetricsRegistry::new();
        let snap = reg.snapshot();
        assert!(snap.counters.is_empty(), "{:?}", snap.counters);
        assert!(snap.histograms.is_empty());
        assert!(snap.events.is_empty());
        for c in Counter::ALL {
            assert_eq!(reg.counter(c), 0);
            assert_eq!(snap.counter(c.name()), 0);
        }
    }

    #[test]
    fn counter_names_are_unique() {
        let mut names: Vec<&str> = Counter::ALL.iter().map(|c| c.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), Counter::ALL.len());
    }
}
