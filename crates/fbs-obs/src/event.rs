//! Typed datagram-path events for the flight recorder.
//!
//! Each variant corresponds to one observable step of a datagram's life
//! through the FBS stack (§5–§7 of the paper): classification, keying,
//! sealing, the IP-layer hooks, fragmentation, and retransmission. The
//! taxonomy is deliberately small and flat — events are recorded on hot
//! paths, so every field is `Copy`.

use std::fmt;

/// Which soft-state cache a lookup hit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheKind {
    /// Transmit-side flow-key cache.
    Tfkc,
    /// Receive-side flow-key cache.
    Rfkc,
    /// Master-key cache (pair keys from the MKD).
    Mkc,
    /// Public-value cache (certificates).
    Pvc,
    /// The §7.2 combined FST/TFKC table.
    Combined,
}

impl CacheKind {
    /// All kinds, in snapshot order.
    pub const ALL: [CacheKind; 5] = [
        CacheKind::Tfkc,
        CacheKind::Rfkc,
        CacheKind::Mkc,
        CacheKind::Pvc,
        CacheKind::Combined,
    ];

    /// Lower-case name used in counter keys and JSON.
    pub fn name(self) -> &'static str {
        match self {
            CacheKind::Tfkc => "tfkc",
            CacheKind::Rfkc => "rfkc",
            CacheKind::Mkc => "mkc",
            CacheKind::Pvc => "pvc",
            CacheKind::Combined => "combined",
        }
    }

    pub(crate) fn index(self) -> usize {
        match self {
            CacheKind::Tfkc => 0,
            CacheKind::Rfkc => 1,
            CacheKind::Mkc => 2,
            CacheKind::Pvc => 3,
            CacheKind::Combined => 4,
        }
    }
}

/// Outcome of a cache lookup under the 3C miss model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheOutcome {
    /// The entry was present.
    Hit,
    /// First reference ever to this key.
    MissCold,
    /// The key was evicted because the cache is too small overall.
    MissCapacity,
    /// The key was evicted by a set/slot conflict.
    MissCollision,
}

impl CacheOutcome {
    /// Lower-case name used in JSON.
    pub fn name(self) -> &'static str {
        match self {
            CacheOutcome::Hit => "hit",
            CacheOutcome::MissCold => "miss_cold",
            CacheOutcome::MissCapacity => "miss_capacity",
            CacheOutcome::MissCollision => "miss_collision",
        }
    }
}

/// Which side of the IP security hooks an event belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// The output hook (before fragmentation).
    Output,
    /// The input hook (after reassembly).
    Input,
}

impl Direction {
    /// Lower-case name used in JSON.
    pub fn name(self) -> &'static str {
        match self {
            Direction::Output => "output",
            Direction::Input => "input",
        }
    }
}

/// How the FAM resolved a classification (mirrors `fbs_core::fam::FlowStart`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlowStartKind {
    /// The datagram joined a live flow.
    Existing,
    /// A fresh flow started in an empty slot.
    Fresh,
    /// A fresh flow replaced an expired entry.
    ReplacedExpired,
    /// A fresh flow evicted a live entry (FST collision).
    Collision,
}

impl FlowStartKind {
    /// Lower-case name used in JSON.
    pub fn name(self) -> &'static str {
        match self {
            FlowStartKind::Existing => "existing",
            FlowStartKind::Fresh => "fresh",
            FlowStartKind::ReplacedExpired => "replaced_expired",
            FlowStartKind::Collision => "collision",
        }
    }
}

/// Circuit-breaker state, as carried by [`Event::BreakerTransition`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerStateKind {
    /// Requests flow normally; failures are counted.
    Closed,
    /// Requests fail fast without touching the protected resource.
    Open,
    /// One probe request is allowed through to test recovery.
    HalfOpen,
}

impl BreakerStateKind {
    /// Lower-case name used in JSON.
    pub fn name(self) -> &'static str {
        match self {
            BreakerStateKind::Closed => "closed",
            BreakerStateKind::Open => "open",
            BreakerStateKind::HalfOpen => "half_open",
        }
    }
}

/// One observable step on the datagram path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Event {
    /// A security hook was entered.
    HookEntry {
        /// Output or input side.
        dir: Direction,
    },
    /// A security hook returned.
    HookExit {
        /// Output or input side.
        dir: Direction,
        /// Whether the hook succeeded.
        ok: bool,
    },
    /// The FAM classified an outgoing datagram.
    FamClassify {
        /// The security flow label assigned.
        sfl: u64,
        /// How the flow slot was resolved.
        start: FlowStartKind,
        /// Whether this sfl was seen before (a repeated flow, Fig. 14).
        repeated: bool,
    },
    /// A soft-state cache lookup completed.
    CacheLookup {
        /// Which cache.
        kind: CacheKind,
        /// Hit, or which of the 3C miss kinds.
        outcome: CacheOutcome,
    },
    /// A zero-message flow-key derivation ran (cache-miss path).
    KeyDerivation {
        /// Wall/virtual time it took, in microseconds (0 under a
        /// simulated clock without sub-second resolution).
        micros: u64,
    },
    /// A datagram failed the freshness-window check (§6.3).
    ReplayDrop {
        /// Timestamp carried by the datagram, in FBS minutes.
        datagram_minutes: u32,
        /// Receiver's current time, in FBS minutes.
        now_minutes: u32,
    },
    /// A datagram failed MAC verification.
    MacDrop,
    /// A datagram's security header failed to parse or decrypt.
    MalformedDrop,
    /// An outgoing datagram was split by IP fragmentation.
    Fragmented {
        /// Number of fragments produced.
        fragments: u32,
    },
    /// A fragmented datagram was fully reassembled.
    Reassembled,
    /// A partial reassembly buffer timed out and was dropped.
    ReassemblyTimeout,
    /// MRT retransmitted (go-back-N rewind or handshake retry).
    MrtRetransmit,
    /// An endpoint sealed and sent a datagram.
    Send {
        /// Payload bytes.
        bytes: u64,
    },
    /// An endpoint verified and accepted a datagram.
    Receive {
        /// Payload bytes.
        bytes: u64,
    },
    /// A retried operation (directory fetch, MKD upcall) ran one more
    /// attempt after a failure.
    RetryAttempt {
        /// 1-based attempt index of the attempt that just failed.
        attempt: u32,
        /// Backoff charged before the next attempt, in microseconds.
        backoff_us: u64,
    },
    /// A retried operation gave up: attempts or deadline exhausted.
    RetryExhausted {
        /// Total attempts made before giving up.
        attempts: u32,
    },
    /// A per-peer circuit breaker changed state.
    BreakerTransition {
        /// The state left behind.
        from: BreakerStateKind,
        /// The state entered.
        to: BreakerStateKind,
        /// How long the breaker sat in `from`, in (virtual)
        /// microseconds — the time-in-state the transition closes out.
        in_state_us: u64,
    },
    /// A request was rejected without trying because the breaker is open.
    BreakerFastFail,
    /// A datagram was parked awaiting key material.
    Parked {
        /// Queue depth after parking (bounds memory growth evidence).
        queued: u32,
    },
    /// A parked datagram was released and processed.
    ParkReleased {
        /// How long it waited, in microseconds.
        waited_us: u64,
    },
    /// A parked datagram hit its deadline and was dropped (datagram
    /// semantics: loss, not blocking).
    ParkExpired,
    /// A datagram could not be parked because the queue was full.
    ParkOverflow,
    /// A degradation policy verdict was applied to a datagram that could
    /// not be protected/verified.
    Degraded {
        /// Output or input side.
        dir: Direction,
        /// True for fail-open (sent/accepted unprotected), false for
        /// fail-closed (dropped).
        open: bool,
    },
}

impl Event {
    /// Snake-case event type name used in JSON.
    pub fn kind(&self) -> &'static str {
        match self {
            Event::HookEntry { .. } => "hook_entry",
            Event::HookExit { .. } => "hook_exit",
            Event::FamClassify { .. } => "fam_classify",
            Event::CacheLookup { .. } => "cache_lookup",
            Event::KeyDerivation { .. } => "key_derivation",
            Event::ReplayDrop { .. } => "replay_drop",
            Event::MacDrop => "mac_drop",
            Event::MalformedDrop => "malformed_drop",
            Event::Fragmented { .. } => "fragmented",
            Event::Reassembled => "reassembled",
            Event::ReassemblyTimeout => "reassembly_timeout",
            Event::MrtRetransmit => "mrt_retransmit",
            Event::Send { .. } => "send",
            Event::Receive { .. } => "receive",
            Event::RetryAttempt { .. } => "retry_attempt",
            Event::RetryExhausted { .. } => "retry_exhausted",
            Event::BreakerTransition { .. } => "breaker_transition",
            Event::BreakerFastFail => "breaker_fast_fail",
            Event::Parked { .. } => "parked",
            Event::ParkReleased { .. } => "park_released",
            Event::ParkExpired => "park_expired",
            Event::ParkOverflow => "park_overflow",
            Event::Degraded { .. } => "degraded",
        }
    }

    /// Variant-specific JSON fields, as `,"k":v` pairs (possibly empty).
    fn json_fields(&self, out: &mut String) {
        use std::fmt::Write;
        match self {
            Event::HookEntry { dir } => {
                let _ = write!(out, r#","dir":"{}""#, dir.name());
            }
            Event::HookExit { dir, ok } => {
                let _ = write!(out, r#","dir":"{}","ok":{}"#, dir.name(), ok);
            }
            Event::FamClassify {
                sfl,
                start,
                repeated,
            } => {
                let _ = write!(
                    out,
                    r#","sfl":{},"start":"{}","repeated":{}"#,
                    sfl,
                    start.name(),
                    repeated
                );
            }
            Event::CacheLookup { kind, outcome } => {
                let _ = write!(
                    out,
                    r#","cache":"{}","outcome":"{}""#,
                    kind.name(),
                    outcome.name()
                );
            }
            Event::KeyDerivation { micros } => {
                let _ = write!(out, r#","micros":{micros}"#);
            }
            Event::ReplayDrop {
                datagram_minutes,
                now_minutes,
            } => {
                let _ = write!(
                    out,
                    r#","datagram_minutes":{datagram_minutes},"now_minutes":{now_minutes}"#
                );
            }
            Event::Fragmented { fragments } => {
                let _ = write!(out, r#","fragments":{fragments}"#);
            }
            Event::Send { bytes } | Event::Receive { bytes } => {
                let _ = write!(out, r#","bytes":{bytes}"#);
            }
            Event::RetryAttempt {
                attempt,
                backoff_us,
            } => {
                let _ = write!(out, r#","attempt":{attempt},"backoff_us":{backoff_us}"#);
            }
            Event::RetryExhausted { attempts } => {
                let _ = write!(out, r#","attempts":{attempts}"#);
            }
            Event::BreakerTransition {
                from,
                to,
                in_state_us,
            } => {
                let _ = write!(
                    out,
                    r#","from":"{}","to":"{}","in_state_us":{}"#,
                    from.name(),
                    to.name(),
                    in_state_us
                );
            }
            Event::Parked { queued } => {
                let _ = write!(out, r#","queued":{queued}"#);
            }
            Event::ParkReleased { waited_us } => {
                let _ = write!(out, r#","waited_us":{waited_us}"#);
            }
            Event::Degraded { dir, open } => {
                let _ = write!(out, r#","dir":"{}","open":{}"#, dir.name(), open);
            }
            Event::MacDrop
            | Event::MalformedDrop
            | Event::Reassembled
            | Event::ReassemblyTimeout
            | Event::MrtRetransmit
            | Event::BreakerFastFail
            | Event::ParkExpired
            | Event::ParkOverflow => {}
        }
    }
}

/// One flight-recorder entry: an event plus sequencing metadata.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EventRecord {
    /// Monotone sequence number (1-based, never reused); gaps after the
    /// ring wraps tell you how much history was overwritten.
    pub seq: u64,
    /// Registry time-source reading when the event was recorded, in
    /// microseconds.
    pub t_us: u64,
    /// The event itself.
    pub event: Event,
}

impl EventRecord {
    /// Render as one JSON object (one line of the JSON-lines export).
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(96);
        use std::fmt::Write;
        let _ = write!(
            out,
            r#"{{"seq":{},"t_us":{},"type":"{}""#,
            self.seq,
            self.t_us,
            self.event.kind()
        );
        self.event.json_fields(&mut out);
        out.push('}');
        out
    }
}

impl fmt::Display for EventRecord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_json())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_shapes() {
        let rec = EventRecord {
            seq: 7,
            t_us: 12,
            event: Event::CacheLookup {
                kind: CacheKind::Tfkc,
                outcome: CacheOutcome::MissCollision,
            },
        };
        assert_eq!(
            rec.to_json(),
            r#"{"seq":7,"t_us":12,"type":"cache_lookup","cache":"tfkc","outcome":"miss_collision"}"#
        );
        let rec = EventRecord {
            seq: 1,
            t_us: 0,
            event: Event::MacDrop,
        };
        assert_eq!(rec.to_json(), r#"{"seq":1,"t_us":0,"type":"mac_drop"}"#);
    }

    #[test]
    fn robustness_event_json_shapes() {
        let rec = EventRecord {
            seq: 2,
            t_us: 5,
            event: Event::RetryAttempt {
                attempt: 3,
                backoff_us: 400,
            },
        };
        assert_eq!(
            rec.to_json(),
            r#"{"seq":2,"t_us":5,"type":"retry_attempt","attempt":3,"backoff_us":400}"#
        );
        let rec = EventRecord {
            seq: 3,
            t_us: 6,
            event: Event::BreakerTransition {
                from: BreakerStateKind::Open,
                to: BreakerStateKind::HalfOpen,
                in_state_us: 1_000_000,
            },
        };
        assert_eq!(
            rec.to_json(),
            r#"{"seq":3,"t_us":6,"type":"breaker_transition","from":"open","to":"half_open","in_state_us":1000000}"#
        );
        let rec = EventRecord {
            seq: 4,
            t_us: 7,
            event: Event::Degraded {
                dir: Direction::Output,
                open: false,
            },
        };
        assert_eq!(
            rec.to_json(),
            r#"{"seq":4,"t_us":7,"type":"degraded","dir":"output","open":false}"#
        );
        let rec = EventRecord {
            seq: 5,
            t_us: 8,
            event: Event::Parked { queued: 12 },
        };
        assert_eq!(
            rec.to_json(),
            r#"{"seq":5,"t_us":8,"type":"parked","queued":12}"#
        );
    }
}
