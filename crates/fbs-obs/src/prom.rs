//! Prometheus text exposition and delta snapshots.
//!
//! [`render`] turns a [`MetricsSnapshot`] into the Prometheus text
//! format (version 0.0.4): every counter becomes an `fbs_`-prefixed
//! counter metric, per-worker occupancy-table counters
//! (`hooks.worker.<i>.<field>`) collapse into one family with a
//! `worker` label, and every log2 histogram becomes a native histogram
//! with cumulative `le` buckets plus `_sum`/`_count`. Like every
//! exporter in this crate it returns a `String`; callers do the I/O.
//!
//! [`DeltaTracker`] supports the long-soak exposition mode: it
//! remembers the previous snapshot and emits only the change since,
//! so a periodic writer produces bounded, scrape-like increments
//! instead of ever-growing absolutes.

use crate::snapshot::{HistogramSnapshot, MetricsSnapshot};
use std::collections::BTreeMap;

/// Sanitise a hierarchical counter name into a Prometheus metric name
/// body (`a.b-c` → `a_b_c`).
fn sanitize(name: &str) -> String {
    name.chars()
        .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
        .collect()
}

/// Split a per-worker counter key (`hooks.worker.<i>.<field>`) into
/// its field and worker index.
fn worker_key(name: &str) -> Option<(&str, &str)> {
    let rest = name.strip_prefix("hooks.worker.")?;
    let (idx, field) = rest.split_once('.')?;
    if idx.bytes().all(|b| b.is_ascii_digit()) {
        Some((field, idx))
    } else {
        None
    }
}

/// One sample within a family: an optional `(label, value)` pair plus
/// the sample value.
type Sample = (Option<(String, String)>, u64);

/// Render `snap` in Prometheus text exposition format.
pub fn render(snap: &MetricsSnapshot) -> String {
    let mut out = String::with_capacity(4096);
    // Family name -> samples, insertion order inherited from the
    // BTreeMap walk so output is deterministic.
    let mut families: BTreeMap<String, Vec<Sample>> = BTreeMap::new();
    for (name, v) in &snap.counters {
        match worker_key(name) {
            Some((field, idx)) => {
                families
                    .entry(format!("fbs_hooks_worker_{}", sanitize(field)))
                    .or_default()
                    .push((Some(("worker".to_string(), idx.to_string())), *v));
            }
            None => {
                families
                    .entry(format!("fbs_{}", sanitize(name)))
                    .or_default()
                    .push((None, *v));
            }
        }
    }
    for (family, samples) in &families {
        out.push_str(&format!("# HELP {family} FBS counter {family}\n"));
        out.push_str(&format!("# TYPE {family} counter\n"));
        for (label, v) in samples {
            match label {
                Some((k, lv)) => out.push_str(&format!("{family}{{{k}=\"{lv}\"}} {v}\n")),
                None => out.push_str(&format!("{family} {v}\n")),
            }
        }
    }
    for (name, h) in &snap.histograms {
        let family = format!("fbs_{}", sanitize(name));
        out.push_str(&format!("# HELP {family} FBS log2 histogram {family}\n"));
        out.push_str(&format!("# TYPE {family} histogram\n"));
        let mut cum = 0u64;
        for &(_, hi, count) in &h.buckets {
            cum += count;
            if hi == u64::MAX {
                continue; // folded into +Inf below
            }
            out.push_str(&format!("{family}_bucket{{le=\"{hi}\"}} {cum}\n"));
        }
        out.push_str(&format!("{family}_bucket{{le=\"+Inf\"}} {}\n", h.count()));
        out.push_str(&format!("{family}_sum {}\n", h.sum));
        out.push_str(&format!("{family}_count {}\n", h.count()));
    }
    out
}

/// Remembers the last snapshot and produces counter/histogram deltas.
#[derive(Debug, Default)]
pub struct DeltaTracker {
    last: MetricsSnapshot,
}

impl DeltaTracker {
    /// A tracker whose first delta is the full snapshot.
    pub fn new() -> Self {
        DeltaTracker::default()
    }

    /// The change from the previous call to `now` (counters and
    /// histograms subtract; events newer than the last seen sequence
    /// number carry over). `now` becomes the new baseline.
    pub fn delta(&mut self, now: &MetricsSnapshot) -> MetricsSnapshot {
        let mut d = MetricsSnapshot::new();
        for (name, v) in &now.counters {
            let prev = self.last.counter(name);
            if *v > prev {
                d.add(name, v - prev);
            }
        }
        for (name, h) in &now.histograms {
            let prev = self.last.histograms.get(name);
            let mut dh = HistogramSnapshot::default();
            for &(lo, hi, count) in &h.buckets {
                let prev_count = prev
                    .and_then(|p| p.buckets.iter().find(|(l, _, _)| *l == lo))
                    .map(|(_, _, c)| *c)
                    .unwrap_or(0);
                if count > prev_count {
                    dh.buckets.push((lo, hi, count - prev_count));
                }
            }
            dh.sum = h.sum.saturating_sub(prev.map(|p| p.sum).unwrap_or(0));
            if !dh.buckets.is_empty() {
                d.histograms.insert(name.clone(), dh);
            }
        }
        let last_seq = self.last.events.last().map(|e| e.seq).unwrap_or(0);
        d.events = now
            .events
            .iter()
            .filter(|e| e.seq > last_seq)
            .copied()
            .collect();
        self.last = now.clone();
        d
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{Event, EventRecord};

    fn sample() -> MetricsSnapshot {
        let mut s = MetricsSnapshot::new();
        s.add("endpoint.sends", 5);
        s.add("hooks.worker.0.ring_stalls", 2);
        s.add("hooks.worker.1.ring_stalls", 3);
        s.histograms.insert(
            "send_bytes".into(),
            HistogramSnapshot {
                buckets: vec![(64, 127, 2), (128, 255, 1)],
                sum: 400,
            },
        );
        s
    }

    #[test]
    fn renders_counters_histograms_and_worker_labels() {
        let text = render(&sample());
        assert!(text.contains("# TYPE fbs_endpoint_sends counter"));
        assert!(text.contains("fbs_endpoint_sends 5"));
        assert!(text.contains("fbs_hooks_worker_ring_stalls{worker=\"0\"} 2"));
        assert!(text.contains("fbs_hooks_worker_ring_stalls{worker=\"1\"} 3"));
        // One TYPE line for the whole worker family.
        assert_eq!(
            text.matches("# TYPE fbs_hooks_worker_ring_stalls").count(),
            1
        );
        assert!(text.contains("# TYPE fbs_send_bytes histogram"));
        assert!(text.contains("fbs_send_bytes_bucket{le=\"127\"} 2"));
        assert!(text.contains("fbs_send_bytes_bucket{le=\"255\"} 3"));
        assert!(text.contains("fbs_send_bytes_bucket{le=\"+Inf\"} 3"));
        assert!(text.contains("fbs_send_bytes_sum 400"));
        assert!(text.contains("fbs_send_bytes_count 3"));
        assert!(text.ends_with('\n'));
    }

    #[test]
    fn every_sample_line_is_well_formed() {
        // The shape the CI lint enforces: every non-comment line is
        // `name[{label="v"}] <integer>`.
        for line in render(&sample()).lines() {
            if line.starts_with('#') {
                continue;
            }
            let (name, value) = line.rsplit_once(' ').expect("space-separated");
            assert!(value.bytes().all(|b| b.is_ascii_digit()), "{line}");
            let bare = name.split('{').next().unwrap();
            assert!(
                bare.bytes().all(|b| b.is_ascii_alphanumeric() || b == b'_'),
                "{line}"
            );
        }
    }

    #[test]
    fn delta_subtracts_and_carries_new_events() {
        let mut tracker = DeltaTracker::new();
        let mut first = sample();
        first.events.push(EventRecord {
            seq: 1,
            t_us: 0,
            event: Event::MacDrop,
        });
        let d1 = tracker.delta(&first);
        assert_eq!(d1.counter("endpoint.sends"), 5);
        assert_eq!(d1.events.len(), 1);

        let mut second = sample();
        second.counters.insert("endpoint.sends".into(), 9);
        second.events.push(EventRecord {
            seq: 1,
            t_us: 0,
            event: Event::MacDrop,
        });
        second.events.push(EventRecord {
            seq: 2,
            t_us: 1,
            event: Event::MalformedDrop,
        });
        second.histograms.get_mut("send_bytes").unwrap().buckets[0].2 = 4;
        second.histograms.get_mut("send_bytes").unwrap().sum = 600;
        let d2 = tracker.delta(&second);
        assert_eq!(d2.counter("endpoint.sends"), 4);
        assert_eq!(d2.counter("hooks.worker.0.ring_stalls"), 0);
        let dh = &d2.histograms["send_bytes"];
        assert_eq!(dh.buckets, vec![(64, 127, 2)]);
        assert_eq!(dh.sum, 200);
        assert_eq!(d2.events.len(), 1);
        assert_eq!(d2.events[0].seq, 2);
    }
}
