//! # fbs-obs — unified observability for the FBS stack
//!
//! The paper's evaluation (Figs. 8–14) is built from hand-polled
//! counters: cache hit ratios under the 3C miss model, active-flow
//! counts, per-paradigm key-setup costs. This crate gives the
//! reproduction one pipeline for all of that:
//!
//! * [`MetricsRegistry`] — a set of lock-free atomic counters, per-cache
//!   3C counters, and log2 latency/size histograms, shared across
//!   components via `Arc`;
//! * a **flight recorder** — a fixed-capacity ring buffer of typed
//!   [`Event`]s (hook entry/exit, FAM classify decisions, cache lookups
//!   with miss kind, zero-message key-derivation latency, replay/MAC
//!   drops, fragmentation/reassembly, MRT retransmits), timestamped by a
//!   pluggable time source so instrumented runs stay deterministic under
//!   the workspace's simulated clock;
//! * [`MetricsSnapshot`] — a point-in-time view with text-table and JSON
//!   exporters, buildable both live from a registry and from the legacy
//!   per-component stats structs (which makes those structs *views* of
//!   the same counter namespace);
//! * **stage spans** ([`Stage`]) — per-stage log2 nanosecond latency
//!   histograms over the batch pipeline (partition, ring enqueue/wait,
//!   seal/open, keying, park/release, dispatch) plus a per-worker
//!   occupancy table, recorded with two relaxed `fetch_add`s and no
//!   allocation;
//! * a **flow tracer** ([`FlowTracer`]) — deterministic sfl-sampled
//!   end-to-end traces across hosts, stamped on the simulated clock;
//! * **health + exposition** — [`HealthModel`] turns counters into
//!   typed conditions, [`prom::render`] emits Prometheus text format,
//!   and [`DeltaTracker`] produces bounded delta snapshots for long
//!   soaks.
//!
//! Observability is opt-in: components hold `Option<Arc<MetricsRegistry>>`
//! defaulting to `None`, so the disabled per-datagram cost is a single
//! branch. The crate has zero dependencies (it sits below `fbs-core` in
//! the dependency order) and performs no I/O of its own — exporters
//! return `String`s.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod event;
pub mod health;
pub mod prom;
pub mod registry;
pub mod snapshot;
pub mod span;
pub mod trace;

pub use event::{
    BreakerStateKind, CacheKind, CacheOutcome, Direction, Event, EventRecord, FlowStartKind,
};
pub use health::{Condition, ConditionKind, HealthInputs, HealthModel, HealthReport, HealthStatus};
pub use prom::DeltaTracker;
pub use registry::{Counter, Histogram, MetricsRegistry, ShardMemSample, MAX_SHARDS};
pub use snapshot::{HistogramSnapshot, MetricsSnapshot};
pub use span::{Stage, StageTimer, WorkerOccupancyRow, MAX_WORKERS};
pub use trace::{FlowTracer, SpanKind, TraceAnnotation, TraceSpan};
