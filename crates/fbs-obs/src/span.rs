//! Stage-span profiling for the batch pipeline.
//!
//! PR 5 sharded the endpoint and PR 4 made the pipeline batch-first,
//! but the time spent *inside* `process_batch` stayed a black box.
//! This module names the stages of the batch pipeline ([`Stage`]) so
//! the registry can keep one log2 nanosecond histogram per stage, plus
//! a per-worker occupancy table (ring stalls and stall nanoseconds vs
//! sub-batches and busy nanoseconds, per worker index) that attributes
//! queueing and load to the worker that caused it. PR 7 replaced the
//! mutex-shard path with run-to-completion workers, so the old lock
//! wait/hold spans became ring enqueue/wait spans and the per-shard
//! lock table became this per-worker occupancy table.
//!
//! Recording is two relaxed `fetch_add`s per sample and the tables are
//! fixed-size atomic arrays inside the registry, so instrumented runs
//! stay at 0 allocations per datagram — the same budget the pooled
//! fast path is gated on in CI.

use std::time::Instant;

/// Maximum worker index tracked by the per-worker occupancy table.
/// Anything beyond this folds into the last slot (the endpoint
/// currently defaults to 2 workers).
pub const MAX_WORKERS: usize = 64;

/// One instrumented stage of the batch datagram pipeline, in pipeline
/// order. Latencies are recorded as log2 nanosecond histograms under
/// `stage.<name>_ns` in snapshots.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Stage {
    /// Splitting a submitted batch into per-worker sub-batches (runs
    /// on the submitting thread, before any ring handoff).
    Partition,
    /// Pushing sub-batches onto worker rings, including any
    /// backpressure spinning on a full ring.
    RingEnqueue,
    /// Waiting for worker replies after all sub-batches are enqueued
    /// (the egress barrier of one `process_batch` call).
    RingWait,
    /// The seal crypto core: MAC + optional encrypt on output.
    Seal,
    /// The open crypto core: parse + verify + optional decrypt on
    /// input.
    Open,
    /// Resolving a sub-batch's deferred MAC comparisons (one fold in
    /// the clean case, bisection when a tag mismatches).
    BatchVerify,
    /// Zero-message flow-key derivation (cache-miss path, runs inside
    /// the owning worker with no locks held).
    KeyDerive,
    /// Parking a datagram that could not be processed (key pending).
    Park,
    /// A release pass over a parking queue (expiry sweep + retries).
    Release,
    /// Re-threading per-worker outcomes back into submission order and
    /// returning them to the stack.
    Dispatch,
}

/// Number of instrumented stages.
pub(crate) const NUM_STAGES: usize = 10;

impl Stage {
    /// All stages, in pipeline order.
    pub const ALL: [Stage; NUM_STAGES] = [
        Stage::Partition,
        Stage::RingEnqueue,
        Stage::RingWait,
        Stage::Seal,
        Stage::Open,
        Stage::BatchVerify,
        Stage::KeyDerive,
        Stage::Park,
        Stage::Release,
        Stage::Dispatch,
    ];

    /// Snake-case stage name used in snapshot keys (`stage.<name>_ns`).
    pub fn name(self) -> &'static str {
        match self {
            Stage::Partition => "partition",
            Stage::RingEnqueue => "ring_enqueue",
            Stage::RingWait => "ring_wait",
            Stage::Seal => "seal",
            Stage::Open => "open",
            Stage::BatchVerify => "batch_verify",
            Stage::KeyDerive => "key_derive",
            Stage::Park => "park",
            Stage::Release => "release",
            Stage::Dispatch => "dispatch",
        }
    }

    pub(crate) fn index(self) -> usize {
        self as usize
    }
}

/// A started stage timer: wall-clock, nanosecond resolution.
///
/// Stage spans measure where real time goes (they feed perf
/// attribution, not the deterministic simulation outputs), so they use
/// the monotonic OS clock rather than the workspace's virtual clock.
/// Flow traces ([`crate::FlowTracer`]) are the deterministic side.
#[derive(Debug, Clone, Copy)]
pub struct StageTimer(Instant);

impl StageTimer {
    /// Start timing now.
    pub fn start() -> Self {
        StageTimer(Instant::now())
    }

    /// Nanoseconds elapsed since [`StageTimer::start`], saturating.
    pub fn elapsed_ns(&self) -> u64 {
        let d = self.0.elapsed();
        d.as_secs()
            .saturating_mul(1_000_000_000)
            .saturating_add(u64::from(d.subsec_nanos()))
    }
}

/// One row of the per-worker occupancy table.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WorkerOccupancyRow {
    /// Worker index (row `MAX_WORKERS - 1` also absorbs any higher
    /// indices).
    pub worker: usize,
    /// Sub-batch pushes that found this worker's ring full and had to
    /// back off before retrying.
    pub stalls: u64,
    /// Total nanoseconds the producer spent stalled on this worker's
    /// ring.
    pub stall_ns: u64,
    /// Sub-batches this worker drained from its ring.
    pub batches: u64,
    /// Total nanoseconds this worker spent processing sub-batches.
    pub busy_ns: u64,
    /// Worker-loop panics caught by this worker's in-thread supervisor.
    pub panics: u64,
}

impl WorkerOccupancyRow {
    /// True when the row recorded no activity at all.
    pub fn is_empty(&self) -> bool {
        self.stalls == 0 && self.batches == 0 && self.panics == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stage_names_unique_and_ordered() {
        let mut names: Vec<&str> = Stage::ALL.iter().map(|s| s.name()).collect();
        assert_eq!(names.len(), NUM_STAGES);
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), NUM_STAGES);
        for (i, s) in Stage::ALL.iter().enumerate() {
            assert_eq!(s.index(), i);
        }
    }

    #[test]
    fn timer_is_monotone() {
        let t = StageTimer::start();
        let a = t.elapsed_ns();
        let b = t.elapsed_ns();
        assert!(b >= a);
    }
}
