//! Point-in-time metric views and exporters.
//!
//! A [`MetricsSnapshot`] can be produced two ways: live from a
//! [`crate::MetricsRegistry`], or assembled from the legacy
//! per-component stats structs via their `contribute` methods (defined
//! next to each struct in `fbs-core` / `fbs-ip` / `fbs-net` /
//! `fbs-cert`). Both paths use the same counter namespace, so every
//! figure binary and example reports through one pipeline regardless of
//! whether it ran instrumented.

use crate::event::EventRecord;
use std::collections::BTreeMap;

/// A materialised log2 histogram: non-empty `(lo, hi, count)` buckets
/// plus the exact sum of all observed values (the buckets alone only
/// bound it, and the Prometheus exposition needs the true `_sum`).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Inclusive bucket bounds and the sample count per bucket.
    pub buckets: Vec<(u64, u64, u64)>,
    /// Sum of every observed value.
    pub sum: u64,
}

impl HistogramSnapshot {
    /// Total number of samples.
    pub fn count(&self) -> u64 {
        self.buckets.iter().map(|(_, _, c)| c).sum()
    }

    /// Merge another histogram's buckets into this one.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        for &(lo, hi, count) in &other.buckets {
            match self.buckets.iter_mut().find(|(l, _, _)| *l == lo) {
                Some((_, _, c)) => *c += count,
                None => self.buckets.push((lo, hi, count)),
            }
        }
        self.buckets.sort_unstable_by_key(|&(lo, _, _)| lo);
        self.sum += other.sum;
    }
}

/// A point-in-time view of the metric namespace.
#[derive(Debug, Clone, Default)]
pub struct MetricsSnapshot {
    /// Scalar counters, keyed `component.metric`.
    pub counters: BTreeMap<String, u64>,
    /// Log2 histograms by name.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
    /// Flight-recorder contents, oldest first (empty for snapshots
    /// assembled from legacy stats).
    pub events: Vec<EventRecord>,
}

impl MetricsSnapshot {
    /// An empty snapshot.
    pub fn new() -> Self {
        MetricsSnapshot::default()
    }

    /// Add `n` to counter `name` (creating it at zero).
    pub fn add(&mut self, name: &str, n: u64) {
        if n > 0 {
            *self.counters.entry(name.to_string()).or_insert(0) += n;
        }
    }

    /// Read a counter; missing counters read as 0.
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Fold another snapshot into this one (counters and histograms
    /// add; events concatenate in order).
    pub fn merge(&mut self, other: &MetricsSnapshot) {
        for (name, v) in &other.counters {
            self.add(name, *v);
        }
        for (name, h) in &other.histograms {
            self.histograms.entry(name.clone()).or_default().merge(h);
        }
        self.events.extend(other.events.iter().copied());
    }

    /// Render the full snapshot as one JSON object:
    /// `{"counters":{..},"histograms":{..},"events":[..]}`.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(1024);
        out.push_str("{\"counters\":{");
        for (i, (name, v)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\"{}\":{}", json_escape(name), v));
        }
        out.push_str("},\"histograms\":{");
        for (i, (name, h)) in self.histograms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\"{}\":[", json_escape(name)));
            for (j, (lo, hi, count)) in h.buckets.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                out.push_str(&format!("{{\"lo\":{lo},\"hi\":{hi},\"count\":{count}}}"));
            }
            out.push(']');
        }
        out.push_str("},\"events\":[");
        for (i, e) in self.events.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&e.to_json());
        }
        out.push_str("]}");
        out
    }

    /// Render the flight recorder as JSON-lines (one event per line).
    pub fn events_jsonl(&self) -> String {
        let mut out = String::new();
        for e in &self.events {
            out.push_str(&e.to_json());
            out.push('\n');
        }
        out
    }

    /// Render counters and histogram summaries as a right-aligned text
    /// table (the `fbs-trace::stats::render_table` idiom).
    pub fn render_table(&self) -> String {
        let mut rows: Vec<(String, String)> = self
            .counters
            .iter()
            .map(|(name, v)| (name.clone(), v.to_string()))
            .collect();
        for (name, h) in &self.histograms {
            rows.push((format!("{name} (samples)"), h.count().to_string()));
        }
        if !self.events.is_empty() {
            rows.push(("events recorded".to_string(), self.events.len().to_string()));
        }
        let headers = ("metric", "value");
        let w0 = rows
            .iter()
            .map(|(n, _)| n.len())
            .chain([headers.0.len()])
            .max()
            .unwrap_or(0);
        let w1 = rows
            .iter()
            .map(|(_, v)| v.len())
            .chain([headers.1.len()])
            .max()
            .unwrap_or(0);
        let mut out = String::new();
        out.push_str(&format!("{:<w0$}  {:>w1$}\n", headers.0, headers.1));
        out.push_str(&format!("{}  {}\n", "-".repeat(w0), "-".repeat(w1)));
        for (name, v) in rows {
            out.push_str(&format!("{name:<w0$}  {v:>w1$}\n"));
        }
        out
    }
}

/// Escape a string for inclusion in a JSON string literal.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{Event, EventRecord};

    #[test]
    fn add_and_merge() {
        let mut a = MetricsSnapshot::new();
        a.add("endpoint.sends", 3);
        let mut b = MetricsSnapshot::new();
        b.add("endpoint.sends", 2);
        b.add("endpoint.receives", 1);
        b.histograms.insert(
            "send_bytes".into(),
            HistogramSnapshot {
                buckets: vec![(0, 1, 4)],
                sum: 4,
            },
        );
        a.merge(&b);
        assert_eq!(a.counter("endpoint.sends"), 5);
        assert_eq!(a.counter("endpoint.receives"), 1);
        assert_eq!(a.counter("missing"), 0);
        assert_eq!(a.histograms["send_bytes"].count(), 4);
        assert_eq!(a.histograms["send_bytes"].sum, 4);
    }

    #[test]
    fn json_is_well_formed_enough() {
        let mut s = MetricsSnapshot::new();
        s.add("endpoint.sends", 1);
        s.histograms.insert(
            "send_bytes".into(),
            HistogramSnapshot {
                buckets: vec![(64, 127, 1)],
                sum: 100,
            },
        );
        s.events.push(EventRecord {
            seq: 1,
            t_us: 0,
            event: Event::Send { bytes: 64 },
        });
        let json = s.to_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"endpoint.sends\":1"));
        assert!(json.contains("\"lo\":64,\"hi\":127,\"count\":1"));
        assert!(json.contains("\"type\":\"send\""));
        // Balanced braces/brackets (no strings contain them).
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn table_renders_all_rows() {
        let mut s = MetricsSnapshot::new();
        s.add("endpoint.sends", 12);
        s.add("fam.classifications", 3);
        let table = s.render_table();
        assert!(table.contains("endpoint.sends"));
        assert!(table.contains("12"));
        assert!(table.lines().count() >= 4);
    }

    #[test]
    fn escape_handles_specials() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
    }
}
