//! # fbs-cert — certificate substrate for FBS
//!
//! The paper assumes "the public values are made available and
//! authenticated via a distributed certification hierarchy (e.g., X.509
//! certificates) or a secure DNS service" (§5.2), and describes a
//! public value cache (PVC) that caches *certificates* rather than bare
//! values — "because the former need not be secure; a certificate can be
//! verified each time it is used" (§5.3). PVC misses are served by
//! insecure fetches over the network ("secure flow bypass", Fig. 5) and
//! are "extremely expensive", costing at minimum one round trip.
//!
//! This crate models exactly that machinery:
//!
//! * [`CertificateAuthority`] issues [`Certificate`]s binding a principal
//!   to its Diffie-Hellman public value with a validity interval;
//! * [`Directory`] is the networked certificate store (the X.509 directory
//!   / secure-DNS stand-in) with *simulated fetch latency* accounted per
//!   request;
//! * [`Pvc`] is the public value cache: a soft-state certificate cache
//!   that re-verifies on every use and implements
//!   [`fbs_core::PublicValueSource`] so it plugs directly into the master
//!   key daemon. Certificate "pinning" at initialisation is supported
//!   (§5.3 offers it as the fetch alternative).
//!
//! **Substitution note:** the paper's CA would sign with a public-key
//! algorithm; we authenticate certificates with a keyed-MD5 tag under a
//! CA key shared with verifiers. This preserves every property the paper
//! measures or depends on (fetch latency, per-use verification cost,
//! expiry, tamper-evidence) without modelling a full PKI.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod authority;
pub mod directory;
pub mod pvc;

pub use authority::{CertVerifier, Certificate, CertificateAuthority};
pub use directory::{CertSource, Directory, DirectoryStats};
pub use pvc::{Pvc, PvcStats};
