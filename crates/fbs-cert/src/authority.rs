//! Toy certificate authority: binds principals to DH public values.
//!
//! Two signature schemes are supported:
//!
//! * **MAC-based** ([`CertificateAuthority::new`]): a keyed-MD5 tag under
//!   a CA key shared with verifiers. Cheap and sufficient for simulations
//!   where the "CA" and all relying parties are within one trust domain.
//! * **RSA-based** ([`CertificateAuthority::new_rsa`]): real public-key
//!   signatures — verifiers hold only the CA's public key, which is the
//!   X.509 model the paper points at (§5.2).

use fbs_core::{FbsError, Principal, Result};
use fbs_crypto::dh::PublicValue;
use fbs_crypto::rsa::{RsaPrivateKey, RsaPublicKey};
use fbs_crypto::{keyed_digest, mac_eq};

/// A certificate binding `subject` to `public_value` for a validity
/// interval, authenticated by the issuing CA.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Certificate {
    /// The principal whose public value this certifies.
    pub subject: Principal,
    /// The subject's Diffie-Hellman public value.
    pub public_value: PublicValue,
    /// Validity start (seconds since the FBS epoch).
    pub not_before: u64,
    /// Validity end (seconds since the FBS epoch).
    pub not_after: u64,
    /// Issuer name.
    pub issuer: String,
    /// Authentication tag or RSA signature over the canonical encoding.
    pub signature: Vec<u8>,
}

impl Certificate {
    /// Canonical byte encoding covered by the signature.
    fn signed_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(&(self.subject.len() as u32).to_be_bytes());
        out.extend_from_slice(self.subject.as_bytes());
        out.extend_from_slice(&(self.public_value.bytes.len() as u32).to_be_bytes());
        out.extend_from_slice(&self.public_value.bytes);
        out.extend_from_slice(&self.not_before.to_be_bytes());
        out.extend_from_slice(&self.not_after.to_be_bytes());
        out.extend_from_slice(self.issuer.as_bytes());
        out
    }

    /// Is the certificate within its validity interval at `now_secs`?
    pub fn valid_at(&self, now_secs: u64) -> bool {
        (self.not_before..=self.not_after).contains(&now_secs)
    }
}

enum Signer {
    Mac([u8; 16]),
    Rsa(Box<RsaPrivateKey>),
}

/// A certificate authority holding an issuing key.
pub struct CertificateAuthority {
    name: String,
    signer: Signer,
}

impl CertificateAuthority {
    /// MAC-signing CA: `secret` is shared with verifiers.
    pub fn new(name: &str, secret: [u8; 16]) -> Self {
        CertificateAuthority {
            name: name.to_string(),
            signer: Signer::Mac(secret),
        }
    }

    /// RSA-signing CA with a `modulus_bits` key generated from `seed`
    /// (use ≥512 bits outside tests; key generation is deterministic per
    /// seed so simulations reproduce).
    pub fn new_rsa(name: &str, modulus_bits: usize, seed: u64) -> Self {
        CertificateAuthority {
            name: name.to_string(),
            signer: Signer::Rsa(Box::new(RsaPrivateKey::generate(modulus_bits, seed))),
        }
    }

    /// Issue a certificate for `subject` valid over `[not_before,
    /// not_after]` seconds since the FBS epoch.
    pub fn issue(
        &self,
        subject: Principal,
        public_value: PublicValue,
        not_before: u64,
        not_after: u64,
    ) -> Certificate {
        let mut cert = Certificate {
            subject,
            public_value,
            not_before,
            not_after,
            issuer: self.name.clone(),
            signature: Vec::new(),
        };
        cert.signature = match &self.signer {
            Signer::Mac(secret) => keyed_digest(secret, &[&cert.signed_bytes()]).to_vec(),
            Signer::Rsa(key) => key.sign(&cert.signed_bytes()),
        };
        cert
    }

    /// A verifier handle for relying parties. For the RSA scheme this
    /// carries only the PUBLIC key.
    pub fn verifier(&self) -> CertVerifier {
        CertVerifier {
            issuer: self.name.clone(),
            key: match &self.signer {
                Signer::Mac(secret) => VerifyKey::Mac(*secret),
                Signer::Rsa(key) => VerifyKey::Rsa(key.public_key()),
            },
        }
    }
}

#[derive(Clone)]
enum VerifyKey {
    Mac([u8; 16]),
    Rsa(RsaPublicKey),
}

/// Verifies certificates issued by one CA. Relying parties hold this and
/// re-verify each certificate *every time it is used* (§5.3) — cached
/// certificates need not be stored securely.
#[derive(Clone)]
pub struct CertVerifier {
    issuer: String,
    key: VerifyKey,
}

impl CertVerifier {
    /// Verify issuer, validity interval, and signature.
    pub fn verify(&self, cert: &Certificate, now_secs: u64) -> Result<()> {
        if cert.issuer != self.issuer {
            return Err(FbsError::CertificateInvalid(format!(
                "unknown issuer {}",
                cert.issuer
            )));
        }
        if !cert.valid_at(now_secs) {
            return Err(FbsError::CertificateInvalid(format!(
                "{} outside validity [{}, {}] at {}",
                cert.subject, cert.not_before, cert.not_after, now_secs
            )));
        }
        let ok = match &self.key {
            VerifyKey::Mac(secret) => {
                let expected = keyed_digest(secret, &[&cert.signed_bytes()]);
                mac_eq(&expected, &cert.signature)
            }
            VerifyKey::Rsa(public) => public.verify(&cert.signed_bytes(), &cert.signature),
        };
        if !ok {
            return Err(FbsError::CertificateInvalid(format!(
                "bad signature for {}",
                cert.subject
            )));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fbs_crypto::dh::{DhGroup, PrivateValue};

    fn setup() -> (CertificateAuthority, Certificate) {
        let ca = CertificateAuthority::new("test-ca", [7u8; 16]);
        let pv = PrivateValue::from_entropy(DhGroup::test_group(), b"subject-entropy-bytes")
            .public_value();
        let cert = ca.issue(Principal::named("alice"), pv, 100, 10_000);
        (ca, cert)
    }

    fn setup_rsa() -> (CertificateAuthority, Certificate) {
        let ca = CertificateAuthority::new_rsa("rsa-ca", 256, 99);
        let pv = PrivateValue::from_entropy(DhGroup::test_group(), b"subject-entropy-bytes")
            .public_value();
        let cert = ca.issue(Principal::named("alice"), pv, 100, 10_000);
        (ca, cert)
    }

    #[test]
    fn valid_certificate_verifies() {
        let (ca, cert) = setup();
        assert!(ca.verifier().verify(&cert, 500).is_ok());
    }

    #[test]
    fn rsa_certificate_verifies() {
        let (ca, cert) = setup_rsa();
        assert!(ca.verifier().verify(&cert, 500).is_ok());
    }

    #[test]
    fn expired_certificate_rejected() {
        let (ca, cert) = setup();
        assert!(ca.verifier().verify(&cert, 10_001).is_err());
        assert!(ca.verifier().verify(&cert, 99).is_err());
        // Boundary values are inclusive.
        assert!(ca.verifier().verify(&cert, 100).is_ok());
        assert!(ca.verifier().verify(&cert, 10_000).is_ok());
    }

    #[test]
    fn tampered_public_value_rejected() {
        for (ca, mut cert) in [setup(), setup_rsa()] {
            cert.public_value.bytes[0] ^= 1;
            assert!(matches!(
                ca.verifier().verify(&cert, 500),
                Err(FbsError::CertificateInvalid(_))
            ));
        }
    }

    #[test]
    fn tampered_subject_rejected() {
        for (ca, mut cert) in [setup(), setup_rsa()] {
            cert.subject = Principal::named("mallory");
            assert!(ca.verifier().verify(&cert, 500).is_err());
        }
    }

    #[test]
    fn extended_validity_rejected() {
        // An attacker cannot stretch the validity window.
        for (ca, mut cert) in [setup(), setup_rsa()] {
            cert.not_after = u64::MAX;
            assert!(ca.verifier().verify(&cert, 500).is_err());
        }
    }

    #[test]
    fn wrong_ca_rejected() {
        let (_, cert) = setup();
        let other = CertificateAuthority::new("other-ca", [9u8; 16]);
        assert!(other.verifier().verify(&cert, 500).is_err());
        // Same name, different secret: forged issuer.
        let forger = CertificateAuthority::new("test-ca", [9u8; 16]);
        assert!(forger.verifier().verify(&cert, 500).is_err());
    }

    #[test]
    fn rsa_verifier_does_not_enable_forgery() {
        // The crucial difference from the MAC scheme: possessing the
        // verifier (public key) does not allow issuing certificates. A
        // forger with a DIFFERENT RSA key but the same name fails.
        let (ca, _) = setup_rsa();
        let forger = CertificateAuthority::new_rsa("rsa-ca", 256, 12345);
        let pv =
            PrivateValue::from_entropy(DhGroup::test_group(), b"attacker-value!!").public_value();
        let forged = forger.issue(Principal::named("alice"), pv, 0, u64::MAX);
        assert!(ca.verifier().verify(&forged, 500).is_err());
    }

    #[test]
    fn cross_scheme_certificates_rejected() {
        // A MAC-signed cert shown to an RSA verifier (same issuer name)
        // and vice versa must fail.
        let (mac_ca, mac_cert) = setup();
        let rsa_ca = CertificateAuthority::new_rsa("test-ca", 256, 5);
        assert!(rsa_ca.verifier().verify(&mac_cert, 500).is_err());
        let (_, rsa_cert) = setup_rsa();
        let mac_ca2 = CertificateAuthority::new("rsa-ca", [7u8; 16]);
        assert!(mac_ca2.verifier().verify(&rsa_cert, 500).is_err());
        drop(mac_ca);
    }
}
