//! The networked certificate directory (X.509 directory / secure-DNS
//! stand-in) behind the secure-flow bypass.
//!
//! Fetch requests "should not and need not be secure" (§5.3): they bypass
//! FBS to avoid circularity, and certificates are verified on receipt.
//! Fetches cost a network round trip; the directory accounts one simulated
//! RTT per fetch (and can optionally really sleep, for live demos), which
//! is the quantity the §5.3 cache analysis calls "extremely expensive".

use crate::authority::Certificate;
use fbs_core::{FbsError, Principal, Result};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::time::Duration;

/// Anything that can serve certificate fetches: the concrete
/// [`Directory`], or a fault-injecting wrapper around one (`fbs-chaos`
/// impairs fetches through this seam). The PVC holds its backing store
/// as `Arc<dyn CertSource>` so chaos wrappers slot in without touching
/// the cache.
pub trait CertSource: Send + Sync {
    /// Fetch the certificate for `principal` (may charge simulated RTT,
    /// fail transiently, or serve stale data — the PVC re-verifies).
    fn fetch_cert(&self, principal: &Principal) -> Result<Certificate>;
}

impl CertSource for Directory {
    fn fetch_cert(&self, principal: &Principal) -> Result<Certificate> {
        self.fetch(principal)
    }
}

/// Directory statistics.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DirectoryStats {
    /// Certificate fetches served.
    pub fetches: u64,
    /// Fetches for unknown principals.
    pub not_found: u64,
    /// Total simulated round-trip time charged, in microseconds.
    pub simulated_rtt_us: u64,
}

struct Inner {
    certs: HashMap<Principal, Certificate>,
    stats: DirectoryStats,
}

/// An in-process certificate directory with simulated fetch latency.
pub struct Directory {
    inner: Mutex<Inner>,
    /// Simulated per-fetch round-trip time.
    rtt: Duration,
    /// When true, fetches actually sleep for `rtt` (live demos); when
    /// false, the RTT is only accounted in the stats (benchmarks and
    /// simulation use the accounted value).
    real_sleep: bool,
}

impl Directory {
    /// Create a directory charging `rtt` per fetch.
    pub fn new(rtt: Duration) -> Self {
        Directory {
            inner: Mutex::new(Inner {
                certs: HashMap::new(),
                stats: DirectoryStats::default(),
            }),
            rtt,
            real_sleep: false,
        }
    }

    /// Make fetches really sleep for the configured RTT.
    pub fn with_real_latency(mut self) -> Self {
        self.real_sleep = true;
        self
    }

    /// Publish (or replace) a certificate.
    pub fn publish(&self, cert: Certificate) {
        let mut inner = self.inner.lock();
        inner.certs.insert(cert.subject.clone(), cert);
    }

    /// Remove a principal's certificate (revocation-by-omission).
    pub fn withdraw(&self, principal: &Principal) {
        self.inner.lock().certs.remove(principal);
    }

    /// Fetch the certificate for `principal`, charging one RTT.
    pub fn fetch(&self, principal: &Principal) -> Result<Certificate> {
        let result = {
            let mut inner = self.inner.lock();
            inner.stats.fetches += 1;
            inner.stats.simulated_rtt_us += self.rtt.as_micros() as u64;
            match inner.certs.get(principal) {
                Some(c) => Ok(c.clone()),
                None => {
                    inner.stats.not_found += 1;
                    Err(FbsError::PrincipalUnknown(principal.to_string()))
                }
            }
        };
        if self.real_sleep {
            std::thread::sleep(self.rtt);
        }
        result
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> DirectoryStats {
        self.inner.lock().stats
    }

    /// Number of published certificates.
    pub fn len(&self) -> usize {
        self.inner.lock().certs.len()
    }

    /// True when no certificates are published.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::authority::CertificateAuthority;
    use fbs_crypto::dh::{DhGroup, PrivateValue};

    fn cert_for(name: &str) -> Certificate {
        let ca = CertificateAuthority::new("ca", [1u8; 16]);
        let pv = PrivateValue::from_entropy(DhGroup::test_group(), name.as_bytes()).public_value();
        ca.issue(Principal::named(name), pv, 0, u64::MAX)
    }

    #[test]
    fn publish_fetch_roundtrip() {
        let dir = Directory::new(Duration::from_millis(10));
        dir.publish(cert_for("alice"));
        let c = dir.fetch(&Principal::named("alice")).unwrap();
        assert_eq!(c.subject, Principal::named("alice"));
        let s = dir.stats();
        assert_eq!(s.fetches, 1);
        assert_eq!(s.simulated_rtt_us, 10_000);
    }

    #[test]
    fn unknown_principal_counts_not_found() {
        let dir = Directory::new(Duration::from_millis(1));
        assert!(dir.fetch(&Principal::named("ghost")).is_err());
        assert_eq!(dir.stats().not_found, 1);
        // Even failed fetches cost the round trip.
        assert_eq!(dir.stats().simulated_rtt_us, 1_000);
    }

    #[test]
    fn withdraw_revokes() {
        let dir = Directory::new(Duration::ZERO);
        dir.publish(cert_for("bob"));
        assert!(dir.fetch(&Principal::named("bob")).is_ok());
        dir.withdraw(&Principal::named("bob"));
        assert!(dir.fetch(&Principal::named("bob")).is_err());
    }

    #[test]
    fn republish_replaces() {
        let dir = Directory::new(Duration::ZERO);
        dir.publish(cert_for("carol"));
        let newer = cert_for("carol");
        dir.publish(newer.clone());
        assert_eq!(dir.len(), 1);
        assert_eq!(dir.fetch(&Principal::named("carol")).unwrap(), newer);
    }
}
