//! The public value cache (PVC) — paper §5.3, Fig. 5.
//!
//! The PVC caches *certificates*, not bare public values, so the cache
//! itself need not be secure: every certificate is re-verified each time
//! it is used. Misses fetch from the [`Directory`] through the secure-flow
//! bypass. "The minimum size of PVC should be at least the average number
//! of correspondent principals that a principal can concurrently
//! communicate with."
//!
//! [`Pvc`] implements [`fbs_core::PublicValueSource`], so it slots
//! directly under the master key daemon: MKC miss → MKD upcall → PVC →
//! (on PVC miss) directory fetch.

use crate::authority::{CertVerifier, Certificate};
use crate::directory::CertSource;
use fbs_core::{Clock, Principal, PublicValueSource, Result, RetryPolicy, SoftCache};
use fbs_crypto::crc32;
use fbs_crypto::dh::PublicValue;
use fbs_obs::{CacheKind, Counter, Event, MetricsRegistry, MetricsSnapshot};
use parking_lot::Mutex;
use std::sync::Arc;

/// PVC statistics.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PvcStats {
    /// Lookups served from the cache.
    pub hits: u64,
    /// Lookups that required a directory fetch.
    pub misses: u64,
    /// Certificates that failed their per-use verification.
    pub verify_failures: u64,
    /// Directory-fetch retries after a failed attempt.
    pub retries: u64,
    /// Fetches whose retry schedule was exhausted.
    pub retry_exhausted: u64,
}

impl PvcStats {
    /// Fold these counters into a snapshot under the names a live
    /// [`MetricsRegistry`] uses. The legacy `misses` field has no 3C
    /// breakdown, so only the exactly-mappable counters are contributed.
    pub fn contribute(&self, snap: &mut MetricsSnapshot) {
        snap.add("cache.pvc.hits", self.hits);
        snap.add("pvc.verify_failures", self.verify_failures);
        snap.add("retry.attempts", self.retries);
        snap.add("retry.exhausted", self.retry_exhausted);
    }
}

struct Inner {
    cache: SoftCache<Principal, Certificate>,
    stats: PvcStats,
    obs: Option<Arc<MetricsRegistry>>,
}

/// The public value cache.
pub struct Pvc {
    inner: Mutex<Inner>,
    directory: Arc<dyn CertSource>,
    verifier: CertVerifier,
    clock: Arc<dyn Clock>,
    retry: Option<RetryPolicy>,
}

impl Pvc {
    /// Create a PVC with `slots` direct-mapped certificate slots, backed by
    /// `directory` (a concrete [`crate::Directory`] or any
    /// [`CertSource`]) and verifying against `verifier`.
    pub fn new(
        slots: usize,
        directory: Arc<dyn CertSource>,
        verifier: CertVerifier,
        clock: Arc<dyn Clock>,
    ) -> Self {
        Pvc {
            inner: Mutex::new(Inner {
                cache: SoftCache::new(slots, 1, |p: &Principal| crc32(p.as_bytes())),
                stats: PvcStats::default(),
                obs: None,
            }),
            directory,
            verifier,
            clock,
            retry: None,
        }
    }

    /// Retry failed directory fetches under `policy` (builder style).
    /// Without this, misses are single-shot as in the seed behaviour.
    pub fn with_retry(mut self, policy: RetryPolicy) -> Self {
        self.retry = Some(policy);
        self
    }

    /// Pin a certificate at initialisation (§5.3's alternative to fetches).
    /// Pinned certificates are still verified on every use.
    pub fn pin(&self, cert: Certificate) {
        let mut inner = self.inner.lock();
        inner.cache.insert(cert.subject.clone(), cert);
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> PvcStats {
        self.inner.lock().stats
    }

    /// Attach a metrics registry: cache lookups emit
    /// [`fbs_obs::Event::CacheLookup`] under [`CacheKind::Pvc`] and per-use
    /// verification failures bump [`Counter::PvcVerifyFailures`].
    pub fn attach_obs(&self, registry: Arc<MetricsRegistry>) {
        let mut inner = self.inner.lock();
        inner.cache.set_obs(Arc::clone(&registry), CacheKind::Pvc);
        inner.obs = Some(registry);
    }
}

impl PublicValueSource for Pvc {
    fn fetch(&self, principal: &Principal) -> Result<PublicValue> {
        let now = self.clock.now_secs();
        let mut inner = self.inner.lock();
        let cert = match inner.cache.get(principal) {
            Some(c) => {
                inner.stats.hits += 1;
                c
            }
            None => {
                inner.stats.misses += 1;
                // Secure flow bypass: this request travels unprotected.
                let c = match self.retry {
                    None => self.directory.fetch_cert(principal)?,
                    Some(policy) => {
                        let outcome = policy.run(|| self.directory.fetch_cert(principal));
                        for (i, backoff_us) in outcome.backoffs_us.iter().enumerate() {
                            inner.stats.retries += 1;
                            if let Some(reg) = &inner.obs {
                                reg.record(Event::RetryAttempt {
                                    attempt: i as u32 + 1,
                                    backoff_us: *backoff_us,
                                });
                            }
                        }
                        match outcome.result {
                            Ok(c) => c,
                            Err(e) => {
                                if outcome.exhausted && outcome.attempts > 1 {
                                    inner.stats.retry_exhausted += 1;
                                    if let Some(reg) = &inner.obs {
                                        reg.record(Event::RetryExhausted {
                                            attempts: outcome.attempts,
                                        });
                                    }
                                }
                                return Err(e);
                            }
                        }
                    }
                };
                inner.cache.insert(principal.clone(), c.clone());
                c
            }
        };
        // Verified on each use — the cache is untrusted storage (§5.3).
        if let Err(e) = self.verifier.verify(&cert, now) {
            inner.stats.verify_failures += 1;
            if let Some(reg) = &inner.obs {
                reg.incr(Counter::PvcVerifyFailures);
            }
            // Drop the bad entry so a refreshed certificate can be fetched.
            inner.cache.invalidate(principal);
            return Err(e);
        }
        Ok(cert.public_value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::authority::CertificateAuthority;
    use crate::directory::Directory;
    use fbs_core::ManualClock;
    use fbs_crypto::dh::{DhGroup, PrivateValue};
    use std::time::Duration;

    struct World {
        pvc: Pvc,
        dir: Arc<Directory>,
        ca: CertificateAuthority,
        clock: ManualClock,
    }

    fn world() -> World {
        let ca = CertificateAuthority::new("ca", [3u8; 16]);
        let dir = Arc::new(Directory::new(Duration::from_millis(50)));
        let clock = ManualClock::starting_at(1000);
        let pvc = Pvc::new(16, dir.clone(), ca.verifier(), Arc::new(clock.clone()));
        World {
            pvc,
            dir,
            ca,
            clock,
        }
    }

    fn publish(w: &World, name: &str, not_after: u64) -> PublicValue {
        let pv = PrivateValue::from_entropy(DhGroup::test_group(), name.as_bytes()).public_value();
        w.dir
            .publish(w.ca.issue(Principal::named(name), pv.clone(), 0, not_after));
        pv
    }

    #[test]
    fn miss_then_hit() {
        let w = world();
        let expected = publish(&w, "alice", u64::MAX);
        let alice = Principal::named("alice");
        assert_eq!(w.pvc.fetch(&alice).unwrap(), expected);
        assert_eq!(w.pvc.fetch(&alice).unwrap(), expected);
        let s = w.pvc.stats();
        assert_eq!((s.hits, s.misses), (1, 1));
        // Only the miss touched the network.
        assert_eq!(w.dir.stats().fetches, 1);
    }

    #[test]
    fn cached_cert_expires_and_is_refetched() {
        let w = world();
        publish(&w, "bob", 2000);
        let bob = Principal::named("bob");
        assert!(w.pvc.fetch(&bob).is_ok());
        w.clock.set(3000); // cert now expired
        assert!(w.pvc.fetch(&bob).is_err());
        assert_eq!(w.pvc.stats().verify_failures, 1);
        // Publish a renewed certificate; the stale entry was dropped, so
        // the next fetch goes to the directory and succeeds.
        publish(&w, "bob", 10_000);
        assert!(w.pvc.fetch(&bob).is_ok());
        assert_eq!(w.dir.stats().fetches, 2);
    }

    #[test]
    fn pinned_certificate_avoids_network() {
        let w = world();
        let pv = PrivateValue::from_entropy(DhGroup::test_group(), b"carol-entropy").public_value();
        w.pvc
            .pin(w.ca.issue(Principal::named("carol"), pv.clone(), 0, u64::MAX));
        assert_eq!(w.pvc.fetch(&Principal::named("carol")).unwrap(), pv);
        assert_eq!(w.dir.stats().fetches, 0);
    }

    #[test]
    fn unknown_principal_propagates() {
        let w = world();
        assert!(w.pvc.fetch(&Principal::named("ghost")).is_err());
        assert_eq!(w.pvc.stats().misses, 1);
    }

    #[test]
    fn obs_registry_mirrors_pvc_stats() {
        let w = world();
        let reg = Arc::new(MetricsRegistry::new());
        w.pvc.attach_obs(Arc::clone(&reg));
        publish(&w, "erin", 2000);
        let erin = Principal::named("erin");
        assert!(w.pvc.fetch(&erin).is_ok()); // miss, verify ok
        assert!(w.pvc.fetch(&erin).is_ok()); // hit
        w.clock.set(3000);
        assert!(w.pvc.fetch(&erin).is_err()); // hit, then verify failure
        let live = reg.snapshot();
        assert_eq!(live.counter("cache.pvc.hits"), 2);
        // The PVC runs without 3C classification, so misses are capacity.
        assert_eq!(live.counter("cache.pvc.capacity_misses"), 1);
        assert_eq!(live.counter("pvc.verify_failures"), 1);
        let mut legacy = MetricsSnapshot::new();
        w.pvc.stats().contribute(&mut legacy);
        assert_eq!(
            legacy.counter("cache.pvc.hits"),
            live.counter("cache.pvc.hits")
        );
        assert_eq!(
            legacy.counter("pvc.verify_failures"),
            live.counter("pvc.verify_failures")
        );
    }

    /// A [`CertSource`] that fails the first `fail_first` fetches.
    struct FlakyDirectory {
        inner: Arc<Directory>,
        calls: std::sync::atomic::AtomicU64,
        fail_first: u64,
    }

    impl CertSource for FlakyDirectory {
        fn fetch_cert(&self, principal: &Principal) -> Result<Certificate> {
            let n = self.calls.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
            if n < self.fail_first {
                Err(fbs_core::FbsError::Transport("directory outage".into()))
            } else {
                self.inner.fetch(principal)
            }
        }
    }

    #[test]
    fn retry_rides_out_transient_directory_failures() {
        let ca = CertificateAuthority::new("ca", [3u8; 16]);
        let dir = Arc::new(Directory::new(Duration::from_millis(50)));
        let clock = ManualClock::starting_at(1000);
        let flaky = Arc::new(FlakyDirectory {
            inner: dir.clone(),
            calls: std::sync::atomic::AtomicU64::new(0),
            fail_first: 2,
        });
        let pvc = Pvc::new(16, flaky, ca.verifier(), Arc::new(clock)).with_retry(RetryPolicy {
            max_attempts: 4,
            base_backoff_us: 100,
            max_backoff_us: 1_000,
            deadline_us: 100_000,
            jitter_seed: 5,
        });
        let pv = PrivateValue::from_entropy(DhGroup::test_group(), b"frank-e").public_value();
        dir.publish(ca.issue(Principal::named("frank"), pv.clone(), 0, u64::MAX));
        // Two transient failures, then success — one logical miss.
        assert_eq!(pvc.fetch(&Principal::named("frank")).unwrap(), pv);
        let s = pvc.stats();
        assert_eq!((s.misses, s.retries, s.retry_exhausted), (1, 2, 0));
        // Warm now: no further fetches or retries.
        assert!(pvc.fetch(&Principal::named("frank")).is_ok());
        assert_eq!(pvc.stats().retries, 2);
    }

    #[test]
    fn retry_exhaustion_counts_and_propagates() {
        let ca = CertificateAuthority::new("ca", [3u8; 16]);
        let dir = Arc::new(Directory::new(Duration::ZERO));
        let clock = ManualClock::starting_at(1000);
        let flaky = Arc::new(FlakyDirectory {
            inner: dir,
            calls: std::sync::atomic::AtomicU64::new(0),
            fail_first: u64::MAX,
        });
        let pvc = Pvc::new(16, flaky, ca.verifier(), Arc::new(clock)).with_retry(RetryPolicy {
            max_attempts: 3,
            base_backoff_us: 100,
            max_backoff_us: 1_000,
            deadline_us: 100_000,
            jitter_seed: 5,
        });
        let reg = Arc::new(MetricsRegistry::new());
        pvc.attach_obs(Arc::clone(&reg));
        assert!(pvc.fetch(&Principal::named("gone")).is_err());
        let s = pvc.stats();
        assert_eq!((s.retries, s.retry_exhausted), (2, 1));
        let snap = reg.snapshot();
        assert_eq!(snap.counter("retry.attempts"), 2);
        assert_eq!(snap.counter("retry.exhausted"), 1);
    }

    #[test]
    fn tampered_pinned_cert_rejected_per_use() {
        // The PVC is untrusted storage: a corrupted entry must be caught by
        // the per-use verification.
        let w = world();
        let pv = PrivateValue::from_entropy(DhGroup::test_group(), b"dave-entropy").public_value();
        let mut cert = w.ca.issue(Principal::named("dave"), pv, 0, u64::MAX);
        cert.public_value.bytes[0] ^= 0xFF; // corrupt after signing
        w.pvc.pin(cert);
        assert!(w.pvc.fetch(&Principal::named("dave")).is_err());
        assert_eq!(w.pvc.stats().verify_failures, 1);
    }
}
