//! Property tests for the batch-first hook pipeline: pushing a batch of
//! datagrams through [`Host::ip_output_batch`] / [`Host::deliver_frames`]
//! (one `process_batch` hook call) is bit-identical to pushing the same
//! datagrams one at a time through the scalar `ip_output` /
//! `deliver_frame` wrappers — across padding edges, every cipher mode,
//! MAC truncation, and batches mixing covered (UDP) and uncovered
//! (bypass) protocols.

// Property tests are opt-in: run with `cargo test --features props`.
#![cfg(feature = "props")]

use fbs_cert::{CertificateAuthority, Directory};
use fbs_core::header::EncAlgorithm;
use fbs_core::ManualClock;
use fbs_crypto::dh::DhGroup;
use fbs_ip::hooks::IpMappingConfig;
use fbs_ip::host::build_secure_host;
use fbs_net::ip::{Ipv4Header, Proto};
use fbs_net::Host;
use proptest::prelude::*;
use std::sync::Arc;
use std::time::Duration;

const A: [u8; 4] = [10, 7, 0, 1];
const B: [u8; 4] = [10, 7, 0, 2];
const NOW_US: u64 = 5_000_000;

/// One item heading into a batch: a UDP datagram (covered by the hooks)
/// or a bypass datagram (never touched by them).
#[derive(Clone, Debug)]
struct Item {
    covered: bool,
    fill: u8,
    data_len: usize,
}

impl Item {
    /// The transport payload handed to `ip_output`.
    fn payload(&self) -> Vec<u8> {
        let body = vec![self.fill; self.data_len];
        if self.covered {
            fbs_net::udp::encode(A, B, 4000, 53, &body)
        } else {
            body
        }
    }

    fn header(&self, payload_len: usize) -> Ipv4Header {
        let proto = if self.covered {
            Proto::Udp
        } else {
            Proto::Bypass
        };
        Ipv4Header::new(A, B, proto, payload_len)
    }
}

/// Build a deterministic sender/receiver pair sharing one CA, directory,
/// and clock. Called twice with the same config it yields bit-identical
/// twins (all key material derives from the fixed seeds).
fn world(cfg: &IpMappingConfig) -> (Host, Host) {
    let clock = ManualClock::starting_at(3);
    let ca = CertificateAuthority::new("props-ca", [0x5A; 16]);
    let directory = Arc::new(Directory::new(Duration::ZERO));
    let group = DhGroup::test_group();
    let (sender, _) = build_secure_host(
        A,
        1500,
        cfg.clone(),
        clock.clone(),
        &group,
        &ca,
        &directory,
        7,
    );
    let (mut receiver, _) = build_secure_host(
        B,
        1500,
        cfg.clone(),
        clock.clone(),
        &group,
        &ca,
        &directory,
        8,
    );
    receiver.udp.bind(53).unwrap();
    (sender, receiver)
}

fn cfg_for(enc_id: u8, encrypt: bool, truncate: bool) -> IpMappingConfig {
    let mut cfg = IpMappingConfig::default();
    cfg.encrypt = encrypt;
    cfg.fbs.enc_alg = EncAlgorithm::from_wire_id(enc_id).expect("valid wire id");
    cfg.fbs.mac_truncate = truncate.then_some(8);
    cfg
}

/// Padding edges: empty, sub-block, one-off-block, exact block, and a
/// multi-fragment datagram that is 7 bytes past an 8 KiB block boundary.
fn item_strategy() -> impl Strategy<Value = Item> {
    const LENS: [usize; 5] = [0, 1, 7, 8, 8 * 1024 + 7];
    (any::<bool>(), any::<u8>(), 0usize..LENS.len()).prop_map(|(covered, fill, i)| Item {
        covered,
        fill,
        data_len: LENS[i],
    })
}

/// The pipeline equivalence law: batch and scalar submission produce
/// byte-identical wire frames, and batch and scalar delivery produce
/// byte-identical plaintexts in the same order.
fn check_equivalence(
    items: &[Item],
    enc_id: u8,
    encrypt: bool,
    truncate: bool,
) -> Result<(), TestCaseError> {
    let cfg = cfg_for(enc_id, encrypt, truncate);
    let (mut tx_scalar, mut rx_scalar) = world(&cfg);
    let (mut tx_batch, mut rx_batch) = world(&cfg);

    // ---- output: scalar loop vs one batch call ----
    let mut scalar_results = Vec::new();
    for item in items {
        let payload = item.payload();
        let header = item.header(payload.len());
        scalar_results.push(tx_scalar.ip_output(header, payload, NOW_US).is_ok());
    }
    let batch_items: Vec<_> = items
        .iter()
        .map(|item| {
            let payload = item.payload();
            let header = item.header(payload.len());
            (header, payload)
        })
        .collect();
    let batch_results: Vec<bool> = tx_batch
        .ip_output_batch(batch_items, NOW_US)
        .into_iter()
        .map(|r| r.is_ok())
        .collect();
    prop_assert_eq!(&scalar_results, &batch_results, "per-datagram verdicts");

    let scalar_frames = tx_scalar.take_frames();
    let batch_frames = tx_batch.take_frames();
    prop_assert_eq!(&scalar_frames, &batch_frames, "wire frames bit-identical");

    // ---- input: scalar loop vs one batch call ----
    for f in &scalar_frames {
        rx_scalar.deliver_frame(f, NOW_US);
    }
    rx_batch.deliver_frames(&batch_frames, NOW_US);

    // Every covered datagram decrypts back to the original body, in
    // submission order, on both receivers; bypass datagrams arrive
    // untouched.
    for item in items {
        if item.covered {
            let s = rx_scalar.udp.recv(53).expect("scalar delivery");
            let b = rx_batch.udp.recv(53).expect("batch delivery");
            prop_assert_eq!(&s.data, &b.data, "plaintexts bit-identical");
            prop_assert_eq!(&s.data, &vec![item.fill; item.data_len]);
        } else {
            let (_, s) = rx_scalar.bypass_recv().expect("scalar bypass");
            let (_, b) = rx_batch.bypass_recv().expect("batch bypass");
            prop_assert_eq!(&s, &b);
            prop_assert_eq!(&s, &vec![item.fill; item.data_len]);
        }
    }
    prop_assert!(rx_scalar.udp.recv(53).is_none(), "no extra datagrams");
    prop_assert!(rx_batch.udp.recv(53).is_none());
    prop_assert_eq!(
        rx_scalar.stats().hook_input_rejects,
        rx_batch.stats().hook_input_rejects
    );
    prop_assert_eq!(rx_scalar.stats().dispatched, rx_batch.stats().dispatched);
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn batch_pipeline_is_bit_identical_to_scalar(
        items in proptest::collection::vec(item_strategy(), 1..5),
        enc_id in 0u8..6,
        encrypt in any::<bool>(),
        truncate in any::<bool>(),
    ) {
        check_equivalence(&items, enc_id, encrypt, truncate)?;
    }
}
