//! The §7.2 router-transparency claim, end to end: FBS-protected traffic
//! crosses a pure-IP forwarding router (which contains zero FBS code) and
//! verifies on the far side — including when the router must fragment.

use fbs_cert::{CertificateAuthority, Directory};
use fbs_core::ManualClock;
use fbs_crypto::dh::DhGroup;
use fbs_ip::hooks::IpMappingConfig;
use fbs_ip::host::build_secure_host;
use fbs_net::router::TwoLanWorld;
use fbs_net::segment::Impairments;
use std::sync::Arc;
use std::time::Duration;

const A1: [u8; 4] = [10, 1, 0, 1];
const B1: [u8; 4] = [10, 2, 0, 1];

struct World {
    w: TwoLanWorld,
    clock: ManualClock,
    ha: fbs_ip::FbsIpHooks,
    hb: fbs_ip::FbsIpHooks,
}

impl World {
    fn step_all(&mut self, duration_us: u64) {
        let end = self.w.now_us() + duration_us;
        while self.w.now_us() < end {
            self.w.step(1_000);
            self.clock.set(self.w.now_us() / 1_000_000);
        }
    }
}

fn secure_two_lan_world(mtu_b: usize) -> World {
    let clock = ManualClock::starting_at(0);
    let ca = CertificateAuthority::new("router-test-ca", [0x77; 16]);
    let directory = Arc::new(Directory::new(Duration::from_millis(5)));
    let group = DhGroup::test_group();
    let cfg = IpMappingConfig::default();

    let (host_a, ha) = build_secure_host(
        A1,
        1500,
        cfg.clone(),
        clock.clone(),
        &group,
        &ca,
        &directory,
        0xAB,
    );
    let (host_b, hb) =
        build_secure_host(B1, mtu_b, cfg, clock.clone(), &group, &ca, &directory, 0xAB);

    let mut w = TwoLanWorld::new(
        9,
        Impairments::default(),
        Impairments::default(),
        1500,
        mtu_b,
    );
    w.add_host_a(host_a);
    w.add_host_b(host_b);
    World { w, clock, ha, hb }
}

#[test]
fn fbs_traffic_verifies_across_the_router() {
    let mut world = secure_two_lan_world(1500);
    world.w.host_mut(B1).udp.bind(53).unwrap();
    for i in 0..5 {
        let now = world.w.now_us();
        world
            .w
            .host_mut(A1)
            .udp_send(4000, B1, 53, format!("hop {i}").as_bytes(), now)
            .unwrap();
        world.step_all(50_000);
    }
    assert_eq!(world.w.host_mut(B1).udp.pending(53), 5);
    assert_eq!(world.ha.stats().protected, 5);
    assert_eq!(world.hb.stats().verified, 5);
    assert_eq!(world.w.router_stats().forwarded, 5);
    // The router did plain IP forwarding — FBS never touched it.
    assert_eq!(world.hb.stats().input_errors, 0);
}

#[test]
fn router_fragmentation_is_transparent_to_fbs() {
    // LAN B has a 576-byte MTU: the router fragments every full-size
    // protected datagram; host B reassembles BEFORE the FBS input hook
    // (parts 2 then 3 of ip_input), so verification still succeeds — one
    // security flow header protecting the whole datagram, exactly as §7.2
    // promises.
    let mut world = secure_two_lan_world(576);
    world.w.host_mut(B1).udp.bind(53).unwrap();
    let big = vec![0x42u8; 1200];
    world
        .w
        .host_mut(A1)
        .udp_send(4000, B1, 53, &big, 0)
        .unwrap();
    world.step_all(300_000);
    assert!(world.w.router_stats().fragmented >= 1);
    let got = world
        .w
        .host_mut(B1)
        .udp
        .recv(53)
        .expect("verified delivery");
    assert_eq!(got.data, big);
    assert_eq!(world.hb.stats().verified, 1);
    assert_eq!(world.hb.stats().input_errors, 0);
}

#[test]
fn mrt_bulk_transfer_across_router() {
    let mut world = secure_two_lan_world(1500);
    world.w.host_mut(B1).mrt.listen(80);
    let key = world.w.host_mut(A1).mrt.connect(2000, B1, 80);
    world.step_all(500_000);
    let data: Vec<u8> = (0..20_000u32).map(|i| (i % 251) as u8).collect();
    world.w.host_mut(A1).mrt.send(&key, &data).unwrap();
    let mut got = Vec::new();
    for _ in 0..100 {
        world.step_all(100_000);
        got.extend(world.w.host_mut(B1).mrt.recv(&(80, A1, 2000), usize::MAX));
        if got.len() >= data.len() {
            break;
        }
    }
    assert_eq!(got, data, "reliable protected transfer across the router");
    // No DF drops at the router: MRT sized its segments for its own MTU
    // and the FBS allowance, and both LANs share that MTU.
    assert_eq!(world.w.router_stats().df_drops, 0);
}
