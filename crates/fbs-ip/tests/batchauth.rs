//! Batch-authentication bisection under the worker runtime: the
//! ledger-balance CI gate, extended to the deferred-MAC failure path.
//!
//! PR 10 made the input hot path defer MAC comparisons: each worker
//! accumulates (computed, shipped) tag pairs per sub-batch and resolves
//! them with one constant-time fold, bisecting only when the fold
//! detects a mismatch. The failure path re-threads a tentative `Pass`
//! into a `Reject` *after* the body buffer was already accounted to the
//! flow — exactly the kind of late unwind that leaks pool buffers if
//! any branch forgets a `put`. This test drives corrupted datagrams
//! through `process_batch` and gates:
//!
//! * corrupted datagrams come back `Reject` ("bad MAC"), clean ones
//!   `Pass` with intact bodies — per-datagram verifiability survives
//!   the batch amortisation;
//! * the caller's [`BufferPool`] ledger balances exactly
//!   (hits + misses == returns + discards) across the bisection path;
//! * the `batchauth.*` counters record the resolutions, the bisections
//!   the corruption forced, and the precise rejected count.

use fbs_cert::{CertificateAuthority, Directory};
use fbs_core::{BufferPool, ManualClock};
use fbs_crypto::dh::DhGroup;
use fbs_ip::hooks::FbsIpHooks;
use fbs_ip::hooks::IpMappingConfig;
use fbs_ip::host::build_secure_host;
use fbs_net::ip::{Ipv4Header, Proto};
use fbs_net::{Datagram, HookOutcome, SecurityHooks};
use fbs_obs::{Direction, MetricsRegistry};
use std::sync::Arc;
use std::time::Duration;

const A: [u8; 4] = [10, 9, 0, 1];
const B: [u8; 4] = [10, 9, 0, 2];
const NOW_US: u64 = 1_000_000;
const BATCH: usize = 16;

fn build_pair() -> (FbsIpHooks, FbsIpHooks, Arc<MetricsRegistry>) {
    let clock = ManualClock::starting_at(0);
    let ca = CertificateAuthority::new("batchauth-test-ca", [0x61; 16]);
    let directory = Arc::new(Directory::new(Duration::ZERO));
    let group = DhGroup::test_group();
    let cfg = IpMappingConfig {
        encrypt: true,
        workers: 2,
        ..IpMappingConfig::default()
    };
    let (_ha, sender) = build_secure_host(
        A,
        1500,
        cfg.clone(),
        clock.clone(),
        &group,
        &ca,
        &directory,
        31,
    );
    let (_hb, receiver) = build_secure_host(B, 1500, cfg, clock, &group, &ca, &directory, 32);
    let reg = Arc::new(MetricsRegistry::new());
    receiver
        .attach_obs(Arc::clone(&reg))
        .expect("attach obs before traffic");
    (sender, receiver, reg)
}

/// Build a flow payload in a pool buffer: every Vec the test feeds to
/// `process_batch` originates from the caller pool, so the ledger gate
/// below can demand exact balance (takes == puts) with no external
/// allocations muddying the books.
fn payload_for(pool: &mut BufferPool, sport: u16, seq: u32) -> Vec<u8> {
    let mut p = pool.take();
    p.extend_from_slice(&sport.to_be_bytes());
    p.extend_from_slice(&53u16.to_be_bytes());
    p.extend_from_slice(&seq.to_be_bytes());
    p.extend_from_slice(b"batch auth bisection body");
    p.push(seq as u8);
    p
}

/// The expected plaintext for a `(sport, seq)` datagram, allocated
/// outside the pool for comparison only.
fn expected_body(sport: u16, seq: u32) -> Vec<u8> {
    let mut p = Vec::new();
    p.extend_from_slice(&sport.to_be_bytes());
    p.extend_from_slice(&53u16.to_be_bytes());
    p.extend_from_slice(&seq.to_be_bytes());
    p.extend_from_slice(b"batch auth bisection body");
    p.push(seq as u8);
    p
}

#[test]
fn bisection_rejects_corrupt_datagrams_and_balances_the_pool_ledger() {
    let (mut sender, mut receiver, reg) = build_pair();
    let mut pool = BufferPool::new();

    // Warm the flow so key derivation is out of the way and the timed
    // batch exercises only the deferred open path.
    let warm = payload_for(&mut pool, 4000, 0);
    let header = Ipv4Header::new(A, B, Proto::Udp, warm.len());
    let sealed = sender.process_batch(
        Direction::Output,
        vec![Datagram {
            header,
            payload: warm,
        }],
        &mut pool,
        NOW_US,
    );
    for (header, outcome) in sealed {
        match outcome {
            HookOutcome::Pass(wire) => {
                for (_, o) in receiver.process_batch(
                    Direction::Input,
                    vec![Datagram {
                        header,
                        payload: wire,
                    }],
                    &mut pool,
                    NOW_US,
                ) {
                    match o {
                        HookOutcome::Pass(body) => pool.put(body),
                        other => panic!("warmup open failed: {other:?}"),
                    }
                }
            }
            other => panic!("warmup seal failed: {other:?}"),
        }
    }

    // Seal a batch, then corrupt the trailing byte (ciphertext/MAC
    // trailer — never the header) of every fourth datagram. The fold
    // over each worker's sub-batch must then mismatch and bisect down
    // to exactly the corrupted items.
    const ROUNDS: u32 = 4;
    let mut sent = 0u64;
    let mut corrupted_total = 0u64;
    for round in 0..ROUNDS {
        let batch: Vec<Datagram> = (0..BATCH)
            .map(|i| {
                let payload = payload_for(&mut pool, 4000 + i as u16, round);
                let header = Ipv4Header::new(A, B, Proto::Udp, payload.len());
                Datagram { header, payload }
            })
            .collect();
        sent += BATCH as u64;
        let sealed = sender.process_batch(Direction::Output, batch, &mut pool, NOW_US);
        let mut corrupt_idx = Vec::new();
        let rx_batch: Vec<Datagram> = sealed
            .into_iter()
            .enumerate()
            .map(|(i, (header, outcome))| match outcome {
                HookOutcome::Pass(mut wire) => {
                    if i % 4 == 1 {
                        *wire.last_mut().expect("sealed wire is non-empty") ^= 0x5A;
                        corrupt_idx.push(i);
                    }
                    Datagram {
                        header,
                        payload: wire,
                    }
                }
                other => panic!("seal failed: {other:?}"),
            })
            .collect();
        corrupted_total += corrupt_idx.len() as u64;

        let opened = receiver.process_batch(Direction::Input, rx_batch, &mut pool, NOW_US);
        assert_eq!(opened.len(), BATCH, "batch-auth must not drop datagrams");
        for (i, (_, outcome)) in opened.into_iter().enumerate() {
            if corrupt_idx.contains(&i) {
                match outcome {
                    HookOutcome::Reject(reason) => {
                        assert!(
                            reason.contains("bad MAC"),
                            "corrupt datagram must fail authentication, got {reason:?}"
                        );
                    }
                    other => panic!("forged datagram {i} must be rejected, got {other:?}"),
                }
            } else {
                match outcome {
                    HookOutcome::Pass(body) => {
                        let sport = u16::from_be_bytes([body[0], body[1]]);
                        assert_eq!(
                            body,
                            expected_body(sport, round),
                            "clean datagram must round-trip exactly"
                        );
                        pool.put(body);
                    }
                    other => panic!("clean datagram {i} must pass, got {other:?}"),
                }
            }
        }
    }

    // Ground truth vs hook counters: every corruption rejected, every
    // clean datagram verified (the +1 is the warmup).
    assert!(corrupted_total > 0, "test must actually corrupt something");
    let stats = receiver.stats();
    assert_eq!(stats.input_errors, corrupted_total);
    assert_eq!(stats.verified, sent - corrupted_total + 1);

    // The ledger-balance CI gate, through the bisection path: every
    // buffer the pool handed out came back. A leak on the deferred
    // failure path (Pass body replaced by Reject after accounting)
    // shows up as takes > puts here.
    let s = pool.stats();
    assert_eq!(
        s.hits + s.misses,
        s.returns + s.discards,
        "pool ledger out of balance across batch-auth bisection: {s:?}"
    );

    // The batchauth counters saw the work: at least one resolution per
    // sub-batch round, bisections forced by the corrupted folds, and
    // exactly the rejected count the ground truth demands.
    let snap = reg.snapshot();
    let counter = |name: &str| snap.counters.get(name).copied().unwrap_or(0);
    assert!(counter("batchauth.resolutions") >= u64::from(ROUNDS));
    assert!(counter("batchauth.checked") >= sent);
    assert!(
        counter("batchauth.bisections") > 0,
        "corrupted folds must trigger bisection: {:?}",
        snap.counters
    );
    assert_eq!(counter("batchauth.rejected"), corrupted_total);
    // Suite-labelled open counter: default config runs the paper suite.
    assert!(counter("crypto.open.paper") >= sent - corrupted_total);
}
