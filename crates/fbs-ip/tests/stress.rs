//! Threaded stress test for the worker-runtime hook state: four OS
//! threads drive mixed flows through ONE shared IP mapping (cloned
//! handles — each clone gets its own SPSC lane into the shared
//! shard-owning workers; one `BufferPool` per thread, pools are
//! deliberately not thread-safe) while a scraper thread hammers the
//! lock-free statistics accessors.
//!
//! Invariants checked under contention:
//!
//! * **per-flow FIFO**: each flow's datagrams decrypt to its exact
//!   submitted sequence, in order;
//! * **no loss, no duplication**: every sent datagram is verified exactly
//!   once;
//! * **CacheStats coherence**: RFKC hits + misses == lookups, with
//!   exactly one cold miss per flow (the quiet post-derivation re-check
//!   must not double-count);
//! * **keying economy**: one MKD upcall per peer, total, across all
//!   threads (the double-checked master-key probe holds up).

use fbs_cert::{CertificateAuthority, Directory};
use fbs_core::{BufferPool, ManualClock};
use fbs_crypto::dh::DhGroup;
use fbs_ip::hooks::{FbsIpHooks, IpMappingConfig};
use fbs_ip::host::build_secure_host;
use fbs_net::ip::{Ipv4Header, Proto};
use fbs_net::{Datagram, HookOutcome, SecurityHooks};
use fbs_obs::Direction;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::Duration;

const A: [u8; 4] = [10, 8, 0, 1];
const B: [u8; 4] = [10, 8, 0, 2];
const THREADS: usize = 4;
const FLOWS_PER_THREAD: usize = 4;
const DATAGRAMS_PER_FLOW: usize = 64;
const BATCH: usize = 8;
const NOW_US: u64 = 1_000_000;

/// Deterministic world: both endpoints share one CA, directory, and
/// clock, so certificates are mutually available and all key material
/// derives from the fixed seeds.
fn build_pair() -> (FbsIpHooks, FbsIpHooks) {
    let clock = ManualClock::starting_at(0);
    let ca = CertificateAuthority::new("stress-test-ca", [0x57; 16]);
    let directory = Arc::new(Directory::new(Duration::ZERO));
    let group = DhGroup::test_group();
    let cfg = IpMappingConfig {
        encrypt: true,
        workers: 2,
        ..IpMappingConfig::default()
    };
    let (_ha, sender) = build_secure_host(
        A,
        1500,
        cfg.clone(),
        clock.clone(),
        &group,
        &ca,
        &directory,
        7,
    );
    let (_hb, receiver) = build_secure_host(B, 1500, cfg, clock, &group, &ca, &directory, 8);
    (sender, receiver)
}

/// A flow's UDP payload: 4-tuple-bearing port prefix, then the sequence
/// number, then a body that varies with (flow, seq) so corruption or
/// cross-flow mixups cannot cancel out.
fn payload_for(sport: u16, seq: u32) -> Vec<u8> {
    let mut p = Vec::with_capacity(32);
    p.extend_from_slice(&sport.to_be_bytes());
    p.extend_from_slice(&53u16.to_be_bytes());
    p.extend_from_slice(&seq.to_be_bytes());
    p.extend_from_slice(&sport.to_le_bytes());
    p.extend_from_slice(b"sharded stress body");
    p.push(seq as u8);
    p
}

#[test]
fn four_threads_share_one_mapping_without_loss_reorder_or_miscount() {
    let (sender, receiver) = build_pair();
    assert!(sender.num_shards() > 1, "test requires real sharding");
    assert_eq!(sender.num_workers(), 2, "test requires the worker runtime");
    let done = Arc::new(AtomicBool::new(false));

    // Scraper: reads every lock-free accessor in a tight loop while the
    // workers run. A deadlock or a torn read here fails the test by
    // hanging or panicking.
    let scraper = {
        let sender = sender.clone();
        let receiver = receiver.clone();
        let done = Arc::clone(&done);
        thread::spawn(move || {
            let mut scrapes = 0u64;
            while !done.load(Ordering::Relaxed) {
                let s = sender.stats();
                assert!(s.output_errors == 0, "no sender rejects expected: {s:?}");
                let cs = receiver.rfkc_stats();
                assert_eq!(
                    cs.hits + cs.misses(),
                    cs.lookups(),
                    "cache stats must stay coherent mid-flight"
                );
                let _ = sender.endpoint_stats();
                let _ = sender.combined_stats();
                let _ = sender.mkd_stats();
                let _ = sender.ring_stalls();
                let _ = sender.parked_depths();
                scrapes += 1;
            }
            scrapes
        })
    };

    let workers: Vec<_> = (0..THREADS)
        .map(|t| {
            let mut tx = sender.clone();
            let mut rx = receiver.clone();
            thread::spawn(move || {
                let mut pool = BufferPool::new();
                // Disjoint flows per thread: distinct source ports.
                let sports: Vec<u16> = (0..FLOWS_PER_THREAD)
                    .map(|f| 5000 + (t * FLOWS_PER_THREAD + f) as u16)
                    .collect();
                // Interleave flows round-robin so consecutive batch items
                // hit different shards.
                let mut sequence: Vec<(u16, u32)> = Vec::new();
                for seq in 0..DATAGRAMS_PER_FLOW as u32 {
                    for &sport in &sports {
                        sequence.push((sport, seq));
                    }
                }
                let mut received: Vec<(u16, u32)> = Vec::new();
                for chunk in sequence.chunks(BATCH) {
                    let batch: Vec<Datagram> = chunk
                        .iter()
                        .map(|&(sport, seq)| {
                            let payload = payload_for(sport, seq);
                            let header = Ipv4Header::new(A, B, Proto::Udp, payload.len());
                            Datagram { header, payload }
                        })
                        .collect();
                    let sealed = tx.process_batch(Direction::Output, batch, &mut pool, NOW_US);
                    let rx_batch: Vec<Datagram> = sealed
                        .into_iter()
                        .map(|(header, outcome)| match outcome {
                            HookOutcome::Pass(wire) => Datagram {
                                header,
                                payload: wire,
                            },
                            other => panic!("seal failed: {other:?}"),
                        })
                        .collect();
                    let opened = rx.process_batch(Direction::Input, rx_batch, &mut pool, NOW_US);
                    for (_, outcome) in opened {
                        match outcome {
                            HookOutcome::Pass(body) => {
                                let sport = u16::from_be_bytes([body[0], body[1]]);
                                let seq = u32::from_be_bytes([body[4], body[5], body[6], body[7]]);
                                assert_eq!(
                                    body,
                                    payload_for(sport, seq),
                                    "decrypted body must round-trip exactly"
                                );
                                received.push((sport, seq));
                                pool.put(body);
                            }
                            other => panic!("open failed: {other:?}"),
                        }
                    }
                }
                (sports, received)
            })
        })
        .collect();

    let mut total_received = 0usize;
    for worker in workers {
        let (sports, received) = worker.join().expect("worker panicked");
        assert_eq!(received.len(), FLOWS_PER_THREAD * DATAGRAMS_PER_FLOW);
        total_received += received.len();
        // Per-flow FIFO with no loss and no duplication: each flow's
        // received sequence is exactly 0..N in order.
        for &sport in &sports {
            let seqs: Vec<u32> = received
                .iter()
                .filter(|(s, _)| *s == sport)
                .map(|&(_, q)| q)
                .collect();
            let expected: Vec<u32> = (0..DATAGRAMS_PER_FLOW as u32).collect();
            assert_eq!(seqs, expected, "flow {sport} lost FIFO/completeness");
        }
    }
    done.store(true, Ordering::Relaxed);
    let scrapes = scraper.join().expect("scraper panicked");
    assert!(scrapes > 0, "scraper never ran");

    let total = THREADS * FLOWS_PER_THREAD * DATAGRAMS_PER_FLOW;
    let flows = (THREADS * FLOWS_PER_THREAD) as u64;
    assert_eq!(total_received, total);

    // Hook counters agree with the ground truth.
    assert_eq!(sender.stats().protected, total as u64);
    assert_eq!(sender.stats().output_errors, 0);
    assert_eq!(receiver.stats().verified, total as u64);
    assert_eq!(receiver.stats().input_errors, 0);

    // Sender side: one new combined-table flow per 5-tuple, everything
    // else hits (flows are thread-disjoint, so no derivation races).
    let cs = sender.combined_stats().expect("combined path is on");
    assert_eq!(cs.new_flows, flows);
    assert_eq!(cs.hits, total as u64 - flows);
    assert_eq!(cs.collisions, 0);

    // Receiver side: RFKC coherence — one lookup per datagram and
    // hits + misses == lookups exactly. Miss counts exceed the flow
    // count only through direct-mapped set collisions (two flows whose
    // key ids share a set evict each other), so every miss must be
    // matched by a re-derivation insert: insertions == misses.
    let rf = receiver.rfkc_stats();
    assert_eq!(rf.lookups(), total as u64);
    assert_eq!(rf.hits + rf.misses(), rf.lookups());
    assert!(rf.misses() >= flows, "at least one cold miss per flow");
    assert_eq!(rf.insertions, rf.misses());

    // Keying economy: each endpoint keyed exactly one peer, once —
    // concurrent misses collapse onto a single MKD upcall.
    assert_eq!(sender.mkd_stats().upcalls, 1);
    assert_eq!(receiver.mkd_stats().upcalls, 1);
}

/// Per-shard memory budgets under multi-worker pressure: hundreds of
/// flows hammer every shard of a budgeted mapping while another thread
/// reads the lock-free ledgers. Each worker enforces only its own
/// shards' budgets — the invariant is per shard, never global: no
/// ledger may pass its ceiling at any observable moment, and
/// budget-driven eviction (not overshoot) is what absorbs the pressure.
#[test]
fn shard_budgets_hold_their_ceilings_under_multi_worker_pressure() {
    const BUDGET: u64 = 12 * 1024;
    let clock = ManualClock::starting_at(0);
    let ca = CertificateAuthority::new("stress-test-ca", [0x58; 16]);
    let directory = Arc::new(Directory::new(Duration::ZERO));
    let group = DhGroup::test_group();
    let cfg = IpMappingConfig {
        encrypt: true,
        workers: 2,
        shard_budget_bytes: BUDGET,
        ..IpMappingConfig::default()
    };
    let (_ha, mut sender) = build_secure_host(
        A,
        1500,
        cfg.clone(),
        clock.clone(),
        &group,
        &ca,
        &directory,
        21,
    );
    let (_hb, mut receiver) = build_secure_host(B, 1500, cfg, clock, &group, &ca, &directory, 22);

    // Before any traffic, every shard's ledger is exactly the static
    // FST footprint — identical across shards, comfortably under the
    // ceiling so the caches have headroom to fight over.
    let initial = receiver.shard_budgets();
    let static_bytes = initial[0].used_bytes();
    assert!(static_bytes > 0, "static FST footprint must be charged");
    assert!(static_bytes < BUDGET / 2, "budget leaves no cache headroom");
    for snap in &initial {
        assert_eq!(snap.used_bytes(), static_bytes);
        assert_eq!(snap.limit_bytes, BUDGET);
        assert_eq!(snap.exceeded_events, 0);
    }

    // Scraper: the budget invariant must hold at every observable
    // moment, not just at rest — a worker that charges before evicting
    // would be caught mid-flight here.
    let done = Arc::new(AtomicBool::new(false));
    let scraper = {
        let sender = sender.clone();
        let receiver = receiver.clone();
        let done = Arc::clone(&done);
        thread::spawn(move || {
            let mut scrapes = 0u64;
            while !done.load(Ordering::Relaxed) {
                for h in [&sender, &receiver] {
                    let (worst, limit) = h.mem_bytes();
                    assert_eq!(limit, BUDGET);
                    assert!(worst <= limit, "shard ledger past ceiling: {worst}");
                    for snap in h.shard_budgets() {
                        assert!(snap.used_bytes() <= snap.limit_bytes);
                        assert_eq!(snap.exceeded_events, 0, "eviction must precede charge");
                    }
                }
                scrapes += 1;
            }
            scrapes
        })
    };

    // 512 distinct flows spread across all shards: far more resident
    // key state than the budgets allow, so the receive-side flow key
    // caches must evict their own entries to stay under their ceilings.
    const FLOWS: usize = 512;
    const ROUNDS: u32 = 2;
    let mut pool = BufferPool::new();
    for seq in 0..ROUNDS {
        for chunk in (0..FLOWS).collect::<Vec<_>>().chunks(BATCH) {
            let batch: Vec<Datagram> = chunk
                .iter()
                .map(|&f| {
                    let sport = 2000 + f as u16;
                    let payload = payload_for(sport, seq);
                    let header = Ipv4Header::new(A, B, Proto::Udp, payload.len());
                    Datagram { header, payload }
                })
                .collect();
            let sealed = sender.process_batch(Direction::Output, batch, &mut pool, NOW_US);
            let rx_batch: Vec<Datagram> = sealed
                .into_iter()
                .map(|(header, outcome)| match outcome {
                    HookOutcome::Pass(wire) => Datagram {
                        header,
                        payload: wire,
                    },
                    other => panic!("seal failed: {other:?}"),
                })
                .collect();
            for (_, outcome) in
                receiver.process_batch(Direction::Input, rx_batch, &mut pool, NOW_US)
            {
                match outcome {
                    HookOutcome::Pass(body) => pool.put(body),
                    other => panic!("open failed: {other:?}"),
                }
            }
        }
    }
    done.store(true, Ordering::Relaxed);
    let scrapes = scraper.join().expect("scraper panicked");
    assert!(scrapes > 0, "scraper never ran");

    // Isolation: every shard ended under its own ceiling with charges of
    // its own making — static floor plus whatever its caches kept — and
    // the pressure was real (multiple shards hold key state, and the
    // receive caches evicted to make room rather than overshooting).
    let final_snaps = receiver.shard_budgets();
    let mut shards_with_keys = 0;
    for snap in &final_snaps {
        assert!(snap.used_bytes() <= BUDGET, "shard over budget: {snap:?}");
        assert!(snap.used_bytes() >= static_bytes, "static floor lost");
        assert_eq!(snap.exceeded_events, 0);
        if snap.rfkc_bytes > 0 {
            shards_with_keys += 1;
        }
    }
    assert!(
        shards_with_keys >= 2,
        "traffic must spread key state across shards: {final_snaps:?}"
    );
    assert!(
        receiver.rfkc_stats().evictions > 0,
        "512 flows against a 12 KiB budget must force eviction"
    );
    // Flow state stayed soft: every datagram still round-tripped.
    assert_eq!(
        receiver.stats().verified,
        (FLOWS as u64) * u64::from(ROUNDS)
    );
    assert_eq!(receiver.stats().input_errors, 0);
}
