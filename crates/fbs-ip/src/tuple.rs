//! The 5-tuple flow attribute of §7.1.
//!
//! A first approximation to a conversation is "the sequence of datagrams
//! sharing the same 5-tuple of ⟨protocol number, source ip address, source
//! port number, destination ip address, destination port number⟩".
//! Extracting the ports requires IP to peek at the transport header — a
//! layer violation the paper acknowledges and accepts, as packet-level
//! firewalls and BSD's own TCP/IP implementation already do the same.

use fbs_core::policy::FlowAttrs;

/// The conversation-identifying 5-tuple (Fig. 7's FSTEntry key fields).
///
/// ```
/// use fbs_ip::FiveTuple;
/// // UDP payload starting with source port 1234, destination port 53.
/// let payload = [0x04, 0xD2, 0x00, 0x35, 0, 8, 0, 0];
/// let t = FiveTuple::extract(17, [10, 0, 0, 1], [10, 0, 0, 9], &payload).unwrap();
/// assert_eq!((t.sport, t.dport), (1234, 53));
/// assert_eq!(t.reversed().sport, 53); // flows are unidirectional
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FiveTuple {
    /// Transport protocol number.
    pub proto: u8,
    /// Source IP address.
    pub saddr: [u8; 4],
    /// Source port.
    pub sport: u16,
    /// Destination IP address.
    pub daddr: [u8; 4],
    /// Destination port.
    pub dport: u16,
}

impl FiveTuple {
    /// Extract the 5-tuple from an IP header plus transport payload.
    ///
    /// Both UDP and MRT place source and destination ports in the first
    /// four payload bytes (as real TCP/UDP do), so one peek serves all
    /// covered protocols. Returns `None` when the payload is too short to
    /// carry ports.
    pub fn extract(
        proto: u8,
        saddr: [u8; 4],
        daddr: [u8; 4],
        transport_payload: &[u8],
    ) -> Option<FiveTuple> {
        if transport_payload.len() < 4 {
            return None;
        }
        Some(FiveTuple {
            proto,
            saddr,
            sport: u16::from_be_bytes([transport_payload[0], transport_payload[1]]),
            daddr,
            dport: u16::from_be_bytes([transport_payload[2], transport_payload[3]]),
        })
    }

    /// The reverse-direction tuple (flows are unidirectional; a duplex
    /// conversation is two flows).
    pub fn reversed(&self) -> FiveTuple {
        FiveTuple {
            proto: self.proto,
            saddr: self.daddr,
            sport: self.dport,
            daddr: self.saddr,
            dport: self.sport,
        }
    }

    /// The canonical 13-byte encoding, on the stack — the hash/shard
    /// paths run once per datagram and must not allocate.
    pub fn canonical_array(&self) -> [u8; 13] {
        let mut out = [0u8; 13];
        out[0] = self.proto;
        out[1..5].copy_from_slice(&self.saddr);
        out[5..7].copy_from_slice(&self.sport.to_be_bytes());
        out[7..11].copy_from_slice(&self.daddr);
        out[11..13].copy_from_slice(&self.dport.to_be_bytes());
        out
    }
}

impl FlowAttrs for FiveTuple {
    fn canonical_bytes(&self) -> Vec<u8> {
        self.canonical_array().to_vec()
    }
}

impl std::fmt::Display for FiveTuple {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{}.{}.{}.{}:{}->{}.{}.{}.{}:{}",
            self.proto,
            self.saddr[0],
            self.saddr[1],
            self.saddr[2],
            self.saddr[3],
            self.sport,
            self.daddr[0],
            self.daddr[1],
            self.daddr[2],
            self.daddr[3],
            self.dport,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn extraction_reads_ports() {
        // 0x04D2 = 1234, 0x0050 = 80.
        let payload = [0x04, 0xD2, 0x00, 0x50, 0xFF, 0xFF];
        let t = FiveTuple::extract(17, [10, 0, 0, 1], [10, 0, 0, 2], &payload).unwrap();
        assert_eq!(t.sport, 1234);
        assert_eq!(t.dport, 80);
        assert_eq!(t.proto, 17);
    }

    #[test]
    fn short_payload_yields_none() {
        assert!(FiveTuple::extract(17, [0; 4], [0; 4], &[1, 2]).is_none());
    }

    #[test]
    fn reversed_swaps_endpoints() {
        let t = FiveTuple {
            proto: 6,
            saddr: [1, 1, 1, 1],
            sport: 10,
            daddr: [2, 2, 2, 2],
            dport: 20,
        };
        let r = t.reversed();
        assert_eq!(r.saddr, [2, 2, 2, 2]);
        assert_eq!(r.sport, 20);
        assert_eq!(r.daddr, [1, 1, 1, 1]);
        assert_eq!(r.dport, 10);
        assert_eq!(r.reversed(), t);
    }

    #[test]
    fn canonical_bytes_is_13_bytes_and_injective_over_fields() {
        let t = FiveTuple {
            proto: 6,
            saddr: [1, 2, 3, 4],
            sport: 0x0102,
            daddr: [5, 6, 7, 8],
            dport: 0x0304,
        };
        let b = t.canonical_bytes();
        assert_eq!(b.len(), 13);
        assert_ne!(b, t.reversed().canonical_bytes());
    }

    #[test]
    fn display_is_readable() {
        let t = FiveTuple {
            proto: 17,
            saddr: [10, 0, 0, 1],
            sport: 53,
            daddr: [10, 0, 0, 9],
            dport: 5353,
        };
        assert_eq!(t.to_string(), "17:10.0.0.1:53->10.0.0.9:5353");
    }
}
