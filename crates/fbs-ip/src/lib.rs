//! # fbs-ip — the IP mapping of FBS (paper §7)
//!
//! Instantiates the abstract FBS protocol for an IP-like stack:
//!
//! * principals are hosts, identified by their 4-byte addresses;
//! * flows approximate "conversations" via the Fig. 7 policy: datagrams of
//!   one transport protocol between one host/port pair belong to a flow
//!   until the gap between datagrams exceeds THRESHOLD ([`mod@tuple`],
//!   [`policy`]);
//! * the security flow header is inserted between the IP header and the IP
//!   payload — "a short-cut form of IP encapsulation" — with the IP length
//!   fields fixed up ([`hooks`]);
//! * the send path optionally merges the flow state table with the
//!   transmission flow key cache so the mapper lookup and the key lookup
//!   are one operation, absorbing the sweeper into the mapping phase
//!   ([`combined`], §7.2);
//! * [`host`] assembles a ready-to-use secure host: simulated stack + FBS
//!   endpoint + certificate machinery.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod combined;
pub mod hooks;
pub mod host;
pub mod policy;
pub mod tuple;

pub use combined::CombinedTable;
pub use hooks::{FbsIpHooks, IpHookStats, IpMappingConfig};
pub use host::build_secure_host;
pub use policy::FiveTuplePolicy;
pub use tuple::FiveTuple;
