//! The combined FST + TFKC of §7.2.
//!
//! "For efficiency reasons, we have combined the flow association mechanism
//! and the flow key generation. FBSSend() hashes on the 5-tuple and uses
//! the result as an index into the TFKC. If the indexed entry is 'active'
//! (last use is less than THRESHOLD ago), it uses the stored flow key.
//! Otherwise, it begins a new flow by assigning a new sfl and calculating
//! the new flow key. In this way, the mapper module and the key cache
//! lookup are combined, saving an extra lookup. The job of the sweeper
//! also becomes implicit, absorbed into the mapping phase."

use crate::tuple::FiveTuple;
use fbs_core::{SealedFlowKey, SflAllocator};
use fbs_crypto::crc32;
use fbs_obs::{CacheKind, CacheOutcome, Event, MetricsRegistry, MetricsSnapshot};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// One merged FST/TFKC entry: flow identity + its cached key.
#[derive(Clone)]
struct Entry {
    tuple: FiveTuple,
    sfl: u64,
    key: Arc<SealedFlowKey>,
    last_secs: u64,
}

/// Result of a combined lookup.
pub struct CombinedHit {
    /// The flow's sfl.
    pub sfl: u64,
    /// The flow key to use, with its DES schedule pre-expanded; cloning is
    /// a refcount bump.
    pub key: Arc<SealedFlowKey>,
    /// True when this datagram started a new flow (key was derived).
    pub new_flow: bool,
}

/// Statistics for the combined table.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CombinedStats {
    /// Datagrams that reused an active entry (single lookup, no crypto).
    pub hits: u64,
    /// New flows started (expired entry, empty slot, or collision).
    pub new_flows: u64,
    /// New flows that displaced a still-active different tuple.
    pub collisions: u64,
}

impl CombinedStats {
    /// Fold these counters into a snapshot under the `cache.combined.*`
    /// names a live [`MetricsRegistry`] uses: new flows that displaced an
    /// active entry count as collision misses, the rest as cold misses.
    pub fn contribute(&self, snap: &mut MetricsSnapshot) {
        snap.add("cache.combined.hits", self.hits);
        snap.add(
            "cache.combined.cold_misses",
            self.new_flows.saturating_sub(self.collisions),
        );
        snap.add("cache.combined.collision_misses", self.collisions);
    }
}

/// Lock-free counters backing [`CombinedTable::stats`]. The per-shard
/// tables of a sharded endpoint share one handle (via
/// [`CombinedTable::share_stats`]) so a scrape reads one aggregate
/// without taking any shard lock.
#[derive(Debug, Default)]
pub struct AtomicCombinedStats {
    hits: AtomicU64,
    new_flows: AtomicU64,
    collisions: AtomicU64,
}

impl AtomicCombinedStats {
    /// A fresh zeroed handle.
    pub fn new() -> Self {
        Self::default()
    }

    /// Read the counters into a plain [`CombinedStats`] value.
    pub fn snapshot(&self) -> CombinedStats {
        CombinedStats {
            hits: self.hits.load(Ordering::Relaxed),
            new_flows: self.new_flows.load(Ordering::Relaxed),
            collisions: self.collisions.load(Ordering::Relaxed),
        }
    }
}

/// The merged flow-state/flow-key table.
pub struct CombinedTable {
    slots: Vec<Option<Entry>>,
    threshold_secs: u64,
    alloc: SflAllocator,
    stats: Arc<AtomicCombinedStats>,
    obs: Option<Arc<MetricsRegistry>>,
}

impl CombinedTable {
    /// Create a table with `size` direct-mapped slots and the given
    /// THRESHOLD.
    ///
    /// # Panics
    /// Panics if `size` is zero.
    pub fn new(size: usize, threshold_secs: u64, alloc: SflAllocator) -> Self {
        assert!(size > 0, "combined table needs at least one slot");
        CombinedTable {
            slots: (0..size).map(|_| None).collect(),
            threshold_secs,
            alloc,
            stats: Arc::new(AtomicCombinedStats::new()),
            obs: None,
        }
    }

    /// Attach a metrics registry: lookups emit [`Event::CacheLookup`]
    /// under [`CacheKind::Combined`].
    pub fn set_obs(&mut self, registry: Arc<MetricsRegistry>) {
        self.obs = Some(registry);
    }

    /// Point this table's counters at `shared`, folding in anything
    /// accumulated so far — how per-shard tables aggregate into one
    /// endpoint-wide handle for lock-free scrapes.
    pub fn share_stats(&mut self, shared: Arc<AtomicCombinedStats>) {
        let prior = self.stats.snapshot();
        shared.hits.fetch_add(prior.hits, Ordering::Relaxed);
        shared
            .new_flows
            .fetch_add(prior.new_flows, Ordering::Relaxed);
        shared
            .collisions
            .fetch_add(prior.collisions, Ordering::Relaxed);
        self.stats = shared;
    }

    fn slot_of(&self, tuple: &FiveTuple) -> usize {
        crc32(&tuple.canonical_array()) as usize % self.slots.len()
    }

    /// The single-lookup send path: returns the flow's sfl and key,
    /// deriving a fresh key via `derive` only when a new flow starts.
    ///
    /// Callers that split the miss path around key derivation (the
    /// worker-runtime hooks: reserve the sfl, derive with no endpoint
    /// lock held, then insert) use the split
    /// [`probe`](Self::probe)/[`reserve_sfl`](Self::reserve_sfl)/
    /// [`peek`](Self::peek)/[`insert`](Self::insert) API instead; this
    /// wrapper composes those pieces for single-threaded callers.
    pub fn lookup<E>(
        &mut self,
        tuple: FiveTuple,
        now_secs: u64,
        derive: impl FnOnce(u64) -> Result<Arc<SealedFlowKey>, E>,
    ) -> Result<CombinedHit, E> {
        if let Some(hit) = self.probe(&tuple, now_secs) {
            return Ok(hit);
        }
        let sfl = self.reserve_sfl();
        let key = derive(sfl)?;
        self.insert(tuple, sfl, Arc::clone(&key), now_secs);
        Ok(CombinedHit {
            sfl,
            key,
            new_flow: true,
        })
    }

    /// Hit-or-classified-miss lookup: on an active same-tuple entry,
    /// refresh it and return the hit; on a miss, record the miss (a
    /// displaced live entry counts as a collision) and return `None`.
    /// The caller then reserves an sfl, derives the key with its lock
    /// released, and [`insert`](Self::insert)s.
    pub fn probe(&mut self, tuple: &FiveTuple, now_secs: u64) -> Option<CombinedHit> {
        let i = self.slot_of(tuple);
        let mut displaced_live = false;
        if let Some(e) = &mut self.slots[i] {
            let active = now_secs.saturating_sub(e.last_secs) <= self.threshold_secs;
            if active && e.tuple == *tuple {
                e.last_secs = now_secs;
                self.stats.hits.fetch_add(1, Ordering::Relaxed);
                let hit = CombinedHit {
                    sfl: e.sfl,
                    key: Arc::clone(&e.key),
                    new_flow: false,
                };
                if let Some(reg) = &self.obs {
                    reg.record(Event::CacheLookup {
                        kind: CacheKind::Combined,
                        outcome: CacheOutcome::Hit,
                    });
                }
                return Some(hit);
            }
            if active {
                // A live different flow is displaced: premature termination
                // by hash collision (harmless for security, footnote 11).
                self.stats.collisions.fetch_add(1, Ordering::Relaxed);
                displaced_live = true;
            }
        }
        if let Some(reg) = &self.obs {
            reg.record(Event::CacheLookup {
                kind: CacheKind::Combined,
                outcome: if displaced_live {
                    CacheOutcome::MissCollision
                } else {
                    CacheOutcome::MissCold
                },
            });
        }
        None
    }

    /// Allocate the sfl for a flow about to start. Separated from
    /// [`insert`](Self::insert) so the sfl can be reserved before the
    /// caller drops its lock to derive the key; an sfl burned on a
    /// derivation error is never reused (exactly the `lookup` wrapper's
    /// historical behaviour).
    pub fn reserve_sfl(&mut self) -> u64 {
        self.alloc.next_sfl()
    }

    /// Quiet re-check after re-acquiring a lock: if `tuple` now has an
    /// active entry (a racing thread inserted while we derived), return
    /// its sfl and key WITHOUT touching stats, events, or recency —
    /// the racing winner already did the bookkeeping.
    pub fn peek(&self, tuple: &FiveTuple, now_secs: u64) -> Option<(u64, Arc<SealedFlowKey>)> {
        let i = self.slot_of(tuple);
        let e = self.slots[i].as_ref()?;
        let active = now_secs.saturating_sub(e.last_secs) <= self.threshold_secs;
        (active && e.tuple == *tuple).then(|| (e.sfl, Arc::clone(&e.key)))
    }

    /// Install a freshly-derived flow, counting the new flow.
    pub fn insert(&mut self, tuple: FiveTuple, sfl: u64, key: Arc<SealedFlowKey>, now_secs: u64) {
        let i = self.slot_of(&tuple);
        self.slots[i] = Some(Entry {
            tuple,
            sfl,
            key,
            last_secs: now_secs,
        });
        self.stats.new_flows.fetch_add(1, Ordering::Relaxed);
    }

    /// Invalidate every entry (e.g. after a rekey of the local principal).
    pub fn clear(&mut self) {
        for s in &mut self.slots {
            *s = None;
        }
    }

    /// Number of entries active at `now_secs` (Fig. 12's metric under the
    /// combined implementation).
    pub fn active_flows(&self, now_secs: u64) -> usize {
        self.slots
            .iter()
            .flatten()
            .filter(|e| now_secs.saturating_sub(e.last_secs) <= self.threshold_secs)
            .count()
    }

    /// Accumulated statistics (a lock-free snapshot of the atomic
    /// counters).
    pub fn stats(&self) -> CombinedStats {
        self.stats.snapshot()
    }

    /// A handle to the underlying atomic counters, readable without
    /// borrowing (or locking) the table itself.
    pub fn stats_handle(&self) -> Arc<AtomicCombinedStats> {
        Arc::clone(&self.stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fbs_core::FlowKey;

    fn tuple(sport: u16) -> FiveTuple {
        FiveTuple {
            proto: 17,
            saddr: [10, 0, 0, 1],
            sport,
            daddr: [10, 0, 0, 2],
            dport: 53,
        }
    }

    fn table() -> CombinedTable {
        CombinedTable::new(64, 600, SflAllocator::new(100))
    }

    fn fake_key(sfl: u64) -> Result<Arc<SealedFlowKey>, ()> {
        Ok(Arc::new(SealedFlowKey::seal(FlowKey(
            sfl.to_be_bytes().repeat(2),
        ))))
    }

    #[test]
    fn first_lookup_derives_second_reuses() {
        let mut t = table();
        let mut derived = 0;
        let h1 = t
            .lookup(tuple(9), 0, |sfl| {
                derived += 1;
                fake_key(sfl)
            })
            .unwrap();
        assert!(h1.new_flow);
        let h2 = t
            .lookup(tuple(9), 10, |sfl| {
                derived += 1;
                fake_key(sfl)
            })
            .unwrap();
        assert!(!h2.new_flow);
        assert_eq!(h1.sfl, h2.sfl);
        assert_eq!(h1.key.as_bytes(), h2.key.as_bytes());
        assert_eq!(derived, 1, "key derivation happens once per flow");
        assert_eq!(t.stats().hits, 1);
    }

    #[test]
    fn expiry_is_implicit_in_the_mapping_phase() {
        // No sweeper call exists; expiry shows up as a new flow on the next
        // lookup after the gap.
        let mut t = table();
        let h1 = t.lookup(tuple(9), 0, fake_key).unwrap();
        let h2 = t.lookup(tuple(9), 601, fake_key).unwrap();
        assert!(h2.new_flow);
        assert_ne!(h1.sfl, h2.sfl);
        assert_ne!(h1.key.as_bytes(), h2.key.as_bytes());
    }

    #[test]
    fn derive_error_propagates_and_does_not_install() {
        let mut t = CombinedTable::new(4, 600, SflAllocator::new(0));
        let r: Result<_, &str> = t.lookup(tuple(9), 0, |_| Err("mkd down"));
        assert_eq!(r.err(), Some("mkd down"));
        // Next attempt still treats it as a new flow.
        let h = t.lookup(tuple(9), 0, fake_key).unwrap();
        assert!(h.new_flow);
    }

    #[test]
    fn active_flow_count_tracks_threshold() {
        let mut t = table();
        t.lookup(tuple(1), 0, fake_key).unwrap();
        t.lookup(tuple(2), 100, fake_key).unwrap();
        assert_eq!(t.active_flows(100), 2);
        assert_eq!(t.active_flows(650), 1);
        assert_eq!(t.active_flows(5000), 0);
    }

    #[test]
    fn clear_forces_rederivation() {
        let mut t = table();
        let h1 = t.lookup(tuple(1), 0, fake_key).unwrap();
        t.clear();
        let h2 = t.lookup(tuple(1), 1, fake_key).unwrap();
        assert!(h2.new_flow);
        assert_ne!(h1.sfl, h2.sfl);
    }
}
