//! The `ip_fbs.c` analogue: FBS processing hooked into the stack.
//!
//! Output (§7.2): between IP output processing and fragmentation, the
//! datagram is classified into a flow, protected, and the security flow
//! header is inserted between the IP header and the transport payload;
//! the IP length fields are fixed up. "To IP, the FBS header is simply a
//! part of the higher layer header" — forwarding routers see nothing
//! strange.
//!
//! Input: between reassembly and dispatch, the FBS header is removed and
//! verified; failures drop the datagram before it reaches the transport.
//!
//! # Graceful degradation
//!
//! Keying can fail *transiently* — a certificate-directory outage, an
//! MKD upcall failure, an open circuit breaker. The flow policy's
//! [`KeyUnavailableVerdict`] decides what happens to the datagram:
//!
//! * **fail-closed** (default, the paper's behaviour): drop it;
//! * **fail-open**: pass it unprotected — only honoured when the
//!   configuration does not request confidentiality, and never for a
//!   framed-but-unverifiable input datagram;
//! * **park**: hold it in a bounded [`ParkingQueue`] and retry when
//!   [`Host::poll`](fbs_net::Host::poll) drives
//!   [`SecurityHooks::release_output`]/[`release_input`](SecurityHooks::release_input).
//!   Entries carry an absolute deadline from their first park, so a
//!   sustained outage degrades into ordinary datagram loss instead of
//!   unbounded memory growth.
//!
//! Cryptographic verdicts (bad MAC, stale timestamp, malformed input)
//! never degrade: they are final rejections regardless of policy.

use crate::combined::CombinedTable;
use crate::policy::FiveTuplePolicy;
use crate::tuple::FiveTuple;
use fbs_core::breaker::BreakerState;
use fbs_core::header::FIXED_PREFIX_LEN;
use fbs_core::{
    BufferPool, Fam, FbsConfig, FbsEndpoint, FbsError, KeyUnavailableVerdict, ParkStats, Parked,
    ParkingQueue, Principal, SflAllocator,
};
use fbs_net::ip::Proto;
use fbs_net::{Datagram, HookOutcome, Ipv4Header, SecurityHooks};
use fbs_obs::{Direction, Event, MetricsRegistry, MetricsSnapshot};
use parking_lot::Mutex;
use std::sync::Arc;

/// Configuration of the IP mapping.
#[derive(Clone, Debug)]
pub struct IpMappingConfig {
    /// Flow idle expiry (Fig. 7's THRESHOLD).
    pub threshold_secs: u64,
    /// Flow state table size (Fig. 7's FSTSIZE).
    pub fst_size: usize,
    /// Request data confidentiality (DES) for covered datagrams; false =
    /// authentication only (keyed MD5), the paper's non-secret mode.
    pub encrypt: bool,
    /// Use the combined FST/TFKC send path of §7.2 (the implementation's
    /// choice); false = the textbook separate FAM + TFKC path of Fig. 4/6.
    pub combined: bool,
    /// Also protect raw-IP protocols (everything except the bypass
    /// protocol) as **host-level flows** — the treatment §7.1 footnote 10
    /// sketches for ICMP/IGMP: "raw IP can be considered as host-level
    /// flows". The paper's implementation left this out; it is provided as
    /// the documented extension. Default off for fidelity.
    pub cover_raw_ip: bool,
    /// Degradation verdict when keying material is transiently
    /// unavailable (wired into the flow policy). Default fail-closed,
    /// which reproduces the seed behaviour exactly.
    pub key_unavailable: KeyUnavailableVerdict,
    /// Parking-queue capacity per direction (park verdict only).
    pub park_capacity: usize,
    /// Per-datagram parking deadline in microseconds, measured from the
    /// first park.
    pub park_deadline_us: u64,
    /// The underlying FBS endpoint configuration.
    pub fbs: FbsConfig,
}

impl Default for IpMappingConfig {
    fn default() -> Self {
        IpMappingConfig {
            threshold_secs: crate::policy::DEFAULT_THRESHOLD_SECS,
            fst_size: crate::policy::DEFAULT_FST_SIZE,
            encrypt: true,
            combined: true,
            cover_raw_ip: false,
            key_unavailable: KeyUnavailableVerdict::FailClosed,
            park_capacity: 64,
            park_deadline_us: 2_000_000,
            fbs: FbsConfig::default(),
        }
    }
}

/// Counters for the hook layer.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct IpHookStats {
    /// Datagrams protected on output.
    pub protected: u64,
    /// Datagrams verified and stripped on input.
    pub verified: u64,
    /// Output datagrams rejected (keying failure, tuple extraction...).
    pub output_errors: u64,
    /// Input datagrams rejected (MAC, freshness, framing...).
    pub input_errors: u64,
    /// Datagrams passed unprotected/unverified under a fail-open verdict.
    pub fail_open: u64,
    /// Key-unavailable datagrams dropped under the fail-closed verdict.
    pub fail_closed: u64,
}

impl IpHookStats {
    /// Total output-hook invocations that reached a final verdict.
    pub fn output_entries(&self) -> u64 {
        self.protected + self.output_errors
    }

    /// Total input-hook invocations that reached a final verdict.
    pub fn input_entries(&self) -> u64 {
        self.verified + self.input_errors
    }

    /// Fold these counters into a snapshot under the `hooks.*` /
    /// `degrade.*` names a live [`MetricsRegistry`] uses.
    pub fn contribute(&self, snap: &mut MetricsSnapshot) {
        snap.add("hooks.output_entries", self.output_entries());
        snap.add("hooks.output_ok", self.protected);
        snap.add("hooks.output_errors", self.output_errors);
        snap.add("hooks.input_entries", self.input_entries());
        snap.add("hooks.input_ok", self.verified);
        snap.add("hooks.input_errors", self.input_errors);
        snap.add("degrade.fail_open", self.fail_open);
        snap.add("degrade.fail_closed", self.fail_closed);
    }
}

struct Inner {
    endpoint: FbsEndpoint,
    /// Textbook path: FAM with the Fig. 7 policy (endpoint TFKC handles
    /// keys).
    fam: Fam<FiveTuple, FiveTuplePolicy>,
    /// §7.2 path: merged FST/TFKC, used when `cfg.combined`.
    combined: Option<CombinedTable>,
    cfg: IpMappingConfig,
    stats: IpHookStats,
    /// Output datagrams awaiting key derivation: (header, plaintext).
    out_park: ParkingQueue<(Ipv4Header, Vec<u8>)>,
    /// Input datagrams awaiting key derivation: (header, wire payload).
    in_park: ParkingQueue<(Ipv4Header, Vec<u8>)>,
    obs: Option<Arc<MetricsRegistry>>,
}

impl Inner {
    fn hook_entry(&self, dir: Direction) {
        if let Some(reg) = &self.obs {
            reg.record(Event::HookEntry { dir });
        }
    }

    fn hook_exit(&self, dir: Direction, ok: bool) {
        if let Some(reg) = &self.obs {
            reg.record(Event::HookExit { dir, ok });
        }
    }

    fn record(&self, event: Event) {
        if let Some(reg) = &self.obs {
            reg.record(event);
        }
    }

    /// The policy's key-unavailable verdict, downgraded to fail-closed
    /// when fail-open would leak traffic configured for confidentiality.
    fn degrade_verdict(&self) -> KeyUnavailableVerdict {
        let v = self.fam.policy().key_unavailable;
        if self.cfg.encrypt && v == KeyUnavailableVerdict::FailOpen {
            KeyUnavailableVerdict::FailClosed
        } else {
            v
        }
    }
}

/// FBS security hooks for an IP-like stack. Cheaply cloneable: clones share
/// state, so keep a handle for statistics after installing one into a
/// [`fbs_net::Host`].
#[derive(Clone)]
pub struct FbsIpHooks {
    inner: Arc<Mutex<Inner>>,
}

impl FbsIpHooks {
    /// Wrap an FBS endpoint in IP-mapping hooks. `sfl_seed` randomises the
    /// sfl counter's initial value (§5.3).
    pub fn new(endpoint: FbsEndpoint, cfg: IpMappingConfig, sfl_seed: u64) -> Self {
        let fam = Fam::new(
            cfg.fst_size,
            FiveTuplePolicy::new(cfg.threshold_secs).with_key_unavailable(cfg.key_unavailable),
            SflAllocator::new(sfl_seed),
        );
        let combined = cfg.combined.then(|| {
            CombinedTable::new(
                cfg.fst_size,
                cfg.threshold_secs,
                // Distinct allocator space from the FAM's (only one of the
                // two is ever used for a given configuration).
                SflAllocator::new(sfl_seed),
            )
        });
        let out_park = ParkingQueue::new(cfg.park_capacity, cfg.park_deadline_us);
        let in_park = ParkingQueue::new(cfg.park_capacity, cfg.park_deadline_us);
        FbsIpHooks {
            inner: Arc::new(Mutex::new(Inner {
                endpoint,
                fam,
                combined,
                cfg,
                stats: IpHookStats::default(),
                out_park,
                in_park,
                obs: None,
            })),
        }
    }

    /// Attach a metrics registry: the hooks emit entry/exit events, and
    /// the registry cascades into the wrapped endpoint (and its caches),
    /// the FAM, and the combined table when present.
    pub fn attach_obs(&self, registry: Arc<MetricsRegistry>) {
        let mut inner = self.inner.lock();
        inner.endpoint.attach_obs(Arc::clone(&registry));
        inner.fam.set_obs(Arc::clone(&registry));
        if let Some(table) = &mut inner.combined {
            table.set_obs(Arc::clone(&registry));
        }
        inner.obs = Some(registry);
    }

    /// Hook-level statistics.
    pub fn stats(&self) -> IpHookStats {
        self.inner.lock().stats
    }

    /// Endpoint statistics (sends, drops...).
    pub fn endpoint_stats(&self) -> fbs_core::protocol::EndpointStats {
        self.inner.lock().endpoint.stats()
    }

    /// TFKC statistics (separate path) — all zeros under `combined`.
    pub fn tfkc_stats(&self) -> fbs_core::CacheStats {
        self.inner.lock().endpoint.tfkc_stats()
    }

    /// RFKC statistics.
    pub fn rfkc_stats(&self) -> fbs_core::CacheStats {
        self.inner.lock().endpoint.rfkc_stats()
    }

    /// MKD statistics (upcalls = master key computations).
    pub fn mkd_stats(&self) -> fbs_core::mkd::MkdStats {
        self.inner.lock().endpoint.mkd_stats()
    }

    /// Combined-table statistics, when the §7.2 path is active.
    pub fn combined_stats(&self) -> Option<crate::combined::CombinedStats> {
        self.inner.lock().combined.as_ref().map(|c| c.stats())
    }

    /// Number of currently-active outgoing flows.
    pub fn active_flows(&self, now_secs: u64) -> usize {
        let inner = self.inner.lock();
        match &inner.combined {
            Some(c) => c.active_flows(now_secs),
            None => inner.fam.active_flows(now_secs),
        }
    }

    /// Drop all flow-key soft state (TFKC, RFKC, and the combined
    /// FST/TFKC when present) — a mid-flow cache flush. Always safe:
    /// soft state is recomputed on demand (§5.3); the next datagram per
    /// flow pays a re-derivation.
    pub fn flush_flow_keys(&self) {
        let mut inner = self.inner.lock();
        inner.endpoint.flush_flow_keys();
        if let Some(table) = &mut inner.combined {
            table.clear();
        }
    }

    /// Invalidate the cached master key for one peer (forces the next
    /// datagram to/from them through the MKD upcall).
    pub fn forget_peer(&self, peer: &Principal) {
        self.inner.lock().endpoint.forget_peer(peer);
    }

    /// Current (output, input) parking-queue depths.
    pub fn parked_depths(&self) -> (usize, usize) {
        let inner = self.inner.lock();
        (inner.out_park.len(), inner.in_park.len())
    }

    /// Accumulated (output, input) parking counters.
    pub fn park_stats(&self) -> (ParkStats, ParkStats) {
        let inner = self.inner.lock();
        (inner.out_park.stats(), inner.in_park.stats())
    }

    /// The MKD circuit breaker's state for `peer`, if resilience is
    /// configured and the peer has been keyed at least once.
    pub fn breaker_state(&self, peer: &Principal) -> Option<BreakerState> {
        self.inner.lock().endpoint.mkd().breaker_state(peer)
    }

    /// Worst-case payload growth for the configured algorithms: the fixed
    /// header prefix, the (possibly truncated) MAC, and up to 7 bytes of
    /// DES block padding.
    fn overhead_of(cfg: &IpMappingConfig) -> usize {
        let mac_len = cfg.fbs.mac_truncate.unwrap_or(cfg.fbs.mac_alg.output_len());
        let padding = if cfg.encrypt { 7 } else { 0 };
        FIXED_PREFIX_LEN + mac_len + padding
    }
}

impl SecurityHooks for FbsIpHooks {
    fn covers(&self, proto: u8) -> bool {
        // The implementation covers TCP(our MRT) and UDP; the bypass
        // protocol always escapes FBS (Fig. 5). Raw IP is covered as
        // host-level flows only when the footnote-10 extension is on.
        match Proto::from_number(proto) {
            Proto::Mrt | Proto::Udp => true,
            Proto::Bypass => false,
            Proto::Other(_) => self.inner.lock().cfg.cover_raw_ip,
        }
    }

    fn max_overhead(&self) -> usize {
        Self::overhead_of(&self.inner.lock().cfg)
    }

    /// The single processing entry point (the scalar `output`/`input`
    /// trait defaults wrap it): the shared state is locked ONCE for the
    /// whole batch rather than once per datagram, so concurrent processing
    /// in the other direction (or a stats reader) contends per batch, not
    /// per packet. Protected/verified payloads are drawn from `pool` and
    /// consumed input buffers recycled into it.
    fn process_batch(
        &mut self,
        dir: Direction,
        batch: Vec<Datagram>,
        pool: &mut BufferPool,
        now_us: u64,
    ) -> Vec<(Ipv4Header, HookOutcome)> {
        let mut inner = self.inner.lock();
        batch
            .into_iter()
            .map(|dg| {
                let Datagram {
                    mut header,
                    payload,
                } = dg;
                let res = match dir {
                    Direction::Output => {
                        output_locked(&mut inner, &mut header, payload, pool, now_us)
                    }
                    Direction::Input => {
                        input_locked(&mut inner, &mut header, payload, pool, now_us)
                    }
                };
                (header, res)
            })
            .collect()
    }

    fn release_output(&mut self, now_us: u64) -> Vec<(Ipv4Header, Vec<u8>)> {
        let mut inner = self.inner.lock();
        release_output_locked(&mut inner, now_us)
    }

    fn release_input(&mut self, now_us: u64) -> Vec<(Ipv4Header, Vec<u8>)> {
        let mut inner = self.inner.lock();
        release_input_locked(&mut inner, now_us)
    }
}

/// The §7.2 protect path, with no verdict handling: classify the datagram
/// into a flow, derive/look up its key, and seal the borrowed plaintext
/// into a pool-drawn wire payload (fixing up `header`'s length on
/// success). The caller keeps ownership of the original bytes, so no
/// snapshot copy is ever needed for park/fail-open fallbacks.
fn protect_locked(
    inner: &mut Inner,
    header: &mut Ipv4Header,
    payload: &[u8],
    pool: &mut BufferPool,
    now_us: u64,
) -> Result<Vec<u8>, FbsError> {
    let now_secs = now_us / 1_000_000;
    let is_transport = matches!(Proto::from_number(header.proto), Proto::Mrt | Proto::Udp);
    let tuple = if is_transport {
        FiveTuple::extract(header.proto, header.src, header.dst, payload)
            .ok_or(FbsError::MalformedHeader("payload too short for 5-tuple"))?
    } else {
        // Footnote-10 extension: raw IP forms host-level flows — the
        // "5-tuple" degenerates to (proto, saddr, daddr).
        FiveTuple {
            proto: header.proto,
            saddr: header.src,
            sport: 0,
            daddr: header.dst,
            dport: 0,
        }
    };
    let destination = Principal::from_ipv4(header.dst);
    let secret = inner.cfg.encrypt;
    let mut out = pool.take();
    let sealed = match &mut inner.combined {
        // §7.2: one lookup resolves flow identity AND key.
        Some(table) => {
            let endpoint = &mut inner.endpoint;
            table
                .lookup(tuple, now_secs, |sfl| {
                    endpoint.derive_flow_key_tx(sfl, &destination)
                })
                .and_then(|hit| {
                    endpoint.seal_with_key_into(hit.sfl, &hit.key, payload, secret, &mut out)
                })
        }
        // Textbook: FAM classification, then TFKC inside seal_into().
        None => {
            let class = inner.fam.classify(tuple, now_secs, payload.len() as u64);
            inner
                .endpoint
                .seal_into(class.sfl, &destination, payload, secret, &mut out)
        }
    };
    if let Err(e) = sealed {
        pool.put(out);
        return Err(e);
    }
    let delta = out.len() as isize - payload.len() as isize;
    header.grow_payload(delta);
    Ok(out)
}

/// Output verdict wrapper: protect, and on a *key-unavailable* failure
/// apply the policy's degradation verdict. Runs with the state locked.
fn output_locked(
    inner: &mut Inner,
    header: &mut Ipv4Header,
    payload: Vec<u8>,
    pool: &mut BufferPool,
    now_us: u64,
) -> HookOutcome {
    inner.hook_entry(Direction::Output);
    let verdict = inner.degrade_verdict();
    // protect_locked borrows the payload, so the original bytes are still
    // owned here for the fall-back verdicts — no snapshot copy needed.
    match protect_locked(inner, header, &payload, pool, now_us) {
        Ok(out) => {
            pool.put(payload);
            inner.stats.protected += 1;
            inner.hook_exit(Direction::Output, true);
            HookOutcome::Pass(out)
        }
        Err(e) if e.is_key_unavailable() && verdict != KeyUnavailableVerdict::FailClosed => {
            match verdict {
                KeyUnavailableVerdict::FailOpen => {
                    inner.stats.fail_open += 1;
                    inner.record(Event::Degraded {
                        dir: Direction::Output,
                        open: true,
                    });
                    inner.hook_exit(Direction::Output, true);
                    inner.stats.protected += 1; // it did exit the hook ok
                    HookOutcome::Pass(payload)
                }
                KeyUnavailableVerdict::Park => {
                    match inner.out_park.park((header.clone(), payload), now_us) {
                        Ok(()) => {
                            let queued = inner.out_park.len() as u32;
                            inner.record(Event::Parked { queued });
                            HookOutcome::Park
                        }
                        Err(_) => {
                            inner.record(Event::ParkOverflow);
                            inner.stats.output_errors += 1;
                            inner.hook_exit(Direction::Output, false);
                            HookOutcome::Reject(format!("park queue full: {e}"))
                        }
                    }
                }
                KeyUnavailableVerdict::FailClosed => unreachable!("excluded by guard"),
            }
        }
        Err(e) => {
            pool.put(payload);
            if e.is_key_unavailable() {
                inner.stats.fail_closed += 1;
                inner.record(Event::Degraded {
                    dir: Direction::Output,
                    open: false,
                });
            }
            inner.stats.output_errors += 1;
            inner.hook_exit(Direction::Output, false);
            HookOutcome::Reject(e.to_string())
        }
    }
}

/// The verify path, with no verdict handling: parse the FBS framing,
/// verify/decrypt the borrowed wire payload into a pool-drawn plaintext
/// buffer, and return it (fixing up `header`'s length on success). The
/// caller keeps ownership of the wire bytes for park/fail-open fallbacks.
fn verify_locked(
    inner: &mut Inner,
    header: &mut Ipv4Header,
    payload: &[u8],
    pool: &mut BufferPool,
) -> Result<Vec<u8>, FbsError> {
    let mut body = pool.take();
    let source = Principal::from_ipv4(header.src);
    if let Err(e) = inner.endpoint.open_into(&source, payload, &mut body) {
        pool.put(body);
        return Err(e);
    }
    let delta = payload.len() as isize - body.len() as isize;
    header.grow_payload(-delta);
    Ok(body)
}

/// Input verdict wrapper. Degradation applies narrowly here:
///
/// * an **unframed** datagram (no FBS header parses) is admitted as-is
///   under fail-open — the counterpart of a fail-open sender;
/// * a **framed** datagram that fails with key-unavailable may be
///   parked; fail-open never admits it (it cannot be verified, and under
///   encryption it is unreadable anyway);
/// * cryptographic failures (MAC, freshness) always reject.
fn input_locked(
    inner: &mut Inner,
    header: &mut Ipv4Header,
    payload: Vec<u8>,
    pool: &mut BufferPool,
    now_us: u64,
) -> HookOutcome {
    inner.hook_entry(Direction::Input);
    let verdict = inner.degrade_verdict();
    match verify_locked(inner, header, &payload, pool) {
        Ok(body) => {
            pool.put(payload);
            inner.stats.verified += 1;
            inner.hook_exit(Direction::Input, true);
            HookOutcome::Pass(body)
        }
        Err(FbsError::MalformedHeader(_) | FbsError::UnknownAlgorithm(_))
            if verdict == KeyUnavailableVerdict::FailOpen =>
        {
            inner.stats.fail_open += 1;
            inner.stats.verified += 1;
            inner.record(Event::Degraded {
                dir: Direction::Input,
                open: true,
            });
            inner.hook_exit(Direction::Input, true);
            HookOutcome::Pass(payload)
        }
        Err(e) if e.is_key_unavailable() && verdict == KeyUnavailableVerdict::Park => {
            match inner.in_park.park((header.clone(), payload), now_us) {
                Ok(()) => {
                    let queued = inner.in_park.len() as u32;
                    inner.record(Event::Parked { queued });
                    HookOutcome::Park
                }
                Err(_) => {
                    inner.record(Event::ParkOverflow);
                    inner.stats.input_errors += 1;
                    inner.hook_exit(Direction::Input, false);
                    HookOutcome::Reject(format!("park queue full: {e}"))
                }
            }
        }
        Err(e) => {
            pool.put(payload);
            if e.is_key_unavailable() {
                inner.stats.fail_closed += 1;
                inner.record(Event::Degraded {
                    dir: Direction::Input,
                    open: false,
                });
            }
            inner.stats.input_errors += 1;
            inner.hook_exit(Direction::Input, false);
            HookOutcome::Reject(e.to_string())
        }
    }
}

/// Release loop for parked output datagrams: expire the overdue, then
/// retry protection for the rest — skipping (and re-parking) everything
/// headed for a peer whose circuit breaker would fast-fail, so a wall of
/// parked traffic cannot hammer a known-broken keying path.
fn release_output_locked(inner: &mut Inner, now_us: u64) -> Vec<(Ipv4Header, Vec<u8>)> {
    let expired = inner.out_park.expire(now_us);
    for _ in 0..expired {
        inner.record(Event::ParkExpired);
    }
    if inner.out_park.is_empty() {
        return Vec::new();
    }
    // Release is the rare outage-recovery path: a transient non-pooling
    // pool keeps protect_locked's signature without holding buffers here.
    let mut pool = BufferPool::with_limits(0, 0);
    let mut ready = Vec::new();
    for entry in inner.out_park.take_all() {
        let Parked {
            item: (mut header, payload),
            parked_at_us,
            deadline_us,
        } = entry;
        let peer = Principal::from_ipv4(header.dst);
        if inner.endpoint.mkd().would_fast_fail(&peer) {
            let _ = inner.out_park.repark(Parked {
                item: (header, payload),
                parked_at_us,
                deadline_us,
            });
            continue;
        }
        match protect_locked(inner, &mut header, &payload, &mut pool, now_us) {
            Ok(protected) => {
                let waited_us = inner.out_park.note_released(parked_at_us, now_us);
                inner.stats.protected += 1;
                inner.record(Event::ParkReleased { waited_us });
                inner.hook_exit(Direction::Output, true);
                ready.push((header, protected));
            }
            Err(e) if e.is_key_unavailable() => {
                // Still no key: back to the queue with the original
                // deadline (drops at expiry, never grows unbounded).
                // protect_locked only borrowed the payload, so it is
                // still owned here — no backup copy was taken.
                let _ = inner.out_park.repark(Parked {
                    item: (header, payload),
                    parked_at_us,
                    deadline_us,
                });
            }
            Err(e) => {
                inner.stats.output_errors += 1;
                inner.hook_exit(Direction::Output, false);
                let _ = e;
            }
        }
    }
    ready
}

/// Release loop for parked input datagrams, mirroring
/// [`release_output_locked`] with the peer taken from the source address.
fn release_input_locked(inner: &mut Inner, now_us: u64) -> Vec<(Ipv4Header, Vec<u8>)> {
    let expired = inner.in_park.expire(now_us);
    for _ in 0..expired {
        inner.record(Event::ParkExpired);
    }
    if inner.in_park.is_empty() {
        return Vec::new();
    }
    let mut pool = BufferPool::with_limits(0, 0);
    let mut ready = Vec::new();
    for entry in inner.in_park.take_all() {
        let Parked {
            item: (mut header, payload),
            parked_at_us,
            deadline_us,
        } = entry;
        let peer = Principal::from_ipv4(header.src);
        if inner.endpoint.mkd().would_fast_fail(&peer) {
            let _ = inner.in_park.repark(Parked {
                item: (header, payload),
                parked_at_us,
                deadline_us,
            });
            continue;
        }
        match verify_locked(inner, &mut header, &payload, &mut pool) {
            Ok(body) => {
                let waited_us = inner.in_park.note_released(parked_at_us, now_us);
                inner.stats.verified += 1;
                inner.record(Event::ParkReleased { waited_us });
                inner.hook_exit(Direction::Input, true);
                ready.push((header, body));
            }
            Err(e) if e.is_key_unavailable() => {
                let _ = inner.in_park.repark(Parked {
                    item: (header, payload),
                    parked_at_us,
                    deadline_us,
                });
            }
            Err(e) => {
                inner.stats.input_errors += 1;
                inner.hook_exit(Direction::Input, false);
                let _ = e;
            }
        }
    }
    ready
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::host::build_secure_host;
    use fbs_cert::{CertificateAuthority, Directory};
    use fbs_core::ManualClock;
    use fbs_crypto::dh::DhGroup;
    use fbs_net::ip::Ipv4Addr;
    use std::time::Duration;

    const A: Ipv4Addr = [10, 9, 0, 1];
    const B: Ipv4Addr = [10, 9, 0, 2];

    struct World {
        clock: ManualClock,
        ca: CertificateAuthority,
        directory: Arc<Directory>,
        group: DhGroup,
    }

    impl World {
        fn new() -> Self {
            World {
                clock: ManualClock::starting_at(0),
                ca: CertificateAuthority::new("degrade-test-ca", [0xD6; 16]),
                directory: Arc::new(Directory::new(Duration::ZERO)),
                group: DhGroup::test_group(),
            }
        }

        /// Build hooks for `addr` (publishing its certificate).
        fn host(&self, addr: Ipv4Addr) -> FbsIpHooks {
            let (_host, hooks) = build_secure_host(
                addr,
                1500,
                self.cfg(),
                self.clock.clone(),
                &self.group,
                &self.ca,
                &self.directory,
                42,
            );
            hooks
        }

        fn cfg(&self) -> IpMappingConfig {
            IpMappingConfig::default()
        }
    }

    fn udp_datagram(src: Ipv4Addr, dst: Ipv4Addr) -> (Ipv4Header, Vec<u8>) {
        // 4-byte port prefix so the 5-tuple extracts, then a body.
        let mut payload = vec![0x0F, 0xA0, 0x00, 0x35];
        payload.extend_from_slice(b"degradation test body");
        let header = Ipv4Header::new(src, dst, Proto::Udp, payload.len());
        (header, payload)
    }

    fn hooks_with(world: &World, cfg: IpMappingConfig) -> FbsIpHooks {
        let (_host, hooks) = build_secure_host(
            A,
            1500,
            cfg,
            world.clock.clone(),
            &world.group,
            &world.ca,
            &world.directory,
            42,
        );
        hooks
    }

    #[test]
    fn key_unavailable_fails_closed_by_default() {
        let world = World::new();
        let mut hooks = world.host(A); // B's certificate never published
        let (mut header, payload) = udp_datagram(A, B);
        let out = hooks.output(&mut header, payload, 1_000);
        assert!(matches!(out, HookOutcome::Reject(_)), "{out:?}");
        let s = hooks.stats();
        assert_eq!(s.fail_closed, 1);
        assert_eq!(s.output_errors, 1);
        assert_eq!(s.fail_open, 0);
    }

    #[test]
    fn fail_open_passes_plaintext_when_not_confidential() {
        let world = World::new();
        let cfg = IpMappingConfig {
            encrypt: false,
            key_unavailable: KeyUnavailableVerdict::FailOpen,
            ..IpMappingConfig::default()
        };
        let mut hooks = hooks_with(&world, cfg);
        let (mut header, payload) = udp_datagram(A, B);
        let before = header.total_len;
        let out = hooks.output(&mut header, payload.clone(), 1_000);
        match out {
            HookOutcome::Pass(bytes) => assert_eq!(bytes, payload, "original plaintext"),
            other => panic!("expected fail-open pass, got {other:?}"),
        }
        assert_eq!(header.total_len, before, "no FBS overhead added");
        assert_eq!(hooks.stats().fail_open, 1);
    }

    #[test]
    fn fail_open_downgrades_to_fail_closed_under_encryption() {
        let world = World::new();
        let cfg = IpMappingConfig {
            encrypt: true,
            key_unavailable: KeyUnavailableVerdict::FailOpen,
            ..IpMappingConfig::default()
        };
        let mut hooks = hooks_with(&world, cfg);
        let (mut header, payload) = udp_datagram(A, B);
        let out = hooks.output(&mut header, payload, 1_000);
        assert!(matches!(out, HookOutcome::Reject(_)), "{out:?}");
        assert_eq!(hooks.stats().fail_closed, 1);
        assert_eq!(hooks.stats().fail_open, 0);
    }

    #[test]
    fn fail_open_input_admits_only_unframed_datagrams() {
        let world = World::new();
        let cfg = IpMappingConfig {
            encrypt: false,
            key_unavailable: KeyUnavailableVerdict::FailOpen,
            ..IpMappingConfig::default()
        };
        let mut hooks = hooks_with(&world, cfg);
        // A bare datagram with no FBS framing: decode fails, fail-open
        // admits it untouched.
        let (mut header, payload) = udp_datagram(B, A);
        let out = hooks.input(&mut header, payload.clone(), 1_000);
        match out {
            HookOutcome::Pass(bytes) => assert_eq!(bytes, payload),
            other => panic!("expected fail-open admit, got {other:?}"),
        }
        assert_eq!(hooks.stats().fail_open, 1);
    }

    #[test]
    fn crypto_failures_never_degrade() {
        // Even under fail-open, a framed datagram with a bad MAC is
        // rejected: crypto verdicts are final.
        let world = World::new();
        let cfg = IpMappingConfig {
            encrypt: false,
            key_unavailable: KeyUnavailableVerdict::FailOpen,
            ..IpMappingConfig::default()
        };
        let mut sender = hooks_with(&world, cfg.clone());
        let mut receiver = world.host(B);
        let (mut header, payload) = udp_datagram(A, B);
        let out = sender.output(&mut header, payload, 1_000);
        let mut wire = match out {
            HookOutcome::Pass(bytes) => bytes,
            other => panic!("sender should protect, got {other:?}"),
        };
        // Flip a bit in the MAC region (the tail).
        let last = wire.len() - 1;
        wire[last] ^= 0x40;
        let mut rx_header = header.clone();
        rx_header.src = A;
        rx_header.dst = B;
        let got = receiver.input(&mut rx_header, wire, 1_000);
        assert!(matches!(got, HookOutcome::Reject(_)), "{got:?}");
        assert_eq!(receiver.stats().input_errors, 1);
        assert_eq!(
            receiver.stats().fail_open,
            0,
            "MAC failure must not degrade"
        );
    }

    #[test]
    fn park_holds_then_releases_when_key_arrives() {
        let world = World::new();
        let cfg = IpMappingConfig {
            key_unavailable: KeyUnavailableVerdict::Park,
            park_deadline_us: 10_000_000,
            ..IpMappingConfig::default()
        };
        let mut hooks = hooks_with(&world, cfg);
        let (mut header, payload) = udp_datagram(A, B);
        let out = hooks.output(&mut header, payload, 1_000);
        assert!(matches!(out, HookOutcome::Park), "{out:?}");
        assert_eq!(hooks.parked_depths(), (1, 0));

        // Still keyless: the release pass re-parks, does not drop.
        assert!(hooks.release_output(2_000).is_empty());
        assert_eq!(hooks.parked_depths(), (1, 0));

        // B comes online (certificate published); the parked datagram
        // is protected and released on the next poll.
        let _hb = world.host(B);
        let released = hooks.release_output(3_000);
        assert_eq!(released.len(), 1);
        let (rel_header, rel_payload) = &released[0];
        assert!(rel_payload.len() > 25, "released payload is protected");
        assert_eq!(rel_header.dst, B);
        assert_eq!(hooks.parked_depths(), (0, 0));
        let (out_stats, _) = hooks.park_stats();
        assert_eq!(out_stats.released, 1);
        assert_eq!(out_stats.expired, 0);
        assert_eq!(hooks.stats().protected, 1);
    }

    #[test]
    fn park_queue_overflow_rejects() {
        let world = World::new();
        let cfg = IpMappingConfig {
            key_unavailable: KeyUnavailableVerdict::Park,
            park_capacity: 2,
            ..IpMappingConfig::default()
        };
        let mut hooks = hooks_with(&world, cfg);
        for i in 0..2 {
            let (mut header, payload) = udp_datagram(A, B);
            let out = hooks.output(&mut header, payload, 1_000 + i);
            assert!(matches!(out, HookOutcome::Park));
        }
        let (mut header, payload) = udp_datagram(A, B);
        let out = hooks.output(&mut header, payload, 2_000);
        assert!(matches!(out, HookOutcome::Reject(_)), "{out:?}");
        let (out_stats, _) = hooks.park_stats();
        assert_eq!(out_stats.overflow, 1);
        assert_eq!(hooks.parked_depths(), (2, 0));
    }

    #[test]
    fn parked_datagrams_expire_at_their_deadline() {
        let world = World::new();
        let cfg = IpMappingConfig {
            key_unavailable: KeyUnavailableVerdict::Park,
            park_deadline_us: 5_000,
            ..IpMappingConfig::default()
        };
        let mut hooks = hooks_with(&world, cfg);
        let (mut header, payload) = udp_datagram(A, B);
        assert!(matches!(
            hooks.output(&mut header, payload, 1_000),
            HookOutcome::Park
        ));
        // Repeated keyless release passes must not reset the deadline.
        assert!(hooks.release_output(3_000).is_empty());
        assert!(hooks.release_output(5_000).is_empty());
        assert!(hooks.release_output(6_001).is_empty());
        assert_eq!(hooks.parked_depths(), (0, 0), "expired, not retained");
        let (out_stats, _) = hooks.park_stats();
        assert_eq!(out_stats.expired, 1);
        assert_eq!(out_stats.released, 0);
    }

    #[test]
    fn input_park_releases_after_sender_cert_appears() {
        // Receiver-side parking: the wire datagram arrives before the
        // receiver can fetch the sender's public value.
        let world = World::new();
        let park_cfg = IpMappingConfig {
            key_unavailable: KeyUnavailableVerdict::Park,
            park_deadline_us: 10_000_000,
            ..IpMappingConfig::default()
        };
        // Receiver A parks; its directory view is a SEPARATE directory
        // that never saw the sender's certificate.
        let receiver_world = World::new();
        let mut receiver = hooks_with(&receiver_world, park_cfg);

        // Sender B lives in `world` with both certificates present —
        // publish A's certificate there by building A's endpoint too.
        let _a_in_world = world.host(A);
        let (_host_b, _) = build_secure_host(
            B,
            1500,
            IpMappingConfig::default(),
            world.clock.clone(),
            &world.group,
            &world.ca,
            &world.directory,
            42,
        );
        let mut sender = {
            let (_h, hooks) = build_secure_host(
                B,
                1500,
                IpMappingConfig::default(),
                world.clock.clone(),
                &world.group,
                &world.ca,
                &world.directory,
                43,
            );
            hooks
        };
        let (mut header, payload) = udp_datagram(B, A);
        let wire = match sender.output(&mut header, payload.clone(), 1_000) {
            HookOutcome::Pass(bytes) => bytes,
            other => panic!("sender should protect, got {other:?}"),
        };

        let mut rx_header = header.clone();
        let out = receiver.input(&mut rx_header, wire, 1_000);
        assert!(matches!(out, HookOutcome::Park), "{out:?}");
        assert_eq!(receiver.parked_depths(), (0, 1));

        // Sender's certificate reaches the receiver's directory; note
        // the sender in `world` signs with the same CA key, so the
        // receiver's verifier accepts it.
        let b_cert = world.directory.fetch(&Principal::from_ipv4(B)).unwrap();
        receiver_world.directory.publish(b_cert);
        let released = receiver.release_input(2_000);
        assert_eq!(released.len(), 1);
        assert_eq!(released[0].1, payload, "verified plaintext");
        assert_eq!(receiver.parked_depths(), (0, 0));
        assert_eq!(receiver.stats().verified, 1);
    }
}
