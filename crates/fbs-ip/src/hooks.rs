//! The `ip_fbs.c` analogue: FBS processing hooked into the stack.
//!
//! Output (§7.2): between IP output processing and fragmentation, the
//! datagram is classified into a flow, protected, and the security flow
//! header is inserted between the IP header and the transport payload;
//! the IP length fields are fixed up. "To IP, the FBS header is simply a
//! part of the higher layer header" — forwarding routers see nothing
//! strange.
//!
//! Input: between reassembly and dispatch, the FBS header is removed and
//! verified; failures drop the datagram before it reaches the transport.
//!
//! # Thread-per-core worker runtime
//!
//! Flow state lives in a fixed power-of-two array of [`Shard`]s. A shard
//! owns everything a flow touches on the hot path — its slice of the
//! combined FST/TFKC (or FAM + TFKC), its RFKC slice, its [`FlowCodec`]
//! (confounder stream + seal/open), and its parking queues. Shards are
//! **owned outright** by long-lived run-to-completion worker threads
//! (worker `w` of `W` owns shards `{ si : si % W == w }`): no mutex
//! guards a shard, because exactly one thread can ever reach it.
//!
//! [`SecurityHooks::process_batch`] is the ingress/egress stage. It
//! partitions the batch into per-worker sub-batches **once**, ships each
//! over a bounded [`SpscRing`], and re-threads the replies into
//! submission order. Each handle owns a private [`Lane`] (one SPSC ring
//! pair per worker), so the single-producer side of every ring is
//! enforced by `&mut self`; clones start lane-less and lazily register
//! their own. The datagram path therefore acquires **zero** shard locks:
//! the only locking left is control-plane (lane registry, config
//! snapshot swap, keying inserts inside [`KeyingService`], and the
//! control mailboxes used by drain/flush/occupancy/release).
//!
//! * **Transmit** datagrams shard by `crc32(five_tuple) % N`. Each
//!   shard's [`SflAllocator`] is strided so every sfl it issues is
//!   congruent to the shard index mod `N` — the same `sfl % N` function
//!   the parallel sealer partitions by.
//! * **Receive** datagrams shard by the wire sfl (first 8 payload
//!   bytes) mod `N`, so a flow's RFKC entries stay in one shard.
//! * Per-shard tables keep the FULL configured geometry (`fst_size`,
//!   TFKC/RFKC sets × assoc): a shard only ever sees tuples hashing to
//!   its index, so dividing the tables by `N` would collapse them.
//!
//! ## Buffer economy
//!
//! The caller's [`BufferPool`] never crosses a thread: `process_batch`
//! draws one **supply** buffer per datagram (`take_n_into`) and ships
//! them inside the sub-batch; workers seal/open into supplies and push
//! every consumed or unused buffer onto the sub-reply's **recycle** list,
//! which the ingress thread drains back into the pool (`put_all`). All
//! sub-batch/reply vectors round-trip producer↔worker, so steady-state
//! batching allocates nothing per datagram on either side.
//!
//! ## Ordering and determinism
//!
//! `process_batch` is synchronous at batch granularity: it waits for
//! every sub-reply before returning, so all worker side effects
//! happen-before the caller sees the outcomes. A datagram's bytes depend
//! only on its own shard's codec state, which advances in per-shard
//! submission order (one sub-batch per worker, scanned in order), so
//! outputs are bit-identical to the single-threaded path and per-flow
//! FIFO is preserved regardless of inter-shard interleaving.
//!
//! **Lock-ordering rules** (see also `fbs_core::concurrent`): shard
//! state is unlocked by construction (rule 1 — never hold shard state
//! behind a lock across an MKD/directory call — is now vacuous); inside
//! the keying service the order is mkd → mkc-shard; [`Published`] reads
//! nest inside anything (leaf). Worker control mailboxes are leaves: a
//! worker never sends control messages, only answers them.
//!
//! All hook/endpoint/cache counters are lock-free atomics shared across
//! shards, so a stats scrape never blocks a batch in flight.
//!
//! # Fault containment
//!
//! The runtime survives its own failures; a worker panic never poisons
//! the endpoint.
//!
//! * **In-thread supervision.** Each worker thread runs its loop inside
//!   `catch_unwind`. The thread never dies on a supervised panic, so
//!   rings, mailboxes, and thread handles stay valid and
//!   `workers_alive` only moves on real shutdown. The sub-batch being
//!   processed lives in a cursor *outside* the unwind boundary: the
//!   datagram that panicked gets a `Reject` verdict (with replacement
//!   buffers covering whatever the unwind freed, so the producer's
//!   pool ledger stays balanced), and the rest of the sub-batch is
//!   finished after recovery — zero verdict loss.
//! * **Respawn or quarantine** ([`WorkerFaultPolicy`]). Under `Respawn`
//!   the worker rebuilds its shards fresh (soft state re-warms through
//!   ordinary TFKC/RFKC misses — the paper's §5.3 argument; parked
//!   datagrams are carried over, and rebuilt sfl allocators are
//!   generation-salted while preserving `sfl ≡ shard (mod N)`). After
//!   `max_respawns`, or immediately under `FailClosed`, the worker is
//!   **quarantined**: parked buffers are recycled, and it keeps
//!   draining its rings and answering control messages but rejects
//!   every datagram — fail-closed on its shards, invisible to the
//!   others.
//! * **Typed errors, no runtime panics.** Control round-trips return
//!   [`RuntimeError`] (with a deadline, so a wedged worker cannot hang
//!   a stats scrape or `drain`), and `process_batch` fails closed —
//!   missing verdicts become `Reject` — if a worker ever dies past its
//!   supervisor.
//! * **Overload shedding.** A full ingress ring is backpressure, not a
//!   license to spin forever: the producer spins up to
//!   `shed_deadline_us`, then sheds the sub-batch per-datagram
//!   (`Reject`, buffers recycled, counted as `hooks.shed.*`). A
//!   [`WorkerFaultInjector`] (see `fbs-chaos`'s `WorkerChaos`) can
//!   schedule panics/stalls and simulate ring saturation
//!   deterministically on virtual time.
//!
//! # Graceful degradation
//!
//! Keying can fail *transiently* — a certificate-directory outage, an
//! MKD upcall failure, an open circuit breaker. The flow policy's
//! [`KeyUnavailableVerdict`] decides what happens to the datagram:
//!
//! * **fail-closed** (default, the paper's behaviour): drop it;
//! * **fail-open**: pass it unprotected — only honoured when the
//!   configuration does not request confidentiality, and never for a
//!   framed-but-unverifiable input datagram;
//! * **park**: hold it in a bounded [`ParkingQueue`] and retry when
//!   [`Host::poll`](fbs_net::Host::poll) drives
//!   [`SecurityHooks::release_output`]/[`release_input`](SecurityHooks::release_input).
//!   Entries carry an absolute deadline from their first park, so a
//!   sustained outage degrades into ordinary datagram loss instead of
//!   unbounded memory growth.
//!
//! Cryptographic verdicts (bad MAC, stale timestamp, malformed input)
//! never degrade: they are final rejections regardless of policy.
//!
//! Every early exit that consumed a pool-drawn payload recycles it: the
//! reject paths, park-queue overflow, parked-entry expiry, and the
//! release loops all route buffers back to the caller's [`BufferPool`].

use crate::combined::{AtomicCombinedStats, CombinedTable};
use crate::policy::FiveTuplePolicy;
use crate::tuple::FiveTuple;
use fbs_core::breaker::BreakerState;
use fbs_core::header::{HeaderView, FIXED_PREFIX_LEN};
use fbs_core::protocol::EndpointStats;
use fbs_core::{
    derive_flow_key, AtomicCacheStats, BatchVerifier, BudgetKind, BudgetSnapshot, BufferPool,
    Clock, Fam, FbsConfig, FbsEndpoint, FbsError, FlowCodec, FlowKeyId, FstEntry,
    KeyUnavailableVerdict, KeyingService, MemoryBudget, ParkStats, Parked, ParkingQueue,
    Principal, Published, RuntimeError, SealedFlowKey, SflAllocator, SoftCache, SpscRing,
    WorkerFaultInjector,
};
use fbs_crypto::{crc32, CipherSuite};
use fbs_net::ip::Proto;
use fbs_net::{Datagram, HookOutcome, Ipv4Header, SecurityHooks};
use fbs_obs::{
    CacheKind, Counter, Direction, Event, MetricsRegistry, MetricsSnapshot, ShardMemSample,
    SpanKind, Stage, StageTimer, TraceSpan,
};
use parking_lot::Mutex;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, OnceLock};
use std::time::{Duration, Instant};

/// Multiplier decorrelating per-shard confounder seeds (golden-ratio
/// constant; shard 0 keeps the endpoint's original seed).
const SHARD_SEED_MIX: u64 = 0x9E37_79B9_7F4A_7C15;

/// Mixed into rebuilt shards' sfl-allocator salt and confounder seed on
/// every supervised respawn, so a respawned shard never re-issues sfls
/// or confounder bytes from its previous life.
const GENERATION_MIX: u64 = 0xD1B5_4A32_D192_ED03;

/// Deadline for a control round-trip (stats scrape, flush, release):
/// generous against injected stalls, but bounded so a wedged worker
/// surfaces as [`RuntimeError::ControlTimeout`] instead of a hang.
const CONTROL_DEADLINE: Duration = Duration::from_secs(10);

/// Hard cap on an injected worker stall, keeping chaos runs bounded no
/// matter what a fault plan asks for.
const MAX_INJECTED_STALL_US: u64 = 20_000;

/// Estimated resident bytes per flow-key cache entry, charged against
/// the shard's [`MemoryBudget`]: the SoA slot (key + value `Arc` + LRU
/// tick + control byte) plus the [`SealedFlowKey`] allocation the `Arc`
/// points at. An estimate is the right tool — the budget bounds
/// steady-state residency, it is not an allocator.
const FLOW_KEY_ENTRY_BYTES: u64 = (std::mem::size_of::<Option<FlowKeyId>>()
    + std::mem::size_of::<Option<Arc<SealedFlowKey>>>()
    + std::mem::size_of::<u64>()
    + 1
    + std::mem::size_of::<SealedFlowKey>()) as u64;

/// Static bytes one shard's FST-shaped table occupies (both the
/// textbook FAM and the §7.2 combined table keep `fst_size` slots
/// resident whether or not flows occupy them), charged up front under
/// [`BudgetKind::Fam`] so `mem.shard.<i>.*` reflects the real floor.
fn fst_static_bytes(fst_size: usize) -> u64 {
    (fst_size * std::mem::size_of::<Option<FstEntry<FiveTuple>>>()) as u64
}

/// What the in-thread supervisor does with a worker whose loop
/// panicked.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WorkerFaultPolicy {
    /// Rebuild the worker's shard state and resume (soft state re-warms
    /// through normal cache misses). After `max_respawns` supervised
    /// panics the worker falls back to [`WorkerFaultPolicy::FailClosed`].
    Respawn {
        /// Supervised respawns allowed before quarantining.
        max_respawns: u32,
    },
    /// Quarantine immediately: keep draining rings and answering
    /// control messages, but reject every datagram routed to the
    /// worker's shards (buffers recycled, never silently dropped).
    FailClosed,
}

impl Default for WorkerFaultPolicy {
    fn default() -> Self {
        WorkerFaultPolicy::Respawn { max_respawns: 3 }
    }
}

/// Configuration of the IP mapping.
#[derive(Clone, Debug)]
pub struct IpMappingConfig {
    /// Flow idle expiry (Fig. 7's THRESHOLD).
    pub threshold_secs: u64,
    /// Flow state table size (Fig. 7's FSTSIZE).
    pub fst_size: usize,
    /// Request data confidentiality (DES) for covered datagrams; false =
    /// authentication only (keyed MD5), the paper's non-secret mode.
    pub encrypt: bool,
    /// Use the combined FST/TFKC send path of §7.2 (the implementation's
    /// choice); false = the textbook separate FAM + TFKC path of Fig. 4/6.
    pub combined: bool,
    /// Also protect raw-IP protocols (everything except the bypass
    /// protocol) as **host-level flows** — the treatment §7.1 footnote 10
    /// sketches for ICMP/IGMP: "raw IP can be considered as host-level
    /// flows". The paper's implementation left this out; it is provided as
    /// the documented extension. Default off for fidelity.
    pub cover_raw_ip: bool,
    /// Degradation verdict when keying material is transiently
    /// unavailable (wired into the flow policy). Default fail-closed,
    /// which reproduces the seed behaviour exactly.
    pub key_unavailable: KeyUnavailableVerdict,
    /// Parking-queue capacity per shard per direction (park verdict only).
    pub park_capacity: usize,
    /// Per-datagram parking deadline in microseconds, measured from the
    /// first park.
    pub park_deadline_us: u64,
    /// Number of flow-state shards (rounded up to a power of two).
    /// Fixed at construction: changing it through
    /// [`FbsIpHooks::update_config`] has no effect.
    pub shards: usize,
    /// Number of shard-owning worker threads (clamped to `1..=shards`).
    /// Fixed at construction, like the shard geometry.
    pub workers: usize,
    /// Per-worker SPSC ring depth (sub-batches in flight per lane;
    /// minimum 1). Fixed at construction.
    pub ring_depth: usize,
    /// Supervision policy applied when a worker loop panics. Read per
    /// panic, so it can be changed through
    /// [`FbsIpHooks::update_config`].
    pub worker_fault: WorkerFaultPolicy,
    /// How long (wall microseconds) `process_batch` spins on a full
    /// worker ring before shedding the sub-batch per-datagram
    /// (`Reject` + recycle, counted as `hooks.shed.*`). 0 sheds on the
    /// first failed push. Read per batch.
    pub shed_deadline_us: u64,
    /// Per-shard soft-state byte budget (0 = unbudgeted). Bounds what
    /// one shard's TFKC/RFKC/FAM keep resident: a table that would
    /// allocate past the budget evicts its own entries first. Enforced
    /// worker-locally — no cross-shard coordination — and fixed at
    /// construction like the shard geometry.
    pub shard_budget_bytes: u64,
    /// The underlying FBS endpoint configuration.
    pub fbs: FbsConfig,
}

impl Default for IpMappingConfig {
    fn default() -> Self {
        IpMappingConfig {
            threshold_secs: crate::policy::DEFAULT_THRESHOLD_SECS,
            fst_size: crate::policy::DEFAULT_FST_SIZE,
            encrypt: true,
            combined: true,
            cover_raw_ip: false,
            key_unavailable: KeyUnavailableVerdict::FailClosed,
            park_capacity: 64,
            park_deadline_us: 2_000_000,
            shards: 8,
            workers: 2,
            ring_depth: 4,
            worker_fault: WorkerFaultPolicy::default(),
            shed_deadline_us: 5_000,
            shard_budget_bytes: 0,
            fbs: FbsConfig::default(),
        }
    }
}

/// Counters for the hook layer.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct IpHookStats {
    /// Datagrams protected on output.
    pub protected: u64,
    /// Datagrams verified and stripped on input.
    pub verified: u64,
    /// Output datagrams rejected (keying failure, tuple extraction...).
    pub output_errors: u64,
    /// Input datagrams rejected (MAC, freshness, framing...).
    pub input_errors: u64,
    /// Datagrams passed unprotected/unverified under a fail-open verdict.
    pub fail_open: u64,
    /// Key-unavailable datagrams dropped under the fail-closed verdict.
    pub fail_closed: u64,
}

impl IpHookStats {
    /// Total output-hook invocations that reached a final verdict.
    pub fn output_entries(&self) -> u64 {
        self.protected + self.output_errors
    }

    /// Total input-hook invocations that reached a final verdict.
    pub fn input_entries(&self) -> u64 {
        self.verified + self.input_errors
    }

    /// Fold these counters into a snapshot under the `hooks.*` /
    /// `degrade.*` names a live [`MetricsRegistry`] uses.
    pub fn contribute(&self, snap: &mut MetricsSnapshot) {
        snap.add("hooks.output_entries", self.output_entries());
        snap.add("hooks.output_ok", self.protected);
        snap.add("hooks.output_errors", self.output_errors);
        snap.add("hooks.input_entries", self.input_entries());
        snap.add("hooks.input_ok", self.verified);
        snap.add("hooks.input_errors", self.input_errors);
        snap.add("degrade.fail_open", self.fail_open);
        snap.add("degrade.fail_closed", self.fail_closed);
    }
}

/// Lock-free live counters behind [`FbsIpHooks::stats`]: updated from
/// worker threads with relaxed atomics, snapshotted by readers without
/// blocking any batch in flight.
#[derive(Debug, Default)]
struct AtomicHookStats {
    protected: AtomicU64,
    verified: AtomicU64,
    output_errors: AtomicU64,
    input_errors: AtomicU64,
    fail_open: AtomicU64,
    fail_closed: AtomicU64,
}

impl AtomicHookStats {
    fn snapshot(&self) -> IpHookStats {
        IpHookStats {
            protected: self.protected.load(Ordering::Relaxed),
            verified: self.verified.load(Ordering::Relaxed),
            output_errors: self.output_errors.load(Ordering::Relaxed),
            input_errors: self.input_errors.load(Ordering::Relaxed),
            fail_open: self.fail_open.load(Ordering::Relaxed),
            fail_closed: self.fail_closed.load(Ordering::Relaxed),
        }
    }
}

/// One shard's slice of the mutable flow state, owned exclusively by one
/// worker thread (no lock — ownership IS the exclusion). All counters
/// inside are share-stats'd into the lock-free aggregates in
/// [`HookShared`].
struct Shard {
    /// Seal/open engine with this shard's confounder stream.
    codec: FlowCodec,
    /// Textbook path: FAM with the Fig. 7 policy.
    fam: Fam<FiveTuple, FiveTuplePolicy>,
    /// §7.2 path: merged FST/TFKC, used when `cfg.combined`.
    combined: Option<CombinedTable>,
    /// Textbook-path transmit flow key cache (full geometry).
    tfkc: SoftCache<FlowKeyId, Arc<SealedFlowKey>>,
    /// Receive flow key cache slice for sfls ≡ shard index (mod N).
    rfkc: SoftCache<FlowKeyId, Arc<SealedFlowKey>>,
    /// Output datagrams awaiting key derivation: (header, plaintext).
    out_park: ParkingQueue<(Ipv4Header, Vec<u8>)>,
    /// Input datagrams awaiting key derivation: (header, wire payload).
    in_park: ParkingQueue<(Ipv4Header, Vec<u8>)>,
}

/// One partitioned datagram in flight to a worker: submission slot,
/// shard index, header, payload, and the pre-extracted 5-tuple (output
/// direction only).
type WorkItem = (usize, usize, Ipv4Header, Vec<u8>, Option<FiveTuple>);

/// One finished datagram on its way back: submission slot, (possibly
/// length-fixed) header, and the verdict.
type DoneItem = (usize, Ipv4Header, HookOutcome);

/// What a release control round-trip returns: the released datagrams
/// plus every buffer the worker consumed (to be recycled into the
/// caller's pool).
type ReleasedBatch = (Vec<(Ipv4Header, Vec<u8>)>, Vec<Vec<u8>>);

/// A unit of work shipped over a [`Lane`]: the items, one supply buffer
/// per item (drawn from the caller's pool), and the reply vectors being
/// lent to the worker so nothing allocates per sub-batch.
struct SubBatch {
    dir: Direction,
    now_us: u64,
    items: Vec<WorkItem>,
    supplies: Vec<Vec<u8>>,
    done: Vec<DoneItem>,
    recycle: Vec<Vec<u8>>,
}

/// A finished sub-batch: verdicts, buffers to recycle, and the (now
/// emptied) item/supply vectors riding home for reuse.
struct SubReply {
    done: Vec<DoneItem>,
    recycle: Vec<Vec<u8>>,
    items: Vec<WorkItem>,
    supplies: Vec<Vec<u8>>,
}

/// One handle's private ring pair per worker. `&mut self` on
/// [`SecurityHooks::process_batch`] makes the producer side single by
/// construction; the worker is the only consumer of `to_worker[w]` and
/// the only producer of `from_worker[w]`.
struct Lane {
    to_worker: Box<[SpscRing<SubBatch>]>,
    from_worker: Box<[SpscRing<SubReply>]>,
    /// The thread currently blocked in `process_batch` on this lane, for
    /// worker→producer wakeups (control-plane mutex; set once per batch).
    producer: Mutex<Option<std::thread::Thread>>,
}

impl Lane {
    fn new(workers: usize, depth: usize) -> Self {
        Lane {
            to_worker: (0..workers)
                .map(|_| SpscRing::with_capacity(depth))
                .collect(),
            from_worker: (0..workers)
                .map(|_| SpscRing::with_capacity(depth))
                .collect(),
            producer: Mutex::new(None),
        }
    }
}

/// Control-plane messages to a worker. Every variant carries an ack /
/// reply channel: the control plane is synchronous, so callers observe
/// effects (flush, release) before returning — exactly like the old
/// lock-per-shard accessors did.
enum Control {
    /// Cascade a metrics registry into every owned shard's components.
    AttachObs(Arc<MetricsRegistry>, mpsc::Sender<()>),
    /// Drop all flow-key soft state in owned shards.
    FlushKeys(mpsc::Sender<()>),
    /// Per owned shard `(shard_index, active_flows(now_secs))`.
    Occupancy(u64, mpsc::Sender<Vec<(usize, usize)>>),
    /// Summed (output, input) parking counters over owned shards.
    ParkStats(mpsc::Sender<(ParkStats, ParkStats)>),
    /// Run the park release loop for one direction.
    Release {
        dir: Direction,
        now_us: u64,
        reply: mpsc::Sender<ReleasedBatch>,
    },
    /// Drain every pending sub-batch from every known lane, then ack:
    /// after the ack, no datagram handed to this worker is still buffered.
    Drain(mpsc::Sender<()>),
}

/// Cached per-worker parking-queue depths, refreshed by the owning
/// worker after every sub-batch/release. Lets `release_output`/`_input`
/// (driven every [`fbs_net::Host::poll`]) skip the control round-trip
/// entirely when nothing is parked.
#[derive(Default)]
struct ParkDepths {
    out: AtomicUsize,
    inp: AtomicUsize,
}

/// A worker's view of the buffer economy while processing one
/// sub-batch: `take` pops a supply (falling back to a fresh allocation),
/// `put` stages a buffer for recycling into the producer's pool.
struct WorkerCtx<'a> {
    supplies: &'a mut Vec<Vec<u8>>,
    recycle: &'a mut Vec<Vec<u8>>,
}

impl WorkerCtx<'_> {
    fn take(&mut self) -> Vec<u8> {
        match self.supplies.pop() {
            Some(mut buf) => {
                buf.clear();
                buf
            }
            None => Vec::with_capacity(fbs_core::pool::DEFAULT_BUF_CAPACITY),
        }
    }

    fn put(&mut self, buf: Vec<u8>) {
        self.recycle.push(buf);
    }
}

/// State shared by every clone of [`FbsIpHooks`] and every worker
/// thread: the keying service, the published config snapshot, the
/// lock-free counter aggregates, and the worker-runtime plumbing.
struct HookShared {
    keying: KeyingService,
    local: Principal,
    clock: Arc<dyn Clock>,
    /// The endpoint-side config (algorithms, key derivation, cache
    /// geometry) the codecs were built from; kept whole so a panicked
    /// worker's shards can be rebuilt from first principles.
    ep_cfg: FbsConfig,
    /// Base codec seed (pre shard/generation mixing).
    codec_seed: u64,
    /// Base sfl allocator seed (pre shard/generation mixing).
    sfl_seed: u64,
    cfg: Published<IpMappingConfig>,
    stats: AtomicHookStats,
    endpoint_stats: Arc<fbs_core::AtomicEndpointStats>,
    tfkc_stats: Arc<AtomicCacheStats>,
    rfkc_stats: Arc<AtomicCacheStats>,
    combined_stats: Arc<AtomicCombinedStats>,
    /// Times a producer found a worker's ingress ring full.
    ring_stalls: AtomicU64,
    /// Datagrams rejected by the overload-shedding policy (ring still
    /// full at the shed deadline). Every shed datagram gets a `Reject`
    /// verdict and its buffers recycled — never a silent drop.
    shed_rejected: AtomicU64,
    /// Sub-batches shed whole (the shed granularity: one ring push).
    shed_batches: AtomicU64,
    /// Worker-loop panics caught by the in-thread supervisors.
    worker_panics: AtomicU64,
    /// Supervised respawns (shard state rebuilt, worker resumed).
    worker_respawns: AtomicU64,
    /// Workers that exhausted their respawn budget (or run under
    /// [`WorkerFaultPolicy::FailClosed`]) and now reject everything.
    quarantined: Box<[AtomicBool]>,
    /// Deterministic fault injector for chaos runs (`None` in
    /// production; swap-on-update like `cfg`).
    chaos: Published<Option<Arc<dyn WorkerFaultInjector>>>,
    obs: Published<Option<Arc<MetricsRegistry>>>,
    /// Shard / worker geometry (fixed at construction).
    n_shards: usize,
    n_workers: usize,
    ring_depth: usize,
    /// Registry of live lanes (control plane: mutated on handle
    /// create/drop only).
    lanes: Mutex<Vec<Arc<Lane>>>,
    /// Swap-on-update snapshot of `lanes` for workers to poll without
    /// taking the registry lock.
    lanes_snapshot: Published<Vec<Arc<Lane>>>,
    /// Bumped on every registry change; workers reload the snapshot when
    /// it moves.
    lanes_epoch: AtomicU64,
    shutdown: AtomicBool,
    /// Workers still running their loop; `process_batch` panics rather
    /// than spinning forever if one dies mid-batch.
    workers_alive: AtomicUsize,
    /// Worker thread handles for unparking (set once after spawn).
    threads: OnceLock<Box<[std::thread::Thread]>>,
    /// Per-worker control mailboxes.
    control: Box<[Mutex<mpsc::Sender<Control>>]>,
    /// Per-worker cached parking-queue depths.
    park_depths: Box<[ParkDepths]>,
    /// One [`MemoryBudget`] per shard, stable across worker respawns
    /// (the shard clones the ledger handle; a rebuild `reset()`s it so
    /// the lost generation's charges cannot leak into the fresh one).
    /// Readable from any thread for health probes and gauges.
    budgets: Box<[MemoryBudget]>,
}

impl HookShared {
    fn obs_handle(&self) -> Option<Arc<MetricsRegistry>> {
        (*self.obs.load()).clone()
    }

    fn wake_worker(&self, w: usize) {
        if let Some(threads) = self.threads.get() {
            threads[w].unpark();
        }
    }

    fn wake_all(&self) {
        if let Some(threads) = self.threads.get() {
            for t in threads.iter() {
                t.unpark();
            }
        }
    }

    /// Post a control message to worker `w`'s mailbox. `Err` means the
    /// worker thread is gone (its receiver dropped) — possible only
    /// after an unsupervised death, since supervised panics keep the
    /// thread (and its mailbox) alive.
    fn send_control(&self, w: usize, msg: Control) -> Result<(), RuntimeError> {
        self.control[w]
            .lock()
            .send(msg)
            .map_err(|_| RuntimeError::WorkerUnavailable { worker: w })?;
        self.wake_worker(w);
        Ok(())
    }

    /// Synchronous control round-trip to worker `w` with a deadline:
    /// build the message around a fresh reply channel, send, and wait.
    /// A worker that stops answering (stalled, or died between send and
    /// reply) surfaces as a typed error instead of a hang or panic.
    fn control_roundtrip<T>(
        &self,
        w: usize,
        make: impl FnOnce(mpsc::Sender<T>) -> Control,
    ) -> Result<T, RuntimeError> {
        let (tx, rx) = mpsc::channel();
        self.send_control(w, make(tx))?;
        match rx.recv_timeout(CONTROL_DEADLINE) {
            Ok(v) => Ok(v),
            Err(mpsc::RecvTimeoutError::Timeout) => Err(RuntimeError::ControlTimeout { worker: w }),
            Err(mpsc::RecvTimeoutError::Disconnected) => {
                Err(RuntimeError::WorkerUnavailable { worker: w })
            }
        }
    }

    /// Build shard `si` from scratch. `generation` 0 reproduces the
    /// construction-time shards exactly; a respawned worker bumps it so
    /// rebuilt confounder streams and sfl ranges cannot collide with
    /// anything issued before the panic. The generation salt multiplies
    /// into the stride base, so `sfl % n_shards == si` still holds — the
    /// receive-side partition stays consistent across respawns.
    fn build_shard(&self, si: usize, generation: u64) -> Shard {
        let cfg = self.cfg.load();
        let n = self.n_shards as u64;
        let salt = self
            .sfl_seed
            .wrapping_add(generation.wrapping_mul(0x9E37_79B9));
        let stride_base = salt.wrapping_mul(n).wrapping_add(si as u64);
        let mut codec = FlowCodec::new(
            self.local.clone(),
            self.ep_cfg.clone(),
            Arc::clone(&self.clock),
            self.codec_seed
                ^ (si as u64).wrapping_mul(SHARD_SEED_MIX)
                ^ generation.wrapping_mul(GENERATION_MIX),
        );
        codec.share_stats(Arc::clone(&self.endpoint_stats));
        let fam = Fam::new(
            cfg.fst_size,
            FiveTuplePolicy::new(cfg.threshold_secs).with_key_unavailable(cfg.key_unavailable),
            SflAllocator::with_stride(stride_base, n),
        );
        let combined = cfg.combined.then(|| {
            let mut t = CombinedTable::new(
                cfg.fst_size,
                cfg.threshold_secs,
                // Distinct allocator space from the FAM's (only one of
                // the two is ever used per configuration).
                SflAllocator::with_stride(stride_base, n),
            );
            t.share_stats(Arc::clone(&self.combined_stats));
            t
        });
        let mut tfkc = SoftCache::new(
            self.ep_cfg.tfkc_sets,
            self.ep_cfg.tfkc_assoc,
            fbs_core::flow_key_hash,
        );
        tfkc.share_stats(Arc::clone(&self.tfkc_stats));
        let mut rfkc = SoftCache::new(
            self.ep_cfg.rfkc_sets,
            self.ep_cfg.rfkc_assoc,
            fbs_core::flow_key_hash,
        );
        rfkc.share_stats(Arc::clone(&self.rfkc_stats));
        // The shard enforces its own budget: reset the (possibly
        // carried-over) ledger, charge the static FST footprint, and
        // attach the key caches so they evict before allocating past it.
        let budget = self.budgets[si].clone();
        budget.reset();
        budget.charge(BudgetKind::Fam, fst_static_bytes(cfg.fst_size));
        tfkc.set_budget(budget.clone(), BudgetKind::Tfkc, FLOW_KEY_ENTRY_BYTES);
        rfkc.set_budget(budget.clone(), BudgetKind::Rfkc, FLOW_KEY_ENTRY_BYTES);
        Shard {
            codec,
            fam,
            combined,
            tfkc,
            rfkc,
            out_park: ParkingQueue::new(cfg.park_capacity, cfg.park_deadline_us),
            in_park: ParkingQueue::new(cfg.park_capacity, cfg.park_deadline_us),
        }
    }
}

/// Cascade a metrics registry into one shard's components (used both by
/// the AttachObs control message and by post-panic shard rebuilds).
fn cascade_obs(shard: &mut Shard, reg: &Arc<MetricsRegistry>) {
    shard.codec.set_obs(Arc::clone(reg));
    shard.fam.set_obs(Arc::clone(reg));
    if let Some(t) = &mut shard.combined {
        t.set_obs(Arc::clone(reg));
    }
    shard.tfkc.set_obs(Arc::clone(reg), CacheKind::Tfkc);
    shard.rfkc.set_obs(Arc::clone(reg), CacheKind::Rfkc);
}

fn record(obs: &Option<Arc<MetricsRegistry>>, event: Event) {
    if let Some(reg) = obs {
        reg.record(event);
    }
}

/// Record a flow-trace span when a tracer is attached AND sampling
/// selects the flow. The untraced path costs one `Option` check plus one
/// atomic load; an unsampled flow adds a hash of its sfl — no locking,
/// no allocation.
fn trace_span(
    obs: &Option<Arc<MetricsRegistry>>,
    sfl: u64,
    host: [u8; 4],
    kind: SpanKind,
    t_us: u64,
    info: u64,
) {
    if let Some(tracer) = obs.as_ref().and_then(|reg| reg.tracer()) {
        if tracer.sampled(sfl) {
            tracer.record(TraceSpan {
                sfl,
                host: u32::from_be_bytes(host),
                kind,
                t_us,
                info,
            });
        }
    }
}

/// Annotate the trace stream with an event that has no owning flow
/// (e.g. an output-side park, where keying failed before an sfl could
/// be resolved).
fn trace_note(
    obs: &Option<Arc<MetricsRegistry>>,
    kind: &'static str,
    detail: &'static str,
    t_us: u64,
    info: u64,
) {
    if let Some(tracer) = obs.as_ref().and_then(|reg| reg.tracer()) {
        tracer.annotate(kind, detail, t_us, info);
    }
}

/// The wire sfl: the first 8 big-endian payload bytes of a framed
/// datagram (the same prefix `rx_shard` partitions by).
fn wire_sfl(payload: &[u8]) -> Option<u64> {
    payload
        .get(..8)
        .map(|b| u64::from_be_bytes(b.try_into().expect("8 bytes")))
}

/// The policy's key-unavailable verdict, downgraded to fail-closed when
/// fail-open would leak traffic configured for confidentiality.
fn degrade_verdict(cfg: &IpMappingConfig) -> KeyUnavailableVerdict {
    if cfg.encrypt && cfg.key_unavailable == KeyUnavailableVerdict::FailOpen {
        KeyUnavailableVerdict::FailClosed
    } else {
        cfg.key_unavailable
    }
}

/// The outgoing datagram's flow identity. `None` = a transport datagram
/// too short for 5-tuple extraction (rejected later as malformed).
fn tuple_for(header: &Ipv4Header, payload: &[u8]) -> Option<FiveTuple> {
    let is_transport = matches!(Proto::from_number(header.proto), Proto::Mrt | Proto::Udp);
    if is_transport {
        FiveTuple::extract(header.proto, header.src, header.dst, payload)
    } else {
        // Footnote-10 extension: raw IP forms host-level flows — the
        // "5-tuple" degenerates to (proto, saddr, daddr).
        Some(FiveTuple {
            proto: header.proto,
            saddr: header.src,
            sport: 0,
            daddr: header.dst,
            dport: 0,
        })
    }
}

/// Transmit shard: derived from `crc32(tuple)` like the tables' slot
/// indices, but from the HIGH bits — the tables reduce the crc mod their
/// size (low bits), and taking the shard from the same low bits would
/// leave each shard's tuples able to reach only `1/N` of its full-size
/// table. Extraction failures go to shard 0; they only touch shared
/// counters on their reject path.
fn tx_shard(n: usize, tuple: Option<&FiveTuple>) -> usize {
    tuple.map_or(0, |t| {
        (crc32(&t.canonical_array()) >> 16) as usize & (n - 1)
    })
}

/// Receive shard: the wire sfl (first 8 payload bytes, big-endian) mod
/// the shard count — the transmit side's strided allocators guarantee
/// `sfl % N` IS the owning shard there, and any consistent partition
/// works here. Short payloads go to shard 0 and fail header parsing.
fn rx_shard(n: usize, payload: &[u8]) -> usize {
    if payload.len() >= 8 {
        let sfl = u64::from_be_bytes(payload[..8].try_into().expect("8 bytes"));
        (sfl as usize) & (n - 1)
    } else {
        0
    }
}

/// Zero-message key derivation via the shared keying service. `peer` is
/// the remote principal, `(src, dst)` the derivation direction. Safe to
/// call with shard state in hand: the shard is plain owned data, so the
/// old rule against holding a shard lock across an MKD call is moot.
fn derive_key(
    shared: &HookShared,
    sfl: u64,
    peer: &Principal,
    src: &Principal,
    dst: &Principal,
    obs: &Option<Arc<MetricsRegistry>>,
) -> Result<Arc<SealedFlowKey>, FbsError> {
    let t0 = obs.as_ref().map(|_| shared.clock.now_micros());
    let timer = obs.as_ref().map(|_| StageTimer::start());
    let master = shared.keying.master_key(peer)?;
    // seal_for (via seal_key) pre-builds every schedule the configured
    // suite needs — TDEA subkeys, the ChaCha key, the cached MAC key
    // prefix — so the per-datagram path never initializes lazily.
    let k = Arc::new(shared.ep_cfg.seal_key(derive_flow_key(
        shared.ep_cfg.key_derivation,
        sfl,
        &master,
        src,
        dst,
    )));
    if let (Some(reg), Some(t0)) = (obs.as_ref(), t0) {
        reg.record(Event::KeyDerivation {
            micros: shared.clock.now_micros().saturating_sub(t0),
        });
        if let Some(timer) = timer {
            reg.observe_stage(Stage::KeyDerive, timer.elapsed_ns());
        }
    }
    Ok(k)
}

/// Resolve the transmit (sfl, key) for `tuple`. A cache hit completes
/// immediately; a miss reserves the sfl, derives via the keying service,
/// and installs unconditionally — the worker is the shard's only writer,
/// so there is no racing insert to re-check for (a failed derivation
/// burns the reserved sfl, exactly as before).
#[allow(clippy::too_many_arguments)]
fn resolve_tx_key(
    shared: &HookShared,
    shard: &mut Shard,
    tuple: &FiveTuple,
    destination: &Principal,
    now_secs: u64,
    combined: bool,
    payload_len: u64,
    obs: &Option<Arc<MetricsRegistry>>,
) -> Result<(u64, Arc<SealedFlowKey>), FbsError> {
    let sfl = if combined {
        let table = shard
            .combined
            .as_mut()
            .expect("combined path requires table");
        if let Some(hit) = table.probe(tuple, now_secs) {
            return Ok((hit.sfl, hit.key));
        }
        table.reserve_sfl()
    } else {
        let class = shard.fam.classify(*tuple, now_secs, payload_len);
        let id: FlowKeyId = (class.sfl, shared.local.clone(), destination.clone());
        if let Some(k) = shard.tfkc.get_ref(&id) {
            return Ok((class.sfl, Arc::clone(k)));
        }
        class.sfl
    };
    let key = derive_key(shared, sfl, destination, &shared.local, destination, obs)?;
    if combined {
        let table = shard
            .combined
            .as_mut()
            .expect("combined path requires table");
        table.insert(*tuple, sfl, Arc::clone(&key), now_secs);
    } else {
        let id: FlowKeyId = (sfl, shared.local.clone(), destination.clone());
        shard.tfkc.insert(id, Arc::clone(&key));
    }
    Ok((sfl, key))
}

/// The §7.2 protect path, with no verdict handling: classify the datagram
/// into a flow, derive/look up its key, and seal the borrowed plaintext
/// into a supply buffer (fixing up `header`'s length on success). The
/// caller keeps ownership of the original bytes, so no snapshot copy is
/// ever needed for park/fail-open fallbacks.
#[allow(clippy::too_many_arguments)]
fn protect(
    shared: &HookShared,
    shard: &mut Shard,
    header: &mut Ipv4Header,
    payload: &[u8],
    tuple: Option<FiveTuple>,
    ctx: &mut WorkerCtx<'_>,
    now_us: u64,
    cfg: &IpMappingConfig,
    obs: &Option<Arc<MetricsRegistry>>,
) -> Result<Vec<u8>, FbsError> {
    let Some(tuple) = tuple else {
        return Err(FbsError::MalformedHeader("payload too short for 5-tuple"));
    };
    let destination = Principal::from_ipv4(header.dst);
    let now_secs = now_us / 1_000_000;
    let (sfl, key) = resolve_tx_key(
        shared,
        shard,
        &tuple,
        &destination,
        now_secs,
        cfg.combined,
        payload.len() as u64,
        obs,
    )?;
    trace_span(
        obs,
        sfl,
        header.src,
        SpanKind::Classify,
        now_us,
        payload.len() as u64,
    );
    let mut out = ctx.take();
    let timer = obs.as_ref().map(|_| StageTimer::start());
    match shard
        .codec
        .seal_with_key_into(sfl, &key, payload, cfg.encrypt, &mut out)
    {
        Ok(()) => {
            if let Some(reg) = obs.as_ref() {
                if let Some(timer) = timer {
                    reg.observe_stage(Stage::Seal, timer.elapsed_ns());
                }
                reg.incr(suite_counter(shared.ep_cfg.suite, Direction::Output));
            }
            trace_span(
                obs,
                sfl,
                header.src,
                SpanKind::Seal,
                now_us,
                out.len() as u64,
            );
            let delta = out.len() as isize - payload.len() as isize;
            header.grow_payload(delta);
            Ok(out)
        }
        Err(e) => {
            ctx.put(out);
            Err(e)
        }
    }
}

/// Output verdict wrapper: protect, and on a *key-unavailable* failure
/// apply the policy's degradation verdict.
#[allow(clippy::too_many_arguments)]
fn output_item(
    shared: &HookShared,
    shard: &mut Shard,
    header: &mut Ipv4Header,
    payload: Vec<u8>,
    tuple: Option<FiveTuple>,
    ctx: &mut WorkerCtx<'_>,
    now_us: u64,
    cfg: &IpMappingConfig,
    obs: &Option<Arc<MetricsRegistry>>,
) -> HookOutcome {
    record(
        obs,
        Event::HookEntry {
            dir: Direction::Output,
        },
    );
    let verdict = degrade_verdict(cfg);
    // protect borrows the payload, so the original bytes are still owned
    // here for the fall-back verdicts — no snapshot copy needed.
    let res = protect(
        shared, shard, header, &payload, tuple, ctx, now_us, cfg, obs,
    );
    match res {
        Ok(out) => {
            ctx.put(payload);
            shared.stats.protected.fetch_add(1, Ordering::Relaxed);
            record(
                obs,
                Event::HookExit {
                    dir: Direction::Output,
                    ok: true,
                },
            );
            HookOutcome::Pass(out)
        }
        Err(e) if e.is_key_unavailable() && verdict != KeyUnavailableVerdict::FailClosed => {
            match verdict {
                KeyUnavailableVerdict::FailOpen => {
                    shared.stats.fail_open.fetch_add(1, Ordering::Relaxed);
                    record(
                        obs,
                        Event::Degraded {
                            dir: Direction::Output,
                            open: true,
                        },
                    );
                    record(
                        obs,
                        Event::HookExit {
                            dir: Direction::Output,
                            ok: true,
                        },
                    );
                    shared.stats.protected.fetch_add(1, Ordering::Relaxed); // it did exit the hook ok
                    HookOutcome::Pass(payload)
                }
                KeyUnavailableVerdict::Park => {
                    let timer = obs.as_ref().map(|_| StageTimer::start());
                    match shard.out_park.park((header.clone(), payload), now_us) {
                        Ok(()) => {
                            if let (Some(reg), Some(timer)) = (obs.as_ref(), timer) {
                                reg.observe_stage(Stage::Park, timer.elapsed_ns());
                            }
                            let queued = shard.out_park.len() as u32;
                            record(obs, Event::Parked { queued });
                            trace_note(obs, "parked", "output", now_us, queued as u64);
                            HookOutcome::Park
                        }
                        Err((_, payload)) => {
                            // Overflow hands the datagram back: recycle its
                            // pooled payload instead of leaking it.
                            ctx.put(payload);
                            record(obs, Event::ParkOverflow);
                            shared.stats.output_errors.fetch_add(1, Ordering::Relaxed);
                            record(
                                obs,
                                Event::HookExit {
                                    dir: Direction::Output,
                                    ok: false,
                                },
                            );
                            HookOutcome::Reject(format!("park queue full: {e}"))
                        }
                    }
                }
                KeyUnavailableVerdict::FailClosed => unreachable!("excluded by guard"),
            }
        }
        Err(e) => {
            ctx.put(payload);
            if e.is_key_unavailable() {
                shared.stats.fail_closed.fetch_add(1, Ordering::Relaxed);
                record(
                    obs,
                    Event::Degraded {
                        dir: Direction::Output,
                        open: false,
                    },
                );
            }
            shared.stats.output_errors.fetch_add(1, Ordering::Relaxed);
            record(
                obs,
                Event::HookExit {
                    dir: Direction::Output,
                    ok: false,
                },
            );
            HookOutcome::Reject(e.to_string())
        }
    }
}

/// The verify path, with no verdict handling: parse the FBS framing,
/// resolve the receive flow key, and recover the borrowed wire payload
/// into a supply buffer (fixing up `header`'s length on success). The
/// MAC *comparison* is deferred into `auth` (MABS-style batch
/// verification): on `Ok((body, true))` the accept/reject decision
/// lands at sub-batch resolution, keyed by `token` (the item's index in
/// the `done` list).
#[allow(clippy::too_many_arguments)]
fn verify(
    shared: &HookShared,
    shard: &mut Shard,
    shard_local: usize,
    header: &mut Ipv4Header,
    payload: &[u8],
    ctx: &mut WorkerCtx<'_>,
    token: usize,
    auth: &mut BatchAuth,
    obs: &Option<Arc<MetricsRegistry>>,
) -> Result<(Vec<u8>, bool), FbsError> {
    let source = Principal::from_ipv4(header.src);
    let (view, used) = HeaderView::parse(payload)?;
    // R3-4: freshness before key lookup, so a stale datagram is rejected
    // as stale even when its key is unavailable.
    shard.codec.check_freshness(view.timestamp)?;
    let id: FlowKeyId = (view.sfl, source.clone(), shared.local.clone());
    let key = if let Some(k) = shard.rfkc.get_ref(&id) {
        Arc::clone(k)
    } else {
        let key = derive_key(shared, view.sfl, &source, &source, &shared.local, obs)?;
        shard.rfkc.insert(id, Arc::clone(&key));
        key
    };
    let mut body = ctx.take();
    let timer = obs.as_ref().map(|_| StageTimer::start());
    match shard.codec.open_with_key_deferred(
        &view,
        &key,
        &payload[used..],
        &mut body,
        token,
        &mut auth.verifier,
    ) {
        Ok(deferred) => {
            if let Some(reg) = obs.as_ref() {
                if let Some(timer) = timer {
                    reg.observe_stage(Stage::Open, timer.elapsed_ns());
                }
                reg.incr(suite_counter(shared.ep_cfg.suite, Direction::Input));
            }
            trace_span(
                obs,
                view.sfl,
                header.dst,
                SpanKind::Open,
                shared.clock.now_micros(),
                body.len() as u64,
            );
            if deferred {
                auth.deferred.push(DeferredOpen {
                    done_idx: token,
                    shard_local,
                    bytes: body.len() as u64,
                });
            }
            let delta = payload.len() as isize - body.len() as isize;
            header.grow_payload(-delta);
            Ok((body, deferred))
        }
        Err(e) => {
            ctx.put(body);
            Err(e)
        }
    }
}

/// Input verdict wrapper. Degradation applies narrowly here:
///
/// * an **unframed** datagram (no FBS header parses) is admitted as-is
///   under fail-open — the counterpart of a fail-open sender;
/// * a **framed** datagram that fails with key-unavailable may be
///   parked; fail-open never admits it (it cannot be verified, and under
///   encryption it is unreadable anyway);
/// * cryptographic failures (MAC, freshness) always reject.
#[allow(clippy::too_many_arguments)]
fn input_item(
    shared: &HookShared,
    shard: &mut Shard,
    shard_local: usize,
    header: &mut Ipv4Header,
    payload: Vec<u8>,
    ctx: &mut WorkerCtx<'_>,
    now_us: u64,
    cfg: &IpMappingConfig,
    token: usize,
    auth: &mut BatchAuth,
    obs: &Option<Arc<MetricsRegistry>>,
) -> HookOutcome {
    record(
        obs,
        Event::HookEntry {
            dir: Direction::Input,
        },
    );
    let verdict = degrade_verdict(cfg);
    let res = verify(
        shared,
        shard,
        shard_local,
        header,
        &payload,
        ctx,
        token,
        auth,
        obs,
    );
    match res {
        Ok((body, deferred)) => {
            // The wire buffer is recycled either way: the deferred
            // verifier copied the shipped tag out of it.
            ctx.put(payload);
            if !deferred {
                shared.stats.verified.fetch_add(1, Ordering::Relaxed);
                record(
                    obs,
                    Event::HookExit {
                        dir: Direction::Input,
                        ok: true,
                    },
                );
            }
            // A deferred item's success accounting (or its flip to
            // Reject) happens at batch resolution.
            HookOutcome::Pass(body)
        }
        Err(FbsError::MalformedHeader(_) | FbsError::UnknownAlgorithm(_))
            if verdict == KeyUnavailableVerdict::FailOpen =>
        {
            shared.stats.fail_open.fetch_add(1, Ordering::Relaxed);
            shared.stats.verified.fetch_add(1, Ordering::Relaxed);
            record(
                obs,
                Event::Degraded {
                    dir: Direction::Input,
                    open: true,
                },
            );
            record(
                obs,
                Event::HookExit {
                    dir: Direction::Input,
                    ok: true,
                },
            );
            HookOutcome::Pass(payload)
        }
        Err(e) if e.is_key_unavailable() && verdict == KeyUnavailableVerdict::Park => {
            let sfl = wire_sfl(&payload);
            let timer = obs.as_ref().map(|_| StageTimer::start());
            match shard.in_park.park((header.clone(), payload), now_us) {
                Ok(()) => {
                    if let (Some(reg), Some(timer)) = (obs.as_ref(), timer) {
                        reg.observe_stage(Stage::Park, timer.elapsed_ns());
                    }
                    let queued = shard.in_park.len() as u32;
                    record(obs, Event::Parked { queued });
                    if let Some(sfl) = sfl {
                        trace_span(
                            obs,
                            sfl,
                            header.dst,
                            SpanKind::Parked,
                            now_us,
                            queued as u64,
                        );
                    }
                    HookOutcome::Park
                }
                Err((_, payload)) => {
                    ctx.put(payload);
                    record(obs, Event::ParkOverflow);
                    shared.stats.input_errors.fetch_add(1, Ordering::Relaxed);
                    record(
                        obs,
                        Event::HookExit {
                            dir: Direction::Input,
                            ok: false,
                        },
                    );
                    HookOutcome::Reject(format!("park queue full: {e}"))
                }
            }
        }
        Err(e) => {
            ctx.put(payload);
            if e.is_key_unavailable() {
                shared.stats.fail_closed.fetch_add(1, Ordering::Relaxed);
                record(
                    obs,
                    Event::Degraded {
                        dir: Direction::Input,
                        open: false,
                    },
                );
            }
            shared.stats.input_errors.fetch_add(1, Ordering::Relaxed);
            record(
                obs,
                Event::HookExit {
                    dir: Direction::Input,
                    ok: false,
                },
            );
            HookOutcome::Reject(e.to_string())
        }
    }
}

/// Refresh worker `w`'s cached parking depths from its owned shards,
/// and mirror its shards' budget ledgers into the `mem.shard.<i>.*`
/// gauges while we are here (same cadence: once per finished sub-batch
/// or control action, never per datagram).
fn refresh_park_depths(shared: &HookShared, w: usize, shards: &[Shard]) {
    let mut out = 0usize;
    let mut inp = 0usize;
    for s in shards {
        out += s.out_park.len();
        inp += s.in_park.len();
    }
    shared.park_depths[w].out.store(out, Ordering::Release);
    shared.park_depths[w].inp.store(inp, Ordering::Release);
    refresh_shard_mem(shared, w);
}

/// Publish worker `w`'s shard budget ledgers as per-shard memory gauges.
fn refresh_shard_mem(shared: &HookShared, w: usize) {
    let Some(reg) = shared.obs_handle() else {
        return;
    };
    let mut si = w;
    while si < shared.n_shards {
        let snap = shared.budgets[si].snapshot();
        reg.set_shard_mem(
            si,
            ShardMemSample {
                tfkc_bytes: snap.tfkc_bytes,
                rfkc_bytes: snap.rfkc_bytes,
                mkc_bytes: snap.mkc_bytes,
                fam_bytes: snap.fam_bytes,
                limit_bytes: snap.limit_bytes,
                exceeded: snap.exceeded_events,
            },
        );
        si += shared.n_workers;
    }
}

/// Suite-labelled crypto counter: which profile sealed/opened the
/// datagram.
fn suite_counter(suite: CipherSuite, dir: Direction) -> Counter {
    match (dir, suite) {
        (Direction::Output, CipherSuite::Paper) => Counter::SealSuitePaper,
        (Direction::Output, CipherSuite::FastDes) => Counter::SealSuiteFastDes,
        (Direction::Output, CipherSuite::AeadChaPoly) => Counter::SealSuiteAead,
        (Direction::Input, CipherSuite::Paper) => Counter::OpenSuitePaper,
        (Direction::Input, CipherSuite::FastDes) => Counter::OpenSuiteFastDes,
        (Direction::Input, CipherSuite::AeadChaPoly) => Counter::OpenSuiteAead,
    }
}

/// Deferred-verification bookkeeping for one tentatively-passed input
/// datagram: which reply slot to flip if batch verification fails, and
/// which shard's codec accounts for the outcome.
struct DeferredOpen {
    /// Index into the current sub-batch's `done` list.
    done_idx: usize,
    /// Local shard index (`si / W`) whose codec opened the datagram.
    shard_local: usize,
    /// Recovered body length, accounted on pass.
    bytes: u64,
}

/// Per-worker batch-authentication state: the MABS-style deferred MAC
/// comparisons of a sub-batch, resolved with one fold (bisection on a
/// dirty fold) before the reply ships. The verifier and scratch vectors
/// are retained across sub-batches, so steady-state resolution
/// allocates nothing.
#[derive(Default)]
struct BatchAuth {
    verifier: BatchVerifier,
    deferred: Vec<DeferredOpen>,
    failed: Vec<usize>,
}

/// Resolve every deferred MAC comparison of the current sub-batch:
/// one constant-time fold accepts the whole clean batch; a dirty fold
/// bisects, and each isolated failure flips its already-staged `Pass`
/// verdict to `Reject` (recycling the recovered body, so the buffer
/// ledger stays balanced). MUST run before the sub-batch's reply ships
/// — including on the quarantine path, or tentatively-passed datagrams
/// would escape unverified.
fn resolve_batch_auth(
    shared: &HookShared,
    shards: &[Shard],
    auth: &mut BatchAuth,
    cur: &mut CurrentSub,
    obs: &Option<Arc<MetricsRegistry>>,
) {
    if auth.verifier.is_empty() && auth.deferred.is_empty() {
        return;
    }
    let timer = obs.as_ref().map(|_| StageTimer::start());
    auth.failed.clear();
    let stats = auth.verifier.resolve(&mut auth.failed);
    for d in auth.deferred.drain(..) {
        let codec = &shards[d.shard_local].codec;
        let entry = &mut cur.done[d.done_idx];
        if !matches!(entry.2, HookOutcome::Pass(_)) {
            // A supervised panic struck between the tag enqueue and the
            // verdict push: the item already carries the supervisor's
            // Reject, nothing to account here.
            continue;
        }
        if auth.failed.contains(&d.done_idx) {
            codec.note_deferred_mac_drop();
            let old = std::mem::replace(
                &mut entry.2,
                HookOutcome::Reject("bad MAC (batch verify)".into()),
            );
            if let HookOutcome::Pass(body) = old {
                cur.recycle.push(body);
            }
            shared.stats.input_errors.fetch_add(1, Ordering::Relaxed);
            record(
                obs,
                Event::HookExit {
                    dir: Direction::Input,
                    ok: false,
                },
            );
        } else {
            codec.note_deferred_pass(d.bytes);
            shared.stats.verified.fetch_add(1, Ordering::Relaxed);
            record(
                obs,
                Event::HookExit {
                    dir: Direction::Input,
                    ok: true,
                },
            );
        }
    }
    if let Some(reg) = obs.as_ref() {
        reg.incr(Counter::BatchAuthResolutions);
        reg.add(Counter::BatchAuthChecked, stats.checked as u64);
        reg.add(Counter::BatchAuthFolds, stats.folds);
        reg.add(Counter::BatchAuthBisections, stats.bisections);
        reg.add(Counter::BatchAuthRejected, stats.rejected as u64);
        if let Some(timer) = timer {
            reg.observe_stage(Stage::BatchVerify, timer.elapsed_ns());
        }
    }
}

/// The sub-batch a worker is processing right now, with an explicit
/// cursor (`next`). The cursor lives OUTSIDE the panic boundary: when an
/// item panics mid-processing, the supervisor can see exactly which
/// datagram died, give it a `Reject` verdict plus replacement buffers,
/// and resume the remaining items — so one poisoned datagram costs one
/// verdict, never a batch or a worker.
struct CurrentSub {
    /// The lane this sub-batch arrived on (its reply goes back here).
    lane: Arc<Lane>,
    dir: Direction,
    now_us: u64,
    items: Vec<WorkItem>,
    /// Index of the first unprocessed item.
    next: usize,
    /// `supplies.len()` as of the start of the item at `next` — the
    /// difference after an unwind is the number of supply buffers the
    /// dying item consumed and the unwind freed.
    supply_mark: usize,
    supplies: Vec<Vec<u8>>,
    done: Vec<DoneItem>,
    recycle: Vec<Vec<u8>>,
}

/// Everything a worker owns across panic-supervision boundaries. Held
/// by `worker_main` outside `catch_unwind`, so a supervised panic never
/// loses shard state, the in-flight sub-batch, or buffers staged for
/// recycling.
struct WorkerState {
    shards: Vec<Shard>,
    lanes: Vec<Arc<Lane>>,
    seen_epoch: u64,
    current: Option<CurrentSub>,
    /// Buffers with no sub-batch to ride home on yet (e.g. park
    /// evictions during quarantine); appended to the next reply.
    pending_recycle: Vec<Vec<u8>>,
    /// Bumped per respawn; salts rebuilt shard seeds.
    generation: u64,
    /// Supervised respawns so far (compared against the policy budget).
    respawns: u32,
    /// Deferred MAC comparisons for the current sub-batch. Lives here —
    /// outside the panic boundary — so a supervised panic never loses
    /// pending tags: they resolve when the sub-batch finishes or is
    /// quarantine-rejected.
    auth: BatchAuth,
}

/// Stage a freshly popped sub-batch as the worker's current work.
fn begin_current(state: &mut WorkerState, lane: &Arc<Lane>, sub: SubBatch) {
    let SubBatch {
        dir,
        now_us,
        items,
        supplies,
        mut done,
        mut recycle,
    } = sub;
    done.clear();
    done.reserve(items.len());
    recycle.clear();
    state.current = Some(CurrentSub {
        lane: Arc::clone(lane),
        dir,
        now_us,
        items,
        next: 0,
        supply_mark: supplies.len(),
        supplies,
        done,
        recycle,
    });
}

/// Run the current sub-batch to completion against the worker's owned
/// shards and ship the reply. Shard `si` lives at local index `si / W`
/// (the partition stage only routes `si ≡ w (mod W)` here). Unused
/// supplies ride home on the recycle list so the producer's pool ledger
/// stays balanced. Processing happens IN PLACE on `state.current`: if an
/// item panics, the unwind leaves the cursor and every untouched buffer
/// intact for the supervisor.
fn run_current(shared: &HookShared, w: usize, state: &mut WorkerState) {
    let WorkerState {
        shards,
        current,
        pending_recycle,
        auth,
        ..
    } = state;
    let Some(cur) = current.as_mut() else {
        return;
    };
    // Chaos taps come first, so an injected panic unwinds with the
    // cursor at the first unprocessed item — the supervisor then pays
    // exactly one Reject for it. Stalls are wall-clock sleeps: they add
    // latency (visible in stage spans) but touch no virtual-time
    // counter, keeping seeded runs byte-identical.
    if let Some(chaos) = (*shared.chaos.load()).clone() {
        let stall = chaos
            .take_stall_us(w, cur.now_us)
            .min(MAX_INJECTED_STALL_US);
        if stall > 0 {
            std::thread::sleep(Duration::from_micros(stall));
        }
        if chaos.take_panic(w, cur.now_us) {
            panic!("injected worker panic (chaos)");
        }
    }
    let cfg = shared.cfg.load();
    let obs = shared.obs_handle();
    let busy = obs.as_ref().map(|_| StageTimer::start());
    if let Some(reg) = &obs {
        reg.incr(Counter::WorkerBatches);
    }
    {
        let CurrentSub {
            dir,
            now_us,
            items,
            next,
            supply_mark,
            supplies,
            done,
            recycle,
            ..
        } = cur;
        while *next < items.len() {
            *supply_mark = supplies.len();
            let (slot, si, header, payload, tuple) = &mut items[*next];
            let payload = std::mem::take(payload);
            let tuple = *tuple;
            let shard_local = *si / shared.n_workers;
            let shard = &mut shards[shard_local];
            let mut ctx = WorkerCtx {
                supplies: &mut *supplies,
                recycle: &mut *recycle,
            };
            // The item's verdict will land at this `done` index; the
            // deferred verifier uses it as the correlation token.
            let token = done.len();
            let outcome = match *dir {
                Direction::Output => output_item(
                    shared, shard, header, payload, tuple, &mut ctx, *now_us, &cfg, &obs,
                ),
                Direction::Input => input_item(
                    shared,
                    shard,
                    shard_local,
                    header,
                    payload,
                    &mut ctx,
                    *now_us,
                    &cfg,
                    token,
                    auth,
                    &obs,
                ),
            };
            done.push((*slot, header.clone(), outcome));
            *next += 1;
        }
    }
    // Deferred MAC comparisons resolve BEFORE the reply ships, so the
    // producer only ever sees final verdicts.
    resolve_batch_auth(shared, shards, auth, cur, &obs);
    let mut fin = current.take().expect("current sub-batch still staged");
    fin.items.clear();
    fin.recycle.append(&mut fin.supplies);
    fin.recycle.append(pending_recycle);
    refresh_park_depths(shared, w, shards);
    if let (Some(reg), Some(busy)) = (obs.as_ref(), busy) {
        reg.worker_busy(w, busy.elapsed_ns());
    }
    let lane = Arc::clone(&fin.lane);
    push_reply(
        &lane,
        w,
        SubReply {
            done: fin.done,
            recycle: fin.recycle,
            items: fin.items,
            supplies: fin.supplies,
        },
    );
}

/// Post-panic cleanup for the item the unwind interrupted: give it a
/// `Reject` verdict and rebalance the buffer ledger. The item's payload
/// (and any supplies it popped) were freed by the unwind, so replacement
/// buffers of the pool's standard capacity ride the recycle list home —
/// the producer's pool only counts buffers, not identities.
fn abort_current_item(state: &mut WorkerState) {
    let Some(cur) = state.current.as_mut() else {
        return;
    };
    if cur.next < cur.items.len() {
        let (slot, _si, header, payload, _tuple) = &mut cur.items[cur.next];
        let taken = std::mem::take(payload);
        if taken.capacity() == 0 {
            // The unwind freed the real payload mid-item: replace it.
            cur.recycle
                .push(Vec::with_capacity(fbs_core::pool::DEFAULT_BUF_CAPACITY));
        } else {
            // The panic struck before the item's payload was taken
            // (e.g. an injected panic at sub-batch entry): the original
            // buffer is intact, recycle it directly.
            cur.recycle.push(taken);
        }
        cur.done.push((
            *slot,
            header.clone(),
            HookOutcome::Reject("worker panicked mid-datagram".into()),
        ));
        cur.next += 1;
    }
    let lost = cur.supply_mark.saturating_sub(cur.supplies.len());
    for _ in 0..lost {
        cur.recycle
            .push(Vec::with_capacity(fbs_core::pool::DEFAULT_BUF_CAPACITY));
    }
    cur.supply_mark = cur.supplies.len();
}

/// Reject every remaining item of the current sub-batch (quarantine
/// path) and ship the reply so the producer unblocks with a complete
/// verdict set and a balanced buffer ledger. Deferred MAC comparisons
/// from items processed BEFORE the quarantine still resolve here —
/// their tentative `Pass` verdicts would otherwise ship unverified.
fn reject_all_current(shared: &HookShared, w: usize, state: &mut WorkerState) {
    let WorkerState {
        shards,
        current,
        pending_recycle,
        auth,
        ..
    } = state;
    let Some(cur) = current.as_mut() else {
        return;
    };
    let obs = shared.obs_handle();
    resolve_batch_auth(shared, shards, auth, cur, &obs);
    let from = cur.next;
    for (slot, _si, header, payload, _tuple) in cur.items.drain(from..) {
        cur.recycle.push(payload);
        cur.done.push((
            slot,
            header,
            HookOutcome::Reject("worker quarantined after panic".into()),
        ));
    }
    let mut fin = current.take().expect("current sub-batch still staged");
    fin.items.clear();
    fin.recycle.append(&mut fin.supplies);
    fin.recycle.append(pending_recycle);
    let lane = Arc::clone(&fin.lane);
    push_reply(
        &lane,
        w,
        SubReply {
            done: fin.done,
            recycle: fin.recycle,
            items: fin.items,
            supplies: fin.supplies,
        },
    );
}

/// Rebuild every shard this worker owns after a supervised panic. Hard
/// state that cannot be trusted (FAM/FST rows, flow-key caches, codec
/// confounder positions) is discarded — it is all soft state by design
/// (§5.3) and re-warms through normal misses. Parked datagrams are NOT
/// soft state (they are caller data) and survive the rebuild; their
/// deadlines keep ticking in the carried-over queues.
fn rebuild_shards(shared: &HookShared, w: usize, state: &mut WorkerState) {
    state.generation += 1;
    let obs = shared.obs_handle();
    let old = std::mem::take(&mut state.shards);
    for (local, old_shard) in old.into_iter().enumerate() {
        let si = w + local * shared.n_workers;
        let mut fresh = shared.build_shard(si, state.generation);
        fresh.out_park = old_shard.out_park;
        fresh.in_park = old_shard.in_park;
        if let Some(reg) = &obs {
            cascade_obs(&mut fresh, reg);
        }
        state.shards.push(fresh);
    }
    refresh_park_depths(shared, w, &state.shards);
}

/// Push a reply to the producer, then wake it. The reply ring can hold
/// as many sub-batches as the ingress ring, so this never blocks in the
/// steady protocol; the spin is a defensive fallback.
fn push_reply(lane: &Lane, w: usize, mut reply: SubReply) {
    loop {
        match lane.from_worker[w].try_push(reply) {
            Ok(()) => break,
            Err(back) => {
                reply = back;
                std::thread::yield_now();
            }
        }
    }
    if let Some(t) = lane.producer.lock().as_ref() {
        t.unpark();
    }
}

/// Park release loop for one worker's owned shards (output direction):
/// expire the overdue, then retry protection for the rest — skipping
/// (and re-parking) everything headed for a peer whose circuit breaker
/// would fast-fail, so a wall of parked traffic cannot hammer a
/// known-broken keying path. Returns released datagrams plus consumed
/// buffers for the caller's pool; retries draw fresh buffers (the
/// control plane ships no supplies — releases are rare).
fn release_output_worker(shared: &HookShared, shards: &mut [Shard], now_us: u64) -> ReleasedBatch {
    let cfg = shared.cfg.load();
    let obs = shared.obs_handle();
    let mut ready = Vec::new();
    let mut recycle = Vec::new();
    let mut supplies: Vec<Vec<u8>> = Vec::new();
    let timer = obs.as_ref().map(|_| StageTimer::start());
    let mut did_work = false;
    for shard in shards.iter_mut() {
        for expired in shard.out_park.take_expired(now_us) {
            let (_header, payload) = expired.item;
            recycle.push(payload);
            record(&obs, Event::ParkExpired);
            trace_note(&obs, "park_expired", "output", now_us, 0);
            did_work = true;
        }
        if shard.out_park.is_empty() {
            continue;
        }
        for entry in shard.out_park.take_all() {
            did_work = true;
            let Parked {
                item: (mut header, payload),
                parked_at_us,
                deadline_us,
            } = entry;
            let peer = Principal::from_ipv4(header.dst);
            if shared.keying.would_fast_fail(&peer) {
                if let Err((_, payload)) = shard.out_park.repark(Parked {
                    item: (header, payload),
                    parked_at_us,
                    deadline_us,
                }) {
                    recycle.push(payload);
                    record(&obs, Event::ParkOverflow);
                }
                continue;
            }
            let tuple = tuple_for(&header, &payload);
            let res = {
                let mut ctx = WorkerCtx {
                    supplies: &mut supplies,
                    recycle: &mut recycle,
                };
                protect(
                    shared,
                    shard,
                    &mut header,
                    &payload,
                    tuple,
                    &mut ctx,
                    now_us,
                    &cfg,
                    &obs,
                )
            };
            match res {
                Ok(protected) => {
                    let waited_us = shard.out_park.note_released(parked_at_us, now_us);
                    shared.stats.protected.fetch_add(1, Ordering::Relaxed);
                    record(&obs, Event::ParkReleased { waited_us });
                    record(
                        &obs,
                        Event::HookExit {
                            dir: Direction::Output,
                            ok: true,
                        },
                    );
                    // The sealed payload leads with the sfl the flow
                    // finally resolved to — the released trace span
                    // joins the flow the park had no identity for.
                    if let Some(sfl) = wire_sfl(&protected) {
                        trace_span(&obs, sfl, header.src, SpanKind::Released, now_us, waited_us);
                    }
                    recycle.push(payload);
                    ready.push((header, protected));
                }
                Err(e) if e.is_key_unavailable() => {
                    // Still no key: back to the queue with the original
                    // deadline (drops at expiry, never grows unbounded).
                    // protect only borrowed the payload, so it is still
                    // owned here.
                    trace_note(&obs, "reparked", "output", now_us, 0);
                    if let Err((_, payload)) = shard.out_park.repark(Parked {
                        item: (header, payload),
                        parked_at_us,
                        deadline_us,
                    }) {
                        recycle.push(payload);
                        record(&obs, Event::ParkOverflow);
                    }
                }
                Err(_) => {
                    shared.stats.output_errors.fetch_add(1, Ordering::Relaxed);
                    record(
                        &obs,
                        Event::HookExit {
                            dir: Direction::Output,
                            ok: false,
                        },
                    );
                    recycle.push(payload);
                }
            }
        }
    }
    if did_work {
        if let (Some(reg), Some(timer)) = (obs.as_ref(), timer) {
            reg.observe_stage(Stage::Release, timer.elapsed_ns());
        }
    }
    recycle.append(&mut supplies);
    (ready, recycle)
}

/// Park release loop for parked input datagrams, mirroring
/// [`release_output_worker`] with the peer taken from the source
/// address; the consumed wire payload of every verified release is
/// recycled.
fn release_input_worker(shared: &HookShared, shards: &mut [Shard], now_us: u64) -> ReleasedBatch {
    let obs = shared.obs_handle();
    let mut ready = Vec::new();
    let mut recycle = Vec::new();
    let mut supplies: Vec<Vec<u8>> = Vec::new();
    let timer = obs.as_ref().map(|_| StageTimer::start());
    let mut did_work = false;
    // Park release is a slow path: deferred comparisons resolve
    // immediately as batches of one, reusing one scratch verifier.
    let mut auth = BatchAuth::default();
    for (shard_local, shard) in shards.iter_mut().enumerate() {
        for expired in shard.in_park.take_expired(now_us) {
            let (header, payload) = expired.item;
            if let Some(sfl) = wire_sfl(&payload) {
                trace_span(&obs, sfl, header.dst, SpanKind::Expired, now_us, 0);
            }
            recycle.push(payload);
            record(&obs, Event::ParkExpired);
            did_work = true;
        }
        if shard.in_park.is_empty() {
            continue;
        }
        for entry in shard.in_park.take_all() {
            did_work = true;
            let Parked {
                item: (mut header, payload),
                parked_at_us,
                deadline_us,
            } = entry;
            let peer = Principal::from_ipv4(header.src);
            if shared.keying.would_fast_fail(&peer) {
                if let Err((_, payload)) = shard.in_park.repark(Parked {
                    item: (header, payload),
                    parked_at_us,
                    deadline_us,
                }) {
                    recycle.push(payload);
                    record(&obs, Event::ParkOverflow);
                }
                continue;
            }
            let res = {
                let mut ctx = WorkerCtx {
                    supplies: &mut supplies,
                    recycle: &mut recycle,
                };
                verify(
                    shared,
                    shard,
                    shard_local,
                    &mut header,
                    &payload,
                    &mut ctx,
                    0,
                    &mut auth,
                    &obs,
                )
            };
            match res {
                Ok((body, deferred)) => {
                    if deferred {
                        auth.failed.clear();
                        auth.deferred.clear();
                        auth.verifier.resolve(&mut auth.failed);
                        if !auth.failed.is_empty() {
                            shard.codec.note_deferred_mac_drop();
                            shared.stats.input_errors.fetch_add(1, Ordering::Relaxed);
                            record(
                                &obs,
                                Event::HookExit {
                                    dir: Direction::Input,
                                    ok: false,
                                },
                            );
                            recycle.push(payload);
                            recycle.push(body);
                            continue;
                        }
                        shard.codec.note_deferred_pass(body.len() as u64);
                    }
                    let waited_us = shard.in_park.note_released(parked_at_us, now_us);
                    shared.stats.verified.fetch_add(1, Ordering::Relaxed);
                    record(&obs, Event::ParkReleased { waited_us });
                    record(
                        &obs,
                        Event::HookExit {
                            dir: Direction::Input,
                            ok: true,
                        },
                    );
                    if let Some(sfl) = wire_sfl(&payload) {
                        trace_span(&obs, sfl, header.dst, SpanKind::Released, now_us, waited_us);
                    }
                    recycle.push(payload);
                    ready.push((header, body));
                }
                Err(e) if e.is_key_unavailable() => {
                    if let Some(sfl) = wire_sfl(&payload) {
                        trace_span(&obs, sfl, header.dst, SpanKind::Reparked, now_us, 0);
                    }
                    if let Err((_, payload)) = shard.in_park.repark(Parked {
                        item: (header, payload),
                        parked_at_us,
                        deadline_us,
                    }) {
                        recycle.push(payload);
                        record(&obs, Event::ParkOverflow);
                    }
                }
                Err(_) => {
                    shared.stats.input_errors.fetch_add(1, Ordering::Relaxed);
                    record(
                        &obs,
                        Event::HookExit {
                            dir: Direction::Input,
                            ok: false,
                        },
                    );
                    recycle.push(payload);
                }
            }
        }
    }
    if did_work {
        if let (Some(reg), Some(timer)) = (obs.as_ref(), timer) {
            reg.observe_stage(Stage::Release, timer.elapsed_ns());
        }
    }
    recycle.append(&mut supplies);
    (ready, recycle)
}

/// Reload the worker's lane snapshot if the registry epoch moved.
fn reload_lanes(shared: &HookShared, state: &mut WorkerState) {
    let epoch = shared.lanes_epoch.load(Ordering::Acquire);
    if epoch != state.seen_epoch {
        state.seen_epoch = epoch;
        state.lanes.clear();
        state
            .lanes
            .extend(shared.lanes_snapshot.load().iter().cloned());
    }
}

/// Handle one control-plane message on the worker thread. A quarantined
/// worker still answers everything — statistics, flushes, and drains
/// stay observable — but drained sub-batches get rejected rather than
/// processed (its shard state is no longer trusted).
fn handle_control(
    shared: &HookShared,
    w: usize,
    state: &mut WorkerState,
    msg: Control,
    quarantined: bool,
) {
    match msg {
        Control::AttachObs(reg, ack) => {
            for s in state.shards.iter_mut() {
                cascade_obs(s, &reg);
            }
            let _ = ack.send(());
        }
        Control::FlushKeys(ack) => {
            for s in state.shards.iter_mut() {
                s.tfkc.clear();
                s.rfkc.clear();
                if let Some(t) = &mut s.combined {
                    t.clear();
                }
            }
            let _ = ack.send(());
        }
        Control::Occupancy(now_secs, reply) => {
            let rows = state
                .shards
                .iter()
                .enumerate()
                .map(|(idx, s)| {
                    let active = match &s.combined {
                        Some(c) => c.active_flows(now_secs),
                        None => s.fam.active_flows(now_secs),
                    };
                    (w + idx * shared.n_workers, active)
                })
                .collect();
            let _ = reply.send(rows);
        }
        Control::ParkStats(reply) => {
            let mut out = ParkStats::default();
            let mut inp = ParkStats::default();
            for s in state.shards.iter() {
                for (sum, st) in [
                    (&mut out, s.out_park.stats()),
                    (&mut inp, s.in_park.stats()),
                ] {
                    sum.parked += st.parked;
                    sum.released += st.released;
                    sum.expired += st.expired;
                    sum.overflow += st.overflow;
                    sum.peak_depth = sum.peak_depth.max(st.peak_depth);
                }
            }
            let _ = reply.send((out, inp));
        }
        Control::Release { dir, now_us, reply } => {
            let result = match dir {
                Direction::Output => release_output_worker(shared, &mut state.shards, now_us),
                Direction::Input => release_input_worker(shared, &mut state.shards, now_us),
            };
            refresh_park_depths(shared, w, &state.shards);
            let _ = reply.send(result);
        }
        Control::Drain(ack) => {
            reload_lanes(shared, state);
            for li in 0..state.lanes.len() {
                let lane = Arc::clone(&state.lanes[li]);
                while let Some(sub) = lane.to_worker[w].try_pop() {
                    begin_current(state, &lane, sub);
                    if quarantined {
                        reject_all_current(shared, w, state);
                    } else {
                        run_current(shared, w, state);
                    }
                }
            }
            let _ = ack.send(());
        }
    }
}

/// One supervised pass structure: the run-to-completion worker loop.
/// Drains the control mailbox, reloads the lane snapshot when its epoch
/// moved, drains every ingress ring, and spins/parks when idle. Returns
/// (instead of breaking out of `worker_main`) only when `shutdown` is
/// set AND a full pass found nothing to do — so every buffered sub-batch
/// is processed before the thread dies (drain-then-shutdown). A panic
/// anywhere inside unwinds to the supervisor in `worker_main` with
/// `state` intact.
fn worker_loop(
    shared: &HookShared,
    w: usize,
    state: &mut WorkerState,
    ctl: &mpsc::Receiver<Control>,
) {
    let mut idle = 0u32;
    loop {
        let mut did_work = false;
        // A sub-batch interrupted by a supervised panic finishes before
        // anything new is taken on — its producer is still parked on the
        // reply.
        if state.current.is_some() {
            run_current(shared, w, state);
            did_work = true;
        }
        while let Ok(msg) = ctl.try_recv() {
            handle_control(shared, w, state, msg, false);
            did_work = true;
        }
        reload_lanes(shared, state);
        for li in 0..state.lanes.len() {
            let lane = Arc::clone(&state.lanes[li]);
            while let Some(sub) = lane.to_worker[w].try_pop() {
                begin_current(state, &lane, sub);
                run_current(shared, w, state);
                did_work = true;
            }
        }
        if did_work {
            idle = 0;
            continue;
        }
        if shared.shutdown.load(Ordering::Acquire) {
            return;
        }
        idle += 1;
        if idle < 64 {
            std::thread::yield_now();
        } else {
            std::thread::park_timeout(Duration::from_millis(1));
        }
    }
}

/// Fail-closed terminal mode: keep the thread (and its mailbox, rings,
/// and buffer ledger) alive, but reject every datagram. Parked datagrams
/// are evicted up front — their keys will never arrive on a worker that
/// stopped processing — and their buffers ride the next reply home.
fn quarantine(
    shared: &HookShared,
    w: usize,
    state: &mut WorkerState,
    ctl: &mpsc::Receiver<Control>,
) {
    shared.quarantined[w].store(true, Ordering::Release);
    // Finish (by rejecting) any sub-batch the panic interrupted, so its
    // producer unblocks with a complete verdict set.
    reject_all_current(shared, w, state);
    for shard in state.shards.iter_mut() {
        for p in shard.out_park.take_all() {
            state.pending_recycle.push(p.item.1);
        }
        for p in shard.in_park.take_all() {
            state.pending_recycle.push(p.item.1);
        }
    }
    refresh_park_depths(shared, w, &state.shards);
    let mut idle = 0u32;
    loop {
        let mut did_work = false;
        while let Ok(msg) = ctl.try_recv() {
            handle_control(shared, w, state, msg, true);
            did_work = true;
        }
        reload_lanes(shared, state);
        for li in 0..state.lanes.len() {
            let lane = Arc::clone(&state.lanes[li]);
            while let Some(sub) = lane.to_worker[w].try_pop() {
                begin_current(state, &lane, sub);
                reject_all_current(shared, w, state);
                did_work = true;
            }
        }
        if did_work {
            idle = 0;
            continue;
        }
        if shared.shutdown.load(Ordering::Acquire) {
            return;
        }
        idle += 1;
        if idle < 64 {
            std::thread::yield_now();
        } else {
            std::thread::park_timeout(Duration::from_millis(1));
        }
    }
}

/// Worker thread entry point: run [`worker_loop`] under in-thread panic
/// supervision. Catching the unwind HERE — rather than letting the
/// thread die and respawning a new one — keeps every externally visible
/// invariant intact across a panic: the SPSC consumer identity, the
/// control mailbox, the parked thread handle, and `workers_alive` (which
/// therefore only moves on real shutdown, making it a meaningful
/// liveness gate). Respawn is a rebuild of shard state inside the same
/// thread; quarantine is a mode switch, not an exit.
fn worker_main(
    shared: Arc<HookShared>,
    w: usize,
    shards: Vec<Shard>,
    ctl: mpsc::Receiver<Control>,
) {
    /// Decrements `workers_alive` even on an unsupervised death, so a
    /// stuck producer detects it instead of spinning forever.
    struct Alive<'a>(&'a HookShared);
    impl Drop for Alive<'_> {
        fn drop(&mut self) {
            self.0.workers_alive.fetch_sub(1, Ordering::AcqRel);
        }
    }
    let _alive = Alive(&shared);
    let mut state = WorkerState {
        shards,
        lanes: Vec::new(),
        seen_epoch: u64::MAX,
        current: None,
        pending_recycle: Vec::new(),
        generation: 0,
        respawns: 0,
        auth: BatchAuth::default(),
    };
    loop {
        // AssertUnwindSafe: `state` lives outside the boundary by
        // design — the supervisor's whole job is to repair the
        // potentially inconsistent pieces (the current item's buffers
        // via `abort_current_item`, shard state via `rebuild_shards`)
        // before anyone observes them.
        match catch_unwind(AssertUnwindSafe(|| {
            worker_loop(&shared, w, &mut state, &ctl)
        })) {
            Ok(()) => break,
            Err(_payload) => {
                shared.worker_panics.fetch_add(1, Ordering::Relaxed);
                let obs = shared.obs_handle();
                if let Some(reg) = &obs {
                    reg.worker_panic(w);
                }
                abort_current_item(&mut state);
                let respawn = match shared.cfg.load().worker_fault {
                    WorkerFaultPolicy::Respawn { max_respawns } => state.respawns < max_respawns,
                    WorkerFaultPolicy::FailClosed => false,
                };
                if respawn {
                    state.respawns += 1;
                    shared.worker_respawns.fetch_add(1, Ordering::Relaxed);
                    if let Some(reg) = &obs {
                        reg.incr(Counter::WorkerRespawns);
                    }
                    rebuild_shards(&shared, w, &mut state);
                    // Loop back under a fresh unwind boundary; the
                    // interrupted sub-batch (cursor already advanced
                    // past the poisoned item) finishes first.
                } else {
                    quarantine(&shared, w, &mut state, &ctl);
                    break;
                }
            }
        }
    }
}

/// Joins the worker threads when the LAST handle drops: sets `shutdown`,
/// wakes everyone, and waits. Workers drain their rings before exiting,
/// so no buffered datagram is lost to shutdown. Held by every handle via
/// `Arc`; workers themselves hold only `Arc<HookShared>` (no cycle).
struct RuntimeOwner {
    shared: Arc<HookShared>,
    joins: Mutex<Vec<std::thread::JoinHandle<()>>>,
}

impl Drop for RuntimeOwner {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::Release);
        self.shared.wake_all();
        for j in self.joins.get_mut().drain(..) {
            if j.join().is_err() {
                // An unsupervised worker death (a panic that escaped
                // the in-thread supervisor). Swallow the payload — a
                // panic in Drop would abort the dropping thread — and
                // keep the count observable.
                self.shared.worker_panics.fetch_add(1, Ordering::Relaxed);
                if let Some(reg) = self.shared.obs_handle().as_ref() {
                    reg.incr(Counter::WorkerPanics);
                }
            }
        }
    }
}

/// Per-handle reusable batch buffers: cleared-but-kept between
/// [`SecurityHooks::process_batch`] calls, with sub-batch vectors
/// round-tripping through the workers, so steady-state batching does
/// not allocate. Never shared — each clone starts its own (empty) set.
#[derive(Default)]
struct Scratch {
    items: Vec<Vec<WorkItem>>,
    supplies: Vec<Vec<Vec<u8>>>,
    done_spares: Vec<Vec<DoneItem>>,
    recycle_spares: Vec<Vec<Vec<u8>>>,
    slots: Vec<Option<(Ipv4Header, HookOutcome)>>,
    /// Submission-order header copies, so a slot whose sub-batch is
    /// stranded in a dead worker's ring can still be failed closed with
    /// its real header (plain-old-data copy, no allocation).
    headers: Vec<Ipv4Header>,
}

/// FBS security hooks for an IP-like stack. Cheaply cloneable: clones
/// share all flow state and the worker runtime, so keep a handle for
/// statistics after installing one into a [`fbs_net::Host`] — and clones
/// may be driven from different threads; each gets its own SPSC lane
/// into the shared workers.
pub struct FbsIpHooks {
    shared: Arc<HookShared>,
    owner: Arc<RuntimeOwner>,
    lane: Option<Arc<Lane>>,
    scratch: Scratch,
}

impl Clone for FbsIpHooks {
    fn clone(&self) -> Self {
        FbsIpHooks {
            shared: Arc::clone(&self.shared),
            owner: Arc::clone(&self.owner),
            lane: None,
            scratch: Scratch::default(),
        }
    }
}

impl Drop for FbsIpHooks {
    fn drop(&mut self) {
        if let Some(lane) = self.lane.take() {
            let mut reg = self.shared.lanes.lock();
            reg.retain(|l| !Arc::ptr_eq(l, &lane));
            self.shared.lanes_snapshot.store(Arc::new(reg.clone()));
            self.shared.lanes_epoch.fetch_add(1, Ordering::Release);
        }
    }
}

impl FbsIpHooks {
    /// Wrap an FBS endpoint in IP-mapping hooks. `sfl_seed` randomises the
    /// sfl counters' initial values (§5.3). The endpoint is decomposed:
    /// its MKD moves into the shared [`KeyingService`], and each shard
    /// gets its own [`FlowCodec`] and full-geometry table slices. Spawns
    /// the `workers` shard-owning threads; they are joined when the last
    /// clone of the returned handle drops.
    pub fn new(endpoint: FbsEndpoint, cfg: IpMappingConfig, sfl_seed: u64) -> Self {
        let (local, ep_cfg, clock, seed, mkd) = endpoint.into_keying_parts();
        let mut cfg = cfg;
        let n = cfg.shards.max(1).next_power_of_two();
        cfg.shards = n;
        let workers = cfg.workers.clamp(1, n);
        cfg.workers = workers;
        cfg.ring_depth = cfg.ring_depth.max(1);
        let ring_depth = cfg.ring_depth;
        let budget_bytes = cfg.shard_budget_bytes;
        let keying = KeyingService::new(mkd, ep_cfg.mkc_slots, n);
        let mut controls = Vec::with_capacity(workers);
        let mut receivers = Vec::with_capacity(workers);
        for _ in 0..workers {
            let (tx, rx) = mpsc::channel();
            controls.push(Mutex::new(tx));
            receivers.push(rx);
        }
        let shared = Arc::new(HookShared {
            keying,
            local,
            clock,
            ep_cfg,
            codec_seed: seed,
            sfl_seed,
            cfg: Published::new(cfg),
            stats: AtomicHookStats::default(),
            endpoint_stats: Arc::new(fbs_core::AtomicEndpointStats::new()),
            tfkc_stats: Arc::new(AtomicCacheStats::new()),
            rfkc_stats: Arc::new(AtomicCacheStats::new()),
            combined_stats: Arc::new(AtomicCombinedStats::new()),
            ring_stalls: AtomicU64::new(0),
            shed_rejected: AtomicU64::new(0),
            shed_batches: AtomicU64::new(0),
            worker_panics: AtomicU64::new(0),
            worker_respawns: AtomicU64::new(0),
            quarantined: (0..workers).map(|_| AtomicBool::new(false)).collect(),
            chaos: Published::new(None),
            obs: Published::new(None),
            n_shards: n,
            n_workers: workers,
            ring_depth,
            lanes: Mutex::new(Vec::new()),
            lanes_snapshot: Published::new(Vec::new()),
            lanes_epoch: AtomicU64::new(0),
            shutdown: AtomicBool::new(false),
            workers_alive: AtomicUsize::new(workers),
            threads: OnceLock::new(),
            control: controls.into_boxed_slice(),
            park_depths: (0..workers).map(|_| ParkDepths::default()).collect(),
            budgets: (0..n)
                .map(|_| MemoryBudget::bounded(budget_bytes))
                .collect(),
        });
        // Worker w owns shards { si : si % workers == w }, stored at
        // local index si / workers. Generation 0: the same shards a
        // post-panic rebuild derives, so supervised respawns change
        // nothing but the soft-state seeds.
        let mut per_worker: Vec<Vec<Shard>> = (0..workers).map(|_| Vec::new()).collect();
        for i in 0..n {
            per_worker[i % workers].push(shared.build_shard(i, 0));
        }
        let mut joins = Vec::with_capacity(workers);
        let mut threads = Vec::with_capacity(workers);
        for (w, (shards, ctl)) in per_worker.into_iter().zip(receivers).enumerate() {
            let sh = Arc::clone(&shared);
            let handle = std::thread::Builder::new()
                .name(format!("fbs-worker-{w}"))
                .spawn(move || worker_main(sh, w, shards, ctl))
                .expect("spawn fbs worker thread");
            threads.push(handle.thread().clone());
            joins.push(handle);
        }
        shared
            .threads
            .set(threads.into_boxed_slice())
            .expect("worker threads set once");
        FbsIpHooks {
            shared: Arc::clone(&shared),
            owner: Arc::new(RuntimeOwner {
                shared,
                joins: Mutex::new(joins),
            }),
            lane: None,
            scratch: Scratch::default(),
        }
    }

    /// This handle's lane into the workers, lazily created and
    /// registered on first use.
    fn lane(&mut self) -> Arc<Lane> {
        if let Some(l) = &self.lane {
            return Arc::clone(l);
        }
        let lane = Arc::new(Lane::new(self.shared.n_workers, self.shared.ring_depth));
        {
            let mut reg = self.shared.lanes.lock();
            reg.push(Arc::clone(&lane));
            self.shared.lanes_snapshot.store(Arc::new(reg.clone()));
            self.shared.lanes_epoch.fetch_add(1, Ordering::Release);
        }
        self.lane = Some(Arc::clone(&lane));
        lane
    }

    /// Attach a metrics registry: the hooks emit entry/exit events, and
    /// the registry cascades into every shard's codec, FAM, combined
    /// table, and caches (via a control round-trip to each owning
    /// worker), plus the shared keying service.
    pub fn attach_obs(&self, registry: Arc<MetricsRegistry>) -> Result<(), RuntimeError> {
        self.shared.keying.attach_obs(Arc::clone(&registry));
        for w in 0..self.shared.n_workers {
            self.shared
                .control_roundtrip(w, |tx| Control::AttachObs(Arc::clone(&registry), tx))?;
        }
        self.shared.obs.store(Arc::new(Some(registry)));
        Ok(())
    }

    /// Publish a modified configuration snapshot (swap-on-update): in-
    /// flight batches finish under the snapshot they loaded; the next
    /// batch sees the new one. Only policy-ish fields take effect —
    /// geometry (`shards`, `workers`, `ring_depth`, `fst_size`, cache
    /// dimensions, park capacity) is fixed at construction.
    pub fn update_config(&self, mutate: impl FnOnce(&mut IpMappingConfig)) {
        let mut next = (*self.shared.cfg.load()).clone();
        mutate(&mut next);
        self.shared.cfg.store(Arc::new(next));
    }

    /// Hook-level statistics — a lock-free atomic snapshot.
    pub fn stats(&self) -> IpHookStats {
        self.shared.stats.snapshot()
    }

    /// Endpoint statistics (sends, drops...) — lock-free.
    pub fn endpoint_stats(&self) -> EndpointStats {
        self.shared.endpoint_stats.snapshot()
    }

    /// TFKC statistics (separate path) — all zeros under `combined`.
    /// Lock-free.
    pub fn tfkc_stats(&self) -> fbs_core::CacheStats {
        self.shared.tfkc_stats.snapshot()
    }

    /// RFKC statistics — lock-free.
    pub fn rfkc_stats(&self) -> fbs_core::CacheStats {
        self.shared.rfkc_stats.snapshot()
    }

    /// MKD statistics (upcalls = master key computations) — lock-free.
    pub fn mkd_stats(&self) -> fbs_core::mkd::MkdStats {
        self.shared.keying.mkd_stats()
    }

    /// Combined-table statistics, when the §7.2 path is active.
    /// Lock-free.
    pub fn combined_stats(&self) -> Option<crate::combined::CombinedStats> {
        self.shared
            .cfg
            .load()
            .combined
            .then(|| self.shared.combined_stats.snapshot())
    }

    /// Number of flow-state shards (a power of two).
    pub fn num_shards(&self) -> usize {
        self.shared.n_shards
    }

    /// Number of shard-owning worker threads.
    pub fn num_workers(&self) -> usize {
        self.shared.n_workers
    }

    /// Times a batch found a worker's ingress ring full and had to
    /// stall — lock-free. The worker-runtime analogue of the old
    /// shard-lock contention counter.
    pub fn ring_stalls(&self) -> u64 {
        self.shared.ring_stalls.load(Ordering::Relaxed)
    }

    /// Per-shard active-flow occupancy at `now_secs` (a control
    /// round-trip to each worker — a control-plane reader, not a
    /// hot-path one).
    pub fn shard_occupancy(&self, now_secs: u64) -> Result<Vec<usize>, RuntimeError> {
        let mut occ = vec![0usize; self.shared.n_shards];
        for w in 0..self.shared.n_workers {
            let rows = self
                .shared
                .control_roundtrip(w, |tx| Control::Occupancy(now_secs, tx))?;
            for (si, active) in rows {
                occ[si] = active;
            }
        }
        Ok(occ)
    }

    /// Number of currently-active outgoing flows (sums the shards).
    pub fn active_flows(&self, now_secs: u64) -> Result<usize, RuntimeError> {
        Ok(self.shard_occupancy(now_secs)?.iter().sum())
    }

    /// Drop all flow-key soft state (TFKC, RFKC, and the combined
    /// FST/TFKC when present) — a mid-flow cache flush. Always safe:
    /// soft state is recomputed on demand (§5.3); the next datagram per
    /// flow pays a re-derivation.
    pub fn flush_flow_keys(&self) -> Result<(), RuntimeError> {
        for w in 0..self.shared.n_workers {
            self.shared.control_roundtrip(w, Control::FlushKeys)?;
        }
        Ok(())
    }

    /// Invalidate the cached master key for one peer (forces the next
    /// datagram to/from them through the MKD upcall).
    pub fn forget_peer(&self, peer: &Principal) {
        self.shared.keying.forget_peer(peer);
    }

    /// Force every worker to process anything buffered in its ingress
    /// rings, synchronously: after this returns, no datagram handed to
    /// `process_batch` is still queued inside the runtime. (The normal
    /// path never needs this — `process_batch` is synchronous — but it
    /// makes the drain-then-shutdown property directly testable.)
    pub fn drain(&self) -> Result<(), RuntimeError> {
        self.drain_with_deadline(Duration::from_secs(30))
    }

    /// [`Self::drain`] with an explicit wall-clock budget shared across
    /// all workers. A worker that cannot acknowledge within the budget
    /// (stalled, wedged, or dead) is reported in the error rather than
    /// hanging the caller forever.
    pub fn drain_with_deadline(&self, deadline: Duration) -> Result<(), RuntimeError> {
        let budget = Instant::now() + deadline;
        let mut pending = 0usize;
        for w in 0..self.shared.n_workers {
            let (tx, rx) = mpsc::channel();
            if self.shared.send_control(w, Control::Drain(tx)).is_err() {
                pending += 1;
                continue;
            }
            let left = budget.saturating_duration_since(Instant::now());
            if rx.recv_timeout(left).is_err() {
                pending += 1;
            }
        }
        if pending == 0 {
            Ok(())
        } else {
            Err(RuntimeError::DrainTimeout {
                pending_workers: pending,
            })
        }
    }

    /// Current (output, input) parking-queue depths, summed over the
    /// workers' cached per-shard totals — lock-free.
    pub fn parked_depths(&self) -> (usize, usize) {
        let mut out = 0;
        let mut inp = 0;
        for d in self.shared.park_depths.iter() {
            out += d.out.load(Ordering::Acquire);
            inp += d.inp.load(Ordering::Acquire);
        }
        (out, inp)
    }

    /// Accumulated (output, input) parking counters, summed over shards
    /// (a control round-trip to each worker).
    pub fn park_stats(&self) -> Result<(ParkStats, ParkStats), RuntimeError> {
        let mut out = ParkStats::default();
        let mut inp = ParkStats::default();
        for w in 0..self.shared.n_workers {
            let (o, i) = self.shared.control_roundtrip(w, Control::ParkStats)?;
            for (sum, s) in [(&mut out, o), (&mut inp, i)] {
                sum.parked += s.parked;
                sum.released += s.released;
                sum.expired += s.expired;
                sum.overflow += s.overflow;
                sum.peak_depth = sum.peak_depth.max(s.peak_depth);
            }
        }
        Ok((out, inp))
    }

    /// The MKD circuit breaker's state for `peer`, if resilience is
    /// configured and the peer has been keyed at least once.
    pub fn breaker_state(&self, peer: &Principal) -> Option<BreakerState> {
        self.shared.keying.breaker_state(peer)
    }

    /// Release loop shared by both directions: skip workers whose cached
    /// park depth is zero (the common case — one atomic load per worker
    /// per poll), otherwise run the release on the owning worker and
    /// recycle the consumed buffers.
    fn release_dir(
        &self,
        dir: Direction,
        now_us: u64,
        pool: &mut BufferPool,
    ) -> Vec<(Ipv4Header, Vec<u8>)> {
        let mut ready = Vec::new();
        for w in 0..self.shared.n_workers {
            let depths = &self.shared.park_depths[w];
            let depth = match dir {
                Direction::Output => depths.out.load(Ordering::Acquire),
                Direction::Input => depths.inp.load(Ordering::Acquire),
            };
            if depth == 0 {
                continue;
            }
            // A worker that cannot answer (unsupervised death) simply
            // contributes no releases this poll — the release loop is
            // best-effort by contract, so errors are skipped, not
            // propagated.
            let Ok((mut released, mut recycle)) = self
                .shared
                .control_roundtrip(w, |reply| Control::Release { dir, now_us, reply })
            else {
                continue;
            };
            ready.append(&mut released);
            pool.put_all(&mut recycle);
        }
        ready
    }

    /// Install (or clear) a deterministic worker-fault injector. Chaos
    /// only: every tap is on an already-slow or failure path, so the
    /// production hot path pays one published-pointer load per
    /// sub-batch.
    pub fn set_worker_chaos(&self, injector: Option<Arc<dyn WorkerFaultInjector>>) {
        self.shared.chaos.store(Arc::new(injector));
    }

    /// Worker-loop panics caught by the in-thread supervisors (plus any
    /// unsupervised deaths observed at join time) — lock-free.
    pub fn worker_panics(&self) -> u64 {
        self.shared.worker_panics.load(Ordering::Relaxed)
    }

    /// Supervised worker respawns (shard state rebuilt in place) —
    /// lock-free.
    pub fn worker_respawns(&self) -> u64 {
        self.shared.worker_respawns.load(Ordering::Relaxed)
    }

    /// Overload-shedding counters as `(rejected_datagrams,
    /// shed_sub_batches)` — lock-free.
    pub fn shed_counts(&self) -> (u64, u64) {
        (
            self.shared.shed_rejected.load(Ordering::Relaxed),
            self.shared.shed_batches.load(Ordering::Relaxed),
        )
    }

    /// Worker threads still running their loop. Quarantined workers
    /// count as alive (they answer control and reject traffic); only
    /// real thread exit — clean shutdown or an unsupervised death —
    /// moves this.
    pub fn workers_alive(&self) -> usize {
        self.shared.workers_alive.load(Ordering::Acquire)
    }

    /// Live soft-state memory pressure for health evaluation:
    /// `(worst_shard_used_bytes, per_shard_limit_bytes)`. The worst
    /// single shard (not a sum) for the same reason park depth is
    /// per-queue: one shard in an eviction storm matters even while its
    /// siblings are idle. `(_, 0)` means unbudgeted.
    pub fn mem_bytes(&self) -> (u64, u64) {
        let mut worst = 0u64;
        let mut limit = 0u64;
        for b in self.shared.budgets.iter() {
            worst = worst.max(b.used_bytes());
            limit = limit.max(b.limit_bytes());
        }
        (worst, limit)
    }

    /// Per-shard budget ledgers, indexed by shard — lock-free reads of
    /// the same atomics the owning workers charge.
    pub fn shard_budgets(&self) -> Vec<BudgetSnapshot> {
        self.shared.budgets.iter().map(|b| b.snapshot()).collect()
    }

    /// Number of workers currently quarantined (failing closed).
    pub fn quarantined_workers(&self) -> usize {
        self.shared
            .quarantined
            .iter()
            .filter(|q| q.load(Ordering::Acquire))
            .count()
    }

    /// Worst-case payload growth for the configured algorithms: the fixed
    /// header prefix, the (possibly truncated) MAC, and up to 7 bytes of
    /// DES block padding.
    fn overhead_of(cfg: &IpMappingConfig) -> usize {
        let mac_len = cfg.fbs.mac_truncate.unwrap_or(cfg.fbs.mac_alg.output_len());
        let padding = if cfg.encrypt { 7 } else { 0 };
        FIXED_PREFIX_LEN + mac_len + padding
    }
}

impl SecurityHooks for FbsIpHooks {
    fn covers(&self, proto: u8) -> bool {
        // The implementation covers TCP(our MRT) and UDP; the bypass
        // protocol always escapes FBS (Fig. 5). Raw IP is covered as
        // host-level flows only when the footnote-10 extension is on.
        match Proto::from_number(proto) {
            Proto::Mrt | Proto::Udp => true,
            Proto::Bypass => false,
            Proto::Other(_) => self.shared.cfg.load().cover_raw_ip,
        }
    }

    fn max_overhead(&self) -> usize {
        Self::overhead_of(&self.shared.cfg.load())
    }

    /// The single processing entry point (the scalar `output`/`input`
    /// trait defaults wrap it): partition the batch into per-worker
    /// sub-batches ONCE, ship them over this handle's SPSC lane with one
    /// supply buffer per datagram, then collect replies and re-thread
    /// the outcomes into submission order. Synchronous at batch
    /// granularity; acquires no shard lock anywhere.
    fn process_batch(
        &mut self,
        dir: Direction,
        batch: Vec<Datagram>,
        pool: &mut BufferPool,
        now_us: u64,
    ) -> Vec<(Ipv4Header, HookOutcome)> {
        if batch.is_empty() {
            return Vec::new();
        }
        let lane = self.lane();
        let shared = Arc::clone(&self.shared);
        let cfg_obs = shared.obs_handle();
        let obs = &cfg_obs;
        let n = shared.n_shards;
        let nw = shared.n_workers;
        let total = batch.len();
        let scratch = &mut self.scratch;
        if scratch.items.len() < nw {
            scratch.items.resize_with(nw, Vec::new);
        }
        if scratch.supplies.len() < nw {
            scratch.supplies.resize_with(nw, Vec::new);
        }
        let timer = obs.as_ref().map(|_| StageTimer::start());
        scratch.headers.clear();
        for (slot, dg) in batch.into_iter().enumerate() {
            let Datagram { header, payload } = dg;
            let (si, tuple) = match dir {
                Direction::Output => {
                    let tuple = tuple_for(&header, &payload);
                    (tx_shard(n, tuple.as_ref()), tuple)
                }
                Direction::Input => (rx_shard(n, &payload), None),
            };
            scratch.headers.push(header.clone());
            scratch.items[si % nw].push((slot, si, header, payload, tuple));
        }
        scratch.slots.clear();
        scratch.slots.resize_with(total, || None);
        if let (Some(reg), Some(timer)) = (obs.as_ref(), timer) {
            reg.observe_stage(Stage::Partition, timer.elapsed_ns());
        }
        // Register as this lane's producer so workers can unpark us when
        // a reply lands.
        *lane.producer.lock() = Some(std::thread::current());
        let timer = obs.as_ref().map(|_| StageTimer::start());
        let cfg = shared.cfg.load();
        let chaos = (*shared.chaos.load()).clone();
        let mut outstanding = 0usize;
        for w in 0..nw {
            if scratch.items[w].is_empty() {
                continue;
            }
            let items = std::mem::take(&mut scratch.items[w]);
            let mut supplies = std::mem::take(&mut scratch.supplies[w]);
            pool.take_n_into(items.len(), &mut supplies);
            let mut sub = SubBatch {
                dir,
                now_us,
                items,
                supplies,
                done: scratch.done_spares.pop().unwrap_or_default(),
                recycle: scratch.recycle_spares.pop().unwrap_or_default(),
            };
            // Chaos can pin a ring "full" from the producer side (the
            // worker keeps draining at virtual time, so seeded runs stay
            // deterministic); it exercises exactly the shed path a truly
            // wedged worker would.
            let mut shed_sub = None;
            if chaos.as_ref().is_some_and(|c| c.ring_saturated(w, now_us)) {
                shared.ring_stalls.fetch_add(1, Ordering::Relaxed);
                if let Some(reg) = obs.as_ref() {
                    reg.incr(Counter::RingStalls);
                    reg.worker_stall(w, 0);
                }
                shed_sub = Some(sub);
            } else {
                // Bounded backpressure: spin against the shed deadline,
                // never forever — a worker that stopped draining (wedged
                // in a stall, quarantine racing shutdown, unsupervised
                // death) must not wedge the producer with it.
                let mut deadline: Option<Instant> = None;
                loop {
                    match lane.to_worker[w].try_push(sub) {
                        Ok(()) => break,
                        Err(back) => {
                            sub = back;
                            shared.ring_stalls.fetch_add(1, Ordering::Relaxed);
                            match obs.as_ref() {
                                Some(reg) => {
                                    reg.incr(Counter::RingStalls);
                                    let stall = StageTimer::start();
                                    shared.wake_worker(w);
                                    std::thread::yield_now();
                                    reg.worker_stall(w, stall.elapsed_ns());
                                }
                                None => {
                                    shared.wake_worker(w);
                                    std::thread::yield_now();
                                }
                            }
                            let d = *deadline.get_or_insert_with(|| {
                                Instant::now() + Duration::from_micros(cfg.shed_deadline_us)
                            });
                            if Instant::now() >= d {
                                shed_sub = Some(sub);
                                break;
                            }
                        }
                    }
                }
            }
            if let Some(sub) = shed_sub {
                // Shed per-datagram: every item gets a Reject verdict in
                // its submission slot and every buffer goes back to the
                // pool — counted, never silently dropped.
                let SubBatch {
                    mut items,
                    mut supplies,
                    done,
                    recycle,
                    ..
                } = sub;
                pool.put_all(&mut supplies);
                let shed_n = items.len() as u64;
                for (slot, _si, header, payload, _tuple) in items.drain(..) {
                    pool.put(payload);
                    scratch.slots[slot] = Some((
                        header,
                        HookOutcome::Reject("shed: worker ring saturated".into()),
                    ));
                }
                shared.shed_rejected.fetch_add(shed_n, Ordering::Relaxed);
                shared.shed_batches.fetch_add(1, Ordering::Relaxed);
                if let Some(reg) = obs.as_ref() {
                    reg.add(Counter::ShedRejected, shed_n);
                    reg.incr(Counter::ShedBatches);
                }
                scratch.items[w] = items;
                scratch.supplies[w] = supplies;
                scratch.done_spares.push(done);
                scratch.recycle_spares.push(recycle);
                continue;
            }
            shared.wake_worker(w);
            outstanding += 1;
        }
        if let (Some(reg), Some(timer)) = (obs.as_ref(), timer) {
            reg.observe_stage(Stage::RingEnqueue, timer.elapsed_ns());
        }
        let timer = obs.as_ref().map(|_| StageTimer::start());
        let mut replies = 0usize;
        let mut spins = 0u32;
        let mut dead_spins = 0u32;
        while replies < outstanding {
            let mut progressed = false;
            for w in 0..nw {
                while let Some(reply) = lane.from_worker[w].try_pop() {
                    let SubReply {
                        mut done,
                        mut recycle,
                        items,
                        supplies,
                    } = reply;
                    for (slot, header, outcome) in done.drain(..) {
                        scratch.slots[slot] = Some((header, outcome));
                    }
                    pool.put_all(&mut recycle);
                    scratch.done_spares.push(done);
                    scratch.recycle_spares.push(recycle);
                    scratch.items[w] = items;
                    scratch.supplies[w] = supplies;
                    replies += 1;
                    progressed = true;
                }
            }
            if progressed {
                spins = 0;
                dead_spins = 0;
                continue;
            }
            if shared.workers_alive.load(Ordering::Acquire) < nw {
                // A worker thread is GONE (unsupervised death — a panic
                // the in-thread supervisor itself could not contain).
                // Live workers may still have replies in flight, so give
                // them a grace window before failing the rest closed.
                dead_spins += 1;
                if dead_spins > 512 {
                    break;
                }
            }
            spins += 1;
            if spins < 32 {
                std::thread::yield_now();
            } else {
                // Timed park, never bare: a wakeup racing the park is
                // then at worst a 200µs hiccup, not a hang.
                std::thread::park_timeout(Duration::from_micros(200));
            }
        }
        *lane.producer.lock() = None;
        if let (Some(reg), Some(timer)) = (obs.as_ref(), timer) {
            reg.observe_stage(Stage::RingWait, timer.elapsed_ns());
        }
        let timer = obs.as_ref().map(|_| StageTimer::start());
        let Scratch { slots, headers, .. } = &mut *scratch;
        let out: Vec<(Ipv4Header, HookOutcome)> = slots
            .drain(..)
            .enumerate()
            .map(|(slot, s)| match s {
                Some(v) => v,
                // Verdict stranded in a dead worker: fail the datagram
                // closed with its captured header rather than panicking
                // the submitting thread.
                None => (
                    headers[slot].clone(),
                    HookOutcome::Reject("worker runtime unavailable".into()),
                ),
            })
            .collect();
        headers.clear();
        if let (Some(reg), Some(timer)) = (obs.as_ref(), timer) {
            reg.observe_stage(Stage::Dispatch, timer.elapsed_ns());
        }
        out
    }

    /// Release loop for parked output datagrams; runs on the owning
    /// workers via the control plane. The fast path (nothing parked) is
    /// one atomic load per worker.
    fn release_output(&mut self, now_us: u64, pool: &mut BufferPool) -> Vec<(Ipv4Header, Vec<u8>)> {
        self.release_dir(Direction::Output, now_us, pool)
    }

    /// Release loop for parked input datagrams, mirroring
    /// [`Self::release_output`].
    fn release_input(&mut self, now_us: u64, pool: &mut BufferPool) -> Vec<(Ipv4Header, Vec<u8>)> {
        self.release_dir(Direction::Input, now_us, pool)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::host::build_secure_host;
    use fbs_cert::{CertificateAuthority, Directory};
    use fbs_core::ManualClock;
    use fbs_crypto::dh::DhGroup;
    use fbs_net::ip::Ipv4Addr;
    use std::time::Duration;

    const A: Ipv4Addr = [10, 9, 0, 1];
    const B: Ipv4Addr = [10, 9, 0, 2];

    struct World {
        clock: ManualClock,
        ca: CertificateAuthority,
        directory: Arc<Directory>,
        group: DhGroup,
    }

    impl World {
        fn new() -> Self {
            World {
                clock: ManualClock::starting_at(0),
                ca: CertificateAuthority::new("degrade-test-ca", [0xD6; 16]),
                directory: Arc::new(Directory::new(Duration::ZERO)),
                group: DhGroup::test_group(),
            }
        }

        /// Build hooks for `addr` (publishing its certificate).
        fn host(&self, addr: Ipv4Addr) -> FbsIpHooks {
            let (_host, hooks) = build_secure_host(
                addr,
                1500,
                self.cfg(),
                self.clock.clone(),
                &self.group,
                &self.ca,
                &self.directory,
                42,
            );
            hooks
        }

        fn cfg(&self) -> IpMappingConfig {
            IpMappingConfig::default()
        }
    }

    fn udp_datagram(src: Ipv4Addr, dst: Ipv4Addr) -> (Ipv4Header, Vec<u8>) {
        // 4-byte port prefix so the 5-tuple extracts, then a body.
        let mut payload = vec![0x0F, 0xA0, 0x00, 0x35];
        payload.extend_from_slice(b"degradation test body");
        let header = Ipv4Header::new(src, dst, Proto::Udp, payload.len());
        (header, payload)
    }

    fn hooks_with(world: &World, cfg: IpMappingConfig) -> FbsIpHooks {
        let (_host, hooks) = build_secure_host(
            A,
            1500,
            cfg,
            world.clock.clone(),
            &world.group,
            &world.ca,
            &world.directory,
            42,
        );
        hooks
    }

    #[test]
    fn key_unavailable_fails_closed_by_default() {
        let world = World::new();
        let mut hooks = world.host(A); // B's certificate never published
        let (mut header, payload) = udp_datagram(A, B);
        let out = hooks.output(&mut header, payload, 1_000);
        assert!(matches!(out, HookOutcome::Reject(_)), "{out:?}");
        let s = hooks.stats();
        assert_eq!(s.fail_closed, 1);
        assert_eq!(s.output_errors, 1);
        assert_eq!(s.fail_open, 0);
    }

    #[test]
    fn fail_open_passes_plaintext_when_not_confidential() {
        let world = World::new();
        let cfg = IpMappingConfig {
            encrypt: false,
            key_unavailable: KeyUnavailableVerdict::FailOpen,
            ..IpMappingConfig::default()
        };
        let mut hooks = hooks_with(&world, cfg);
        let (mut header, payload) = udp_datagram(A, B);
        let before = header.total_len;
        let out = hooks.output(&mut header, payload.clone(), 1_000);
        match out {
            HookOutcome::Pass(bytes) => assert_eq!(bytes, payload, "original plaintext"),
            other => panic!("expected fail-open pass, got {other:?}"),
        }
        assert_eq!(header.total_len, before, "no FBS overhead added");
        assert_eq!(hooks.stats().fail_open, 1);
    }

    #[test]
    fn fail_open_downgrades_to_fail_closed_under_encryption() {
        let world = World::new();
        let cfg = IpMappingConfig {
            encrypt: true,
            key_unavailable: KeyUnavailableVerdict::FailOpen,
            ..IpMappingConfig::default()
        };
        let mut hooks = hooks_with(&world, cfg);
        let (mut header, payload) = udp_datagram(A, B);
        let out = hooks.output(&mut header, payload, 1_000);
        assert!(matches!(out, HookOutcome::Reject(_)), "{out:?}");
        assert_eq!(hooks.stats().fail_closed, 1);
        assert_eq!(hooks.stats().fail_open, 0);
    }

    #[test]
    fn fail_open_input_admits_only_unframed_datagrams() {
        let world = World::new();
        let cfg = IpMappingConfig {
            encrypt: false,
            key_unavailable: KeyUnavailableVerdict::FailOpen,
            ..IpMappingConfig::default()
        };
        let mut hooks = hooks_with(&world, cfg);
        // A bare datagram with no FBS framing: decode fails, fail-open
        // admits it untouched.
        let (mut header, payload) = udp_datagram(B, A);
        let out = hooks.input(&mut header, payload.clone(), 1_000);
        match out {
            HookOutcome::Pass(bytes) => assert_eq!(bytes, payload),
            other => panic!("expected fail-open admit, got {other:?}"),
        }
        assert_eq!(hooks.stats().fail_open, 1);
    }

    #[test]
    fn crypto_failures_never_degrade() {
        // Even under fail-open, a framed datagram with a bad MAC is
        // rejected: crypto verdicts are final.
        let world = World::new();
        let cfg = IpMappingConfig {
            encrypt: false,
            key_unavailable: KeyUnavailableVerdict::FailOpen,
            ..IpMappingConfig::default()
        };
        let mut sender = hooks_with(&world, cfg.clone());
        let mut receiver = world.host(B);
        let (mut header, payload) = udp_datagram(A, B);
        let out = sender.output(&mut header, payload, 1_000);
        let mut wire = match out {
            HookOutcome::Pass(bytes) => bytes,
            other => panic!("sender should protect, got {other:?}"),
        };
        // Flip a bit in the MAC region (the tail).
        let last = wire.len() - 1;
        wire[last] ^= 0x40;
        let mut rx_header = header.clone();
        rx_header.src = A;
        rx_header.dst = B;
        let got = receiver.input(&mut rx_header, wire, 1_000);
        assert!(matches!(got, HookOutcome::Reject(_)), "{got:?}");
        assert_eq!(receiver.stats().input_errors, 1);
        assert_eq!(
            receiver.stats().fail_open,
            0,
            "MAC failure must not degrade"
        );
    }

    #[test]
    fn park_holds_then_releases_when_key_arrives() {
        let world = World::new();
        let cfg = IpMappingConfig {
            key_unavailable: KeyUnavailableVerdict::Park,
            park_deadline_us: 10_000_000,
            ..IpMappingConfig::default()
        };
        let mut hooks = hooks_with(&world, cfg);
        let mut pool = BufferPool::new();
        let (mut header, payload) = udp_datagram(A, B);
        let out = hooks.output(&mut header, payload, 1_000);
        assert!(matches!(out, HookOutcome::Park), "{out:?}");
        assert_eq!(hooks.parked_depths(), (1, 0));

        // Still keyless: the release pass re-parks, does not drop.
        assert!(hooks.release_output(2_000, &mut pool).is_empty());
        assert_eq!(hooks.parked_depths(), (1, 0));

        // B comes online (certificate published); the parked datagram
        // is protected and released on the next poll.
        let _hb = world.host(B);
        let released = hooks.release_output(3_000, &mut pool);
        assert_eq!(released.len(), 1);
        let (rel_header, rel_payload) = &released[0];
        assert!(rel_payload.len() > 25, "released payload is protected");
        assert_eq!(rel_header.dst, B);
        assert_eq!(hooks.parked_depths(), (0, 0));
        let (out_stats, _) = hooks.park_stats().unwrap();
        assert_eq!(out_stats.released, 1);
        assert_eq!(out_stats.expired, 0);
        assert_eq!(hooks.stats().protected, 1);
        // The consumed plaintext went back to the pool.
        assert_eq!(pool.stats().returns, 1);
    }

    #[test]
    fn park_queue_overflow_rejects() {
        let world = World::new();
        let cfg = IpMappingConfig {
            key_unavailable: KeyUnavailableVerdict::Park,
            park_capacity: 2,
            ..IpMappingConfig::default()
        };
        let mut hooks = hooks_with(&world, cfg);
        for i in 0..2 {
            let (mut header, payload) = udp_datagram(A, B);
            let out = hooks.output(&mut header, payload, 1_000 + i);
            assert!(matches!(out, HookOutcome::Park));
        }
        let (mut header, payload) = udp_datagram(A, B);
        let out = hooks.output(&mut header, payload, 2_000);
        assert!(matches!(out, HookOutcome::Reject(_)), "{out:?}");
        let (out_stats, _) = hooks.park_stats().unwrap();
        assert_eq!(out_stats.overflow, 1);
        assert_eq!(hooks.parked_depths(), (2, 0));
    }

    #[test]
    fn park_overflow_recycles_the_rejected_payload() {
        // Same scenario as above, but driven through process_batch with
        // an observable pool: the overflow reject must hand the payload
        // buffer back instead of leaking it. The batch draws 3 supply
        // buffers; none is consumed (every datagram parks or rejects
        // before sealing), so 3 supplies plus the overflowed payload
        // come back: 4 returns against 3 takes.
        let world = World::new();
        let cfg = IpMappingConfig {
            key_unavailable: KeyUnavailableVerdict::Park,
            park_capacity: 2,
            ..IpMappingConfig::default()
        };
        let mut hooks = hooks_with(&world, cfg);
        let mut pool = BufferPool::new();
        let batch: Vec<Datagram> = (0..3)
            .map(|_| {
                let (header, payload) = udp_datagram(A, B);
                Datagram { header, payload }
            })
            .collect();
        let out = hooks.process_batch(Direction::Output, batch, &mut pool, 1_000);
        assert!(matches!(out[0].1, HookOutcome::Park));
        assert!(matches!(out[1].1, HookOutcome::Park));
        assert!(matches!(out[2].1, HookOutcome::Reject(_)));
        let s = pool.stats();
        assert_eq!(s.misses, 3, "one supply buffer per datagram");
        assert_eq!(
            s.returns, 4,
            "3 unused supplies + the overflowed datagram's payload"
        );
    }

    #[test]
    fn parked_datagrams_expire_at_their_deadline() {
        let world = World::new();
        let cfg = IpMappingConfig {
            key_unavailable: KeyUnavailableVerdict::Park,
            park_deadline_us: 5_000,
            ..IpMappingConfig::default()
        };
        let mut hooks = hooks_with(&world, cfg);
        let mut pool = BufferPool::new();
        let (mut header, payload) = udp_datagram(A, B);
        assert!(matches!(
            hooks.output(&mut header, payload, 1_000),
            HookOutcome::Park
        ));
        // Repeated keyless release passes must not reset the deadline.
        assert!(hooks.release_output(3_000, &mut pool).is_empty());
        assert!(hooks.release_output(5_000, &mut pool).is_empty());
        assert!(hooks.release_output(6_001, &mut pool).is_empty());
        assert_eq!(hooks.parked_depths(), (0, 0), "expired, not retained");
        let (out_stats, _) = hooks.park_stats().unwrap();
        assert_eq!(out_stats.expired, 1);
        assert_eq!(out_stats.released, 0);
        // Expiry recycled the parked payload buffer into the pool.
        assert_eq!(pool.stats().returns, 1);
    }

    #[test]
    fn input_park_releases_after_sender_cert_appears() {
        // Receiver-side parking: the wire datagram arrives before the
        // receiver can fetch the sender's public value.
        let world = World::new();
        let park_cfg = IpMappingConfig {
            key_unavailable: KeyUnavailableVerdict::Park,
            park_deadline_us: 10_000_000,
            ..IpMappingConfig::default()
        };
        // Receiver A parks; its directory view is a SEPARATE directory
        // that never saw the sender's certificate.
        let receiver_world = World::new();
        let mut receiver = hooks_with(&receiver_world, park_cfg);

        // Sender B lives in `world` with both certificates present —
        // publish A's certificate there by building A's endpoint too.
        let _a_in_world = world.host(A);
        let (_host_b, _) = build_secure_host(
            B,
            1500,
            IpMappingConfig::default(),
            world.clock.clone(),
            &world.group,
            &world.ca,
            &world.directory,
            42,
        );
        let mut sender = {
            let (_h, hooks) = build_secure_host(
                B,
                1500,
                IpMappingConfig::default(),
                world.clock.clone(),
                &world.group,
                &world.ca,
                &world.directory,
                43,
            );
            hooks
        };
        let (mut header, payload) = udp_datagram(B, A);
        let wire = match sender.output(&mut header, payload.clone(), 1_000) {
            HookOutcome::Pass(bytes) => bytes,
            other => panic!("sender should protect, got {other:?}"),
        };

        let mut rx_header = header.clone();
        let out = receiver.input(&mut rx_header, wire, 1_000);
        assert!(matches!(out, HookOutcome::Park), "{out:?}");
        assert_eq!(receiver.parked_depths(), (0, 1));

        // Sender's certificate reaches the receiver's directory; note
        // the sender in `world` signs with the same CA key, so the
        // receiver's verifier accepts it.
        let b_cert = world.directory.fetch(&Principal::from_ipv4(B)).unwrap();
        receiver_world.directory.publish(b_cert);
        let mut pool = BufferPool::new();
        let released = receiver.release_input(2_000, &mut pool);
        assert_eq!(released.len(), 1);
        assert_eq!(released[0].1, payload, "verified plaintext");
        assert_eq!(receiver.parked_depths(), (0, 0));
        assert_eq!(receiver.stats().verified, 1);
        // The consumed wire payload went back to the pool.
        assert_eq!(pool.stats().returns, 1);
    }

    #[test]
    fn stats_reads_stay_lock_free_while_batches_run() {
        // The worker-runtime version of the old "stats never touch
        // shard locks" promise: every accessor below completes while a
        // background thread continuously drives batches through the
        // shared runtime. Nothing here can deadlock — the scrape path
        // is atomics only — and the final counts prove the batches all
        // landed.
        let world = World::new();
        let hooks = world.host(A);
        let _hb = world.host(B); // publishes B's certificate
        let mut worker_handle = hooks.clone();
        let driver = std::thread::spawn(move || {
            let mut pool = BufferPool::new();
            for round in 0..50u64 {
                let batch: Vec<Datagram> = (0..8u16)
                    .map(|i| {
                        let mut payload = vec![0x0F, (0xA0 + i) as u8, 0x00, 0x35];
                        payload.extend_from_slice(b"stats scrape body");
                        let header = Ipv4Header::new(A, B, Proto::Udp, payload.len());
                        Datagram { header, payload }
                    })
                    .collect();
                let out =
                    worker_handle.process_batch(Direction::Output, batch, &mut pool, round * 100);
                assert!(out.iter().all(|(_, o)| matches!(o, HookOutcome::Pass(_))));
            }
        });
        for _ in 0..100 {
            let _ = hooks.stats();
            let _ = hooks.endpoint_stats();
            let _ = hooks.tfkc_stats();
            let _ = hooks.rfkc_stats();
            let _ = hooks.mkd_stats();
            let _ = hooks.combined_stats();
            let _ = hooks.ring_stalls();
            let _ = hooks.parked_depths();
            let _ = hooks.num_shards();
            let _ = hooks.num_workers();
        }
        driver.join().expect("driver thread");
        assert_eq!(hooks.stats().protected, 400);
    }

    #[test]
    fn config_snapshot_swaps_without_rebuilding_state() {
        // Publish-on-update: the same hooks flip from fail-closed to
        // fail-open at runtime; no shard state is rebuilt.
        let world = World::new();
        let mut hooks = world.host(A); // B never published → keyless
        let (mut header, payload) = udp_datagram(A, B);
        let out = hooks.output(&mut header, payload, 1_000);
        assert!(matches!(out, HookOutcome::Reject(_)), "{out:?}");
        hooks.update_config(|c| {
            c.encrypt = false;
            c.key_unavailable = KeyUnavailableVerdict::FailOpen;
        });
        let (mut header, payload) = udp_datagram(A, B);
        let out = hooks.output(&mut header, payload, 2_000);
        assert!(matches!(out, HookOutcome::Pass(_)), "{out:?}");
        assert_eq!(hooks.stats().fail_open, 1);
        assert_eq!(hooks.stats().fail_closed, 1);
    }

    #[test]
    fn batch_outcomes_stay_in_submission_order_across_shards() {
        // Flows with different tuples land in different shards (and
        // different workers); the returned vec must still be
        // positionally aligned with the submitted batch.
        let world = World::new();
        let mut sender = world.host(A);
        let _receiver = world.host(B); // publishes B's certificate
        let mut pool = BufferPool::new();
        let batch: Vec<Datagram> = (0..16u16)
            .map(|i| {
                let mut payload = vec![0x0F, (0xA0 + i) as u8, 0x00, 0x35];
                payload.extend_from_slice(b"order test body");
                let mut header = Ipv4Header::new(A, B, Proto::Udp, payload.len());
                header.id = i; // tag each datagram through its header
                Datagram { header, payload }
            })
            .collect();
        let out = sender.process_batch(Direction::Output, batch, &mut pool, 1_000);
        assert_eq!(out.len(), 16);
        for (i, (header, outcome)) in out.iter().enumerate() {
            assert_eq!(header.id as usize, i, "submission order preserved");
            assert!(matches!(outcome, HookOutcome::Pass(_)), "{outcome:?}");
        }
        let cs = sender.combined_stats().unwrap();
        assert_eq!(cs.new_flows as usize, 16);
        assert!(
            sender.num_shards() > 1,
            "default config must actually shard"
        );
        assert!(
            sender.num_workers() > 1,
            "default config must use the worker runtime"
        );
    }

    #[test]
    fn workers_clamp_to_shard_count() {
        let world = World::new();
        let cfg = IpMappingConfig {
            shards: 1,
            workers: 8,
            ..IpMappingConfig::default()
        };
        let mut hooks = hooks_with(&world, cfg);
        assert_eq!(hooks.num_shards(), 1);
        assert_eq!(hooks.num_workers(), 1, "workers clamp to shards");
        let _hb = world.host(B);
        let (mut header, payload) = udp_datagram(A, B);
        assert!(matches!(
            hooks.output(&mut header, payload, 1_000),
            HookOutcome::Pass(_)
        ));
    }

    #[test]
    fn drain_then_shutdown_flushes_and_balances() {
        // The deterministic drain-then-shutdown story: parks survive
        // batches, drain() leaves no buffered work, the pool ledger
        // balances, and dropping every handle joins the workers without
        // losing the parked entries' buffers (they drain on release).
        let world = World::new();
        let cfg = IpMappingConfig {
            key_unavailable: KeyUnavailableVerdict::Park,
            park_deadline_us: 10_000_000,
            ..IpMappingConfig::default()
        };
        let mut hooks = hooks_with(&world, cfg);
        let mut pool = BufferPool::new();
        let batch: Vec<Datagram> = (0..4)
            .map(|_| {
                let (header, payload) = udp_datagram(A, B);
                Datagram { header, payload }
            })
            .collect();
        let out = hooks.process_batch(Direction::Output, batch, &mut pool, 1_000);
        assert!(out.iter().all(|(_, o)| matches!(o, HookOutcome::Park)));
        // Synchronous drain: nothing may still be buffered in any ring.
        hooks.drain().unwrap();
        assert_eq!(hooks.parked_depths(), (4, 0), "parks survive the drain");
        // Ledger: 4 supplies drawn, none consumed (all parked), so all
        // 4 came back; the 4 parked payloads are held by the runtime.
        let s = pool.stats();
        assert_eq!(s.hits + s.misses, 4);
        assert_eq!(s.returns + s.discards, 4);
        // Key arrives; release returns the parked datagrams and their
        // payload buffers, balancing the ledger completely.
        let _hb = world.host(B);
        let released = hooks.release_output(2_000, &mut pool);
        assert_eq!(released.len(), 4);
        let s = pool.stats();
        assert_eq!(
            s.returns + s.discards,
            8,
            "4 supplies + 4 released payloads recycled"
        );
        assert_eq!(hooks.parked_depths(), (0, 0));
        // Finally: dropping the last handle must join the workers (the
        // test would hang here if shutdown lost the wakeup).
        drop(hooks);
    }

    /// Deterministic one-shot fault injector for the supervision tests:
    /// the first worker to start a sub-batch takes the (single) panic;
    /// saturation pins worker 0's ring full from the producer's view.
    struct TestChaos {
        panic_once: std::sync::atomic::AtomicBool,
        saturate_w0: bool,
    }

    impl TestChaos {
        fn panicking() -> Arc<Self> {
            Arc::new(TestChaos {
                panic_once: std::sync::atomic::AtomicBool::new(true),
                saturate_w0: false,
            })
        }

        fn saturating() -> Arc<Self> {
            Arc::new(TestChaos {
                panic_once: std::sync::atomic::AtomicBool::new(false),
                saturate_w0: true,
            })
        }
    }

    impl WorkerFaultInjector for TestChaos {
        fn take_panic(&self, _worker: usize, _now_us: u64) -> bool {
            self.panic_once.swap(false, Ordering::AcqRel)
        }
        fn take_stall_us(&self, _worker: usize, _now_us: u64) -> u64 {
            0
        }
        fn ring_saturated(&self, worker: usize, _now_us: u64) -> bool {
            self.saturate_w0 && worker == 0
        }
    }

    /// Spread a batch over many 5-tuples so every worker gets work.
    fn spread_batch(n: usize) -> Vec<Datagram> {
        (0..n)
            .map(|i| {
                let mut payload = vec![0x0F, 0xA0 + i as u8, 0x00, 0x35];
                payload.extend_from_slice(b"fault containment body");
                let header = Ipv4Header::new(A, B, Proto::Udp, payload.len());
                Datagram { header, payload }
            })
            .collect()
    }

    #[test]
    fn supervised_panic_respawns_worker_and_batch_completes() {
        let world = World::new();
        let mut hooks = world.host(A);
        let _hb = world.host(B); // publish B's certificate
        hooks.set_worker_chaos(Some(TestChaos::panicking()));
        let mut pool = BufferPool::new();
        let out = hooks.process_batch(Direction::Output, spread_batch(16), &mut pool, 1_000);
        assert_eq!(out.len(), 16, "every datagram got a verdict");
        let rejects = out
            .iter()
            .filter(|(_, o)| matches!(o, HookOutcome::Reject(_)))
            .count();
        assert_eq!(rejects, 1, "exactly the poisoned datagram rejects");
        assert_eq!(hooks.worker_panics(), 1);
        assert_eq!(hooks.worker_respawns(), 1);
        assert_eq!(hooks.quarantined_workers(), 0);
        assert_eq!(
            hooks.workers_alive(),
            hooks.num_workers(),
            "supervised panic never kills the thread"
        );
        // The rebuilt worker serves the next batch cleanly (soft state
        // re-warms through misses).
        let out = hooks.process_batch(Direction::Output, spread_batch(16), &mut pool, 2_000);
        assert!(
            out.iter().all(|(_, o)| matches!(o, HookOutcome::Pass(_))),
            "post-respawn batch all passes"
        );
        // Ledger across the panic: every Pass consumes its supply and
        // returns its (foreign) payload — net zero; every Reject
        // returns BOTH, so returns exceed takes by exactly the reject
        // count. The poisoned datagram's freed payload was made whole
        // by the supervisor's replacement buffer.
        let s = pool.stats();
        assert_eq!(s.returns + s.discards, s.hits + s.misses + rejects as u64);
        drop(hooks);
    }

    #[test]
    fn fail_closed_policy_quarantines_but_keeps_control_plane() {
        let world = World::new();
        let cfg = IpMappingConfig {
            worker_fault: WorkerFaultPolicy::FailClosed,
            ..IpMappingConfig::default()
        };
        let mut hooks = hooks_with(&world, cfg);
        let _hb = world.host(B);
        hooks.set_worker_chaos(Some(TestChaos::panicking()));
        let mut pool = BufferPool::new();
        let out = hooks.process_batch(Direction::Output, spread_batch(16), &mut pool, 1_000);
        assert_eq!(out.len(), 16);
        let rejects = out
            .iter()
            .filter(|(_, o)| matches!(o, HookOutcome::Reject(_)))
            .count();
        assert!(rejects >= 1, "the panicked worker's sub-batch fails closed");
        assert!(
            out.iter().any(|(_, o)| matches!(o, HookOutcome::Pass(_))),
            "unaffected workers keep passing traffic"
        );
        assert_eq!(hooks.worker_panics(), 1);
        assert_eq!(hooks.worker_respawns(), 0, "FailClosed never respawns");
        assert_eq!(hooks.quarantined_workers(), 1);
        assert_eq!(
            hooks.workers_alive(),
            hooks.num_workers(),
            "quarantined workers stay joinable"
        );
        // The control plane still answers on the quarantined worker.
        hooks.flush_flow_keys().unwrap();
        hooks.drain().unwrap();
        let _ = hooks.park_stats().unwrap();
        let _ = hooks.active_flows(1).unwrap();
        // Traffic routed at the quarantined worker keeps failing closed;
        // the rest still passes — and the ledger stays balanced.
        let out = hooks.process_batch(Direction::Output, spread_batch(16), &mut pool, 2_000);
        assert!(out
            .iter()
            .any(|(_, o)| matches!(o, HookOutcome::Reject(r) if r.contains("quarantined"))));
        assert!(out.iter().any(|(_, o)| matches!(o, HookOutcome::Pass(_))));
        let rejects2 = out
            .iter()
            .filter(|(_, o)| matches!(o, HookOutcome::Reject(_)))
            .count();
        // Rejects return payload AND unused supply (see the respawn
        // test): the ledger offset is exactly the total reject count.
        let s = pool.stats();
        assert_eq!(
            s.returns + s.discards,
            s.hits + s.misses + (rejects + rejects2) as u64
        );
        drop(hooks);
    }

    #[test]
    fn saturated_ring_sheds_per_datagram_with_counters() {
        let world = World::new();
        let cfg = IpMappingConfig {
            // Shed immediately on backpressure: the test pins worker 0's
            // ring full via chaos, so any positive deadline only adds
            // wall time.
            shed_deadline_us: 0,
            ..IpMappingConfig::default()
        };
        let mut hooks = hooks_with(&world, cfg);
        let _hb = world.host(B);
        hooks.set_worker_chaos(Some(TestChaos::saturating()));
        let mut pool = BufferPool::new();
        let out = hooks.process_batch(Direction::Output, spread_batch(16), &mut pool, 1_000);
        assert_eq!(out.len(), 16);
        let shed = out
            .iter()
            .filter(|(_, o)| matches!(o, HookOutcome::Reject(r) if r.contains("shed")))
            .count();
        assert!(shed >= 1, "worker 0's share of the batch sheds");
        assert!(
            out.iter().any(|(_, o)| matches!(o, HookOutcome::Pass(_))),
            "other workers' traffic is untouched"
        );
        let (rejected, batches) = hooks.shed_counts();
        assert_eq!(rejected, shed as u64);
        assert!(batches >= 1);
        // Shed buffers all returned to the pool: payload and supply per
        // shed datagram (the same reject offset as the respawn test).
        let s = pool.stats();
        assert_eq!(s.returns + s.discards, s.hits + s.misses + shed as u64);
        // Lifting the saturation restores full service.
        hooks.set_worker_chaos(None);
        let out = hooks.process_batch(Direction::Output, spread_batch(16), &mut pool, 2_000);
        assert!(out.iter().all(|(_, o)| matches!(o, HookOutcome::Pass(_))));
        drop(hooks);
    }
}
