//! The `ip_fbs.c` analogue: FBS processing hooked into the stack.
//!
//! Output (§7.2): between IP output processing and fragmentation, the
//! datagram is classified into a flow, protected, and the security flow
//! header is inserted between the IP header and the transport payload;
//! the IP length fields are fixed up. "To IP, the FBS header is simply a
//! part of the higher layer header" — forwarding routers see nothing
//! strange.
//!
//! Input: between reassembly and dispatch, the FBS header is removed and
//! verified; failures drop the datagram before it reaches the transport.
//!
//! # Sharded concurrent state
//!
//! Flow state lives in a fixed power-of-two array of [`Shard`]s, each
//! behind its own small mutex. A shard owns everything a flow touches on
//! the hot path — its slice of the combined FST/TFKC (or FAM + TFKC),
//! its RFKC slice, its [`FlowCodec`] (confounder stream + seal/open),
//! and its parking queues — so two threads working disjoint flows never
//! contend.
//!
//! * **Transmit** datagrams shard by `crc32(five_tuple) % N`. Each
//!   shard's [`SflAllocator`] is strided so every sfl it issues is
//!   congruent to the shard index mod `N` — the same `sfl % N` function
//!   the parallel sealer partitions by.
//! * **Receive** datagrams shard by the wire sfl (first 8 payload
//!   bytes) mod `N`, so a flow's RFKC entries stay in one shard.
//! * Per-shard tables keep the FULL configured geometry (`fst_size`,
//!   TFKC/RFKC sets × assoc): a shard only ever sees tuples hashing to
//!   its index, so dividing the tables by `N` would collapse them.
//!
//! Read-mostly configuration is published as an `Arc` snapshot
//! ([`Published`], swap-on-update): the hot path never takes a config
//! lock, and batches are partitioned into per-shard groups once, taking
//! one shard lock per group rather than per datagram.
//!
//! **Lock-ordering rules** (see also `fbs_core::concurrent`):
//!
//! 1. A shard lock is NEVER held across an MKD/directory call. A cache
//!    miss reserves its sfl, drops the shard lock, derives the key via
//!    the shared [`KeyingService`], re-locks, and quietly re-checks for
//!    a racing insert before installing.
//! 2. Inside the keying service the order is mkd → mkc-shard.
//! 3. `Published` reads nest inside anything (leaf).
//!
//! All hook/endpoint/cache counters are lock-free atomics shared across
//! shards, so a stats scrape never blocks a batch in flight.
//!
//! # Graceful degradation
//!
//! Keying can fail *transiently* — a certificate-directory outage, an
//! MKD upcall failure, an open circuit breaker. The flow policy's
//! [`KeyUnavailableVerdict`] decides what happens to the datagram:
//!
//! * **fail-closed** (default, the paper's behaviour): drop it;
//! * **fail-open**: pass it unprotected — only honoured when the
//!   configuration does not request confidentiality, and never for a
//!   framed-but-unverifiable input datagram;
//! * **park**: hold it in a bounded [`ParkingQueue`] and retry when
//!   [`Host::poll`](fbs_net::Host::poll) drives
//!   [`SecurityHooks::release_output`]/[`release_input`](SecurityHooks::release_input).
//!   Entries carry an absolute deadline from their first park, so a
//!   sustained outage degrades into ordinary datagram loss instead of
//!   unbounded memory growth.
//!
//! Cryptographic verdicts (bad MAC, stale timestamp, malformed input)
//! never degrade: they are final rejections regardless of policy.
//!
//! Every early exit that consumed a pool-drawn payload recycles it: the
//! reject paths, park-queue overflow, parked-entry expiry, and the
//! release loops all route buffers back to the caller's [`BufferPool`].

use crate::combined::{AtomicCombinedStats, CombinedTable};
use crate::policy::FiveTuplePolicy;
use crate::tuple::FiveTuple;
use fbs_core::breaker::BreakerState;
use fbs_core::header::{HeaderView, FIXED_PREFIX_LEN};
use fbs_core::protocol::EndpointStats;
use fbs_core::{
    derive_flow_key, AtomicCacheStats, BufferPool, Clock, Fam, FbsConfig, FbsEndpoint, FbsError,
    FlowCodec, FlowKeyId, KeyUnavailableVerdict, KeyingService, ParkStats, Parked, ParkingQueue,
    Principal, Published, SealedFlowKey, SflAllocator, SoftCache,
};
use fbs_crypto::crc32;
use fbs_net::ip::Proto;
use fbs_net::{Datagram, HookOutcome, Ipv4Header, SecurityHooks};
use fbs_obs::{
    CacheKind, Counter, Direction, Event, MetricsRegistry, MetricsSnapshot, SpanKind, Stage,
    StageTimer, TraceSpan,
};
use parking_lot::{Mutex, MutexGuard};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Multiplier decorrelating per-shard confounder seeds (golden-ratio
/// constant; shard 0 keeps the endpoint's original seed).
const SHARD_SEED_MIX: u64 = 0x9E37_79B9_7F4A_7C15;

/// Configuration of the IP mapping.
#[derive(Clone, Debug)]
pub struct IpMappingConfig {
    /// Flow idle expiry (Fig. 7's THRESHOLD).
    pub threshold_secs: u64,
    /// Flow state table size (Fig. 7's FSTSIZE).
    pub fst_size: usize,
    /// Request data confidentiality (DES) for covered datagrams; false =
    /// authentication only (keyed MD5), the paper's non-secret mode.
    pub encrypt: bool,
    /// Use the combined FST/TFKC send path of §7.2 (the implementation's
    /// choice); false = the textbook separate FAM + TFKC path of Fig. 4/6.
    pub combined: bool,
    /// Also protect raw-IP protocols (everything except the bypass
    /// protocol) as **host-level flows** — the treatment §7.1 footnote 10
    /// sketches for ICMP/IGMP: "raw IP can be considered as host-level
    /// flows". The paper's implementation left this out; it is provided as
    /// the documented extension. Default off for fidelity.
    pub cover_raw_ip: bool,
    /// Degradation verdict when keying material is transiently
    /// unavailable (wired into the flow policy). Default fail-closed,
    /// which reproduces the seed behaviour exactly.
    pub key_unavailable: KeyUnavailableVerdict,
    /// Parking-queue capacity per shard per direction (park verdict only).
    pub park_capacity: usize,
    /// Per-datagram parking deadline in microseconds, measured from the
    /// first park.
    pub park_deadline_us: u64,
    /// Number of flow-state shards (rounded up to a power of two).
    /// Fixed at construction: changing it through
    /// [`FbsIpHooks::update_config`] has no effect.
    pub shards: usize,
    /// The underlying FBS endpoint configuration.
    pub fbs: FbsConfig,
}

impl Default for IpMappingConfig {
    fn default() -> Self {
        IpMappingConfig {
            threshold_secs: crate::policy::DEFAULT_THRESHOLD_SECS,
            fst_size: crate::policy::DEFAULT_FST_SIZE,
            encrypt: true,
            combined: true,
            cover_raw_ip: false,
            key_unavailable: KeyUnavailableVerdict::FailClosed,
            park_capacity: 64,
            park_deadline_us: 2_000_000,
            shards: 8,
            fbs: FbsConfig::default(),
        }
    }
}

/// Counters for the hook layer.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct IpHookStats {
    /// Datagrams protected on output.
    pub protected: u64,
    /// Datagrams verified and stripped on input.
    pub verified: u64,
    /// Output datagrams rejected (keying failure, tuple extraction...).
    pub output_errors: u64,
    /// Input datagrams rejected (MAC, freshness, framing...).
    pub input_errors: u64,
    /// Datagrams passed unprotected/unverified under a fail-open verdict.
    pub fail_open: u64,
    /// Key-unavailable datagrams dropped under the fail-closed verdict.
    pub fail_closed: u64,
}

impl IpHookStats {
    /// Total output-hook invocations that reached a final verdict.
    pub fn output_entries(&self) -> u64 {
        self.protected + self.output_errors
    }

    /// Total input-hook invocations that reached a final verdict.
    pub fn input_entries(&self) -> u64 {
        self.verified + self.input_errors
    }

    /// Fold these counters into a snapshot under the `hooks.*` /
    /// `degrade.*` names a live [`MetricsRegistry`] uses.
    pub fn contribute(&self, snap: &mut MetricsSnapshot) {
        snap.add("hooks.output_entries", self.output_entries());
        snap.add("hooks.output_ok", self.protected);
        snap.add("hooks.output_errors", self.output_errors);
        snap.add("hooks.input_entries", self.input_entries());
        snap.add("hooks.input_ok", self.verified);
        snap.add("hooks.input_errors", self.input_errors);
        snap.add("degrade.fail_open", self.fail_open);
        snap.add("degrade.fail_closed", self.fail_closed);
    }
}

/// Lock-free live counters behind [`FbsIpHooks::stats`]: updated from
/// inside shard processing with relaxed atomics, snapshotted by readers
/// without touching any shard lock.
#[derive(Debug, Default)]
struct AtomicHookStats {
    protected: AtomicU64,
    verified: AtomicU64,
    output_errors: AtomicU64,
    input_errors: AtomicU64,
    fail_open: AtomicU64,
    fail_closed: AtomicU64,
}

impl AtomicHookStats {
    fn snapshot(&self) -> IpHookStats {
        IpHookStats {
            protected: self.protected.load(Ordering::Relaxed),
            verified: self.verified.load(Ordering::Relaxed),
            output_errors: self.output_errors.load(Ordering::Relaxed),
            input_errors: self.input_errors.load(Ordering::Relaxed),
            fail_open: self.fail_open.load(Ordering::Relaxed),
            fail_closed: self.fail_closed.load(Ordering::Relaxed),
        }
    }
}

/// One shard's slice of the mutable flow state. Everything a datagram
/// touches under its shard lock lives here; all counters inside are
/// share-stats'd into the lock-free aggregates in [`HookShared`].
struct Shard {
    /// Seal/open engine with this shard's confounder stream.
    codec: FlowCodec,
    /// Textbook path: FAM with the Fig. 7 policy.
    fam: Fam<FiveTuple, FiveTuplePolicy>,
    /// §7.2 path: merged FST/TFKC, used when `cfg.combined`.
    combined: Option<CombinedTable>,
    /// Textbook-path transmit flow key cache (full geometry).
    tfkc: SoftCache<FlowKeyId, Arc<SealedFlowKey>>,
    /// Receive flow key cache slice for sfls ≡ shard index (mod N).
    rfkc: SoftCache<FlowKeyId, Arc<SealedFlowKey>>,
    /// Output datagrams awaiting key derivation: (header, plaintext).
    out_park: ParkingQueue<(Ipv4Header, Vec<u8>)>,
    /// Input datagrams awaiting key derivation: (header, wire payload).
    in_park: ParkingQueue<(Ipv4Header, Vec<u8>)>,
}

/// State shared by every clone of [`FbsIpHooks`]: the shard array, the
/// keying service, the published config snapshot, and the lock-free
/// counter aggregates.
struct HookShared {
    shards: Box<[Mutex<Shard>]>,
    keying: KeyingService,
    local: Principal,
    clock: Arc<dyn Clock>,
    /// The endpoint-side config (algorithms, key derivation) the codecs
    /// were built from; fixed at construction like the shard geometry.
    key_derivation: fbs_core::KeyDerivation,
    cfg: Published<IpMappingConfig>,
    stats: AtomicHookStats,
    endpoint_stats: Arc<fbs_core::AtomicEndpointStats>,
    tfkc_stats: Arc<AtomicCacheStats>,
    rfkc_stats: Arc<AtomicCacheStats>,
    combined_stats: Arc<AtomicCombinedStats>,
    /// Times a batch found its shard lock already held.
    shard_contended: AtomicU64,
    obs: Published<Option<Arc<MetricsRegistry>>>,
}

type ShardGuard<'a> = MutexGuard<'a, Shard>;

impl HookShared {
    fn obs_handle(&self) -> Option<Arc<MetricsRegistry>> {
        (*self.obs.load()).clone()
    }

    /// Lock shard `si`, counting (and reporting) contention when the
    /// uncontended fast path fails. With a registry attached the blocked
    /// path is timed: the wait lands in the `stage.lock_wait_ns`
    /// histogram and in shard `si`'s row of the contention table. The
    /// uncontended path stays timer-free — `try_lock` success means the
    /// wait was zero by definition.
    fn lock_shard(&self, si: usize, obs: &Option<Arc<MetricsRegistry>>) -> ShardGuard<'_> {
        match self.shards[si].try_lock() {
            Some(g) => g,
            None => {
                self.shard_contended.fetch_add(1, Ordering::Relaxed);
                match obs {
                    Some(reg) => {
                        reg.incr(Counter::ShardContended);
                        let timer = StageTimer::start();
                        let g = self.shards[si].lock();
                        let ns = timer.elapsed_ns();
                        reg.observe_stage(Stage::LockWait, ns);
                        reg.shard_lock_wait(si, ns);
                        g
                    }
                    None => self.shards[si].lock(),
                }
            }
        }
    }
}

fn record(obs: &Option<Arc<MetricsRegistry>>, event: Event) {
    if let Some(reg) = obs {
        reg.record(event);
    }
}

/// Record a flow-trace span when a tracer is attached AND sampling
/// selects the flow. The untraced path costs one `Option` check plus one
/// atomic load; an unsampled flow adds a hash of its sfl — no locking,
/// no allocation.
fn trace_span(
    obs: &Option<Arc<MetricsRegistry>>,
    sfl: u64,
    host: [u8; 4],
    kind: SpanKind,
    t_us: u64,
    info: u64,
) {
    if let Some(tracer) = obs.as_ref().and_then(|reg| reg.tracer()) {
        if tracer.sampled(sfl) {
            tracer.record(TraceSpan {
                sfl,
                host: u32::from_be_bytes(host),
                kind,
                t_us,
                info,
            });
        }
    }
}

/// Annotate the trace stream with an event that has no owning flow
/// (e.g. an output-side park, where keying failed before an sfl could
/// be resolved).
fn trace_note(
    obs: &Option<Arc<MetricsRegistry>>,
    kind: &'static str,
    detail: &'static str,
    t_us: u64,
    info: u64,
) {
    if let Some(tracer) = obs.as_ref().and_then(|reg| reg.tracer()) {
        tracer.annotate(kind, detail, t_us, info);
    }
}

/// The wire sfl: the first 8 big-endian payload bytes of a framed
/// datagram (the same prefix `rx_shard` partitions by).
fn wire_sfl(payload: &[u8]) -> Option<u64> {
    payload
        .get(..8)
        .map(|b| u64::from_be_bytes(b.try_into().expect("8 bytes")))
}

/// The policy's key-unavailable verdict, downgraded to fail-closed when
/// fail-open would leak traffic configured for confidentiality.
fn degrade_verdict(cfg: &IpMappingConfig) -> KeyUnavailableVerdict {
    if cfg.encrypt && cfg.key_unavailable == KeyUnavailableVerdict::FailOpen {
        KeyUnavailableVerdict::FailClosed
    } else {
        cfg.key_unavailable
    }
}

/// The outgoing datagram's flow identity. `None` = a transport datagram
/// too short for 5-tuple extraction (rejected later as malformed).
fn tuple_for(header: &Ipv4Header, payload: &[u8]) -> Option<FiveTuple> {
    let is_transport = matches!(Proto::from_number(header.proto), Proto::Mrt | Proto::Udp);
    if is_transport {
        FiveTuple::extract(header.proto, header.src, header.dst, payload)
    } else {
        // Footnote-10 extension: raw IP forms host-level flows — the
        // "5-tuple" degenerates to (proto, saddr, daddr).
        Some(FiveTuple {
            proto: header.proto,
            saddr: header.src,
            sport: 0,
            daddr: header.dst,
            dport: 0,
        })
    }
}

/// Transmit shard: derived from `crc32(tuple)` like the tables' slot
/// indices, but from the HIGH bits — the tables reduce the crc mod their
/// size (low bits), and taking the shard from the same low bits would
/// leave each shard's tuples able to reach only `1/N` of its full-size
/// table. Extraction failures go to shard 0; they only touch shared
/// counters on their reject path.
fn tx_shard(n: usize, tuple: Option<&FiveTuple>) -> usize {
    tuple.map_or(0, |t| {
        (crc32(&t.canonical_array()) >> 16) as usize & (n - 1)
    })
}

/// Receive shard: the wire sfl (first 8 payload bytes, big-endian) mod
/// the shard count — the transmit side's strided allocators guarantee
/// `sfl % N` IS the owning shard there, and any consistent partition
/// works here. Short payloads go to shard 0 and fail header parsing.
fn rx_shard(n: usize, payload: &[u8]) -> usize {
    if payload.len() >= 8 {
        let sfl = u64::from_be_bytes(payload[..8].try_into().expect("8 bytes"));
        (sfl as usize) & (n - 1)
    } else {
        0
    }
}

/// Zero-message key derivation via the shared keying service. Runs with
/// NO shard lock held (lock-ordering rule 1); `peer` is the remote
/// principal, `(src, dst)` the derivation direction.
fn derive_key(
    shared: &HookShared,
    sfl: u64,
    peer: &Principal,
    src: &Principal,
    dst: &Principal,
    obs: &Option<Arc<MetricsRegistry>>,
) -> Result<Arc<SealedFlowKey>, FbsError> {
    let t0 = obs.as_ref().map(|_| shared.clock.now_micros());
    let timer = obs.as_ref().map(|_| StageTimer::start());
    let master = shared.keying.master_key(peer)?;
    let k = Arc::new(SealedFlowKey::seal(derive_flow_key(
        shared.key_derivation,
        sfl,
        &master,
        src,
        dst,
    )));
    if let (Some(reg), Some(t0)) = (obs.as_ref(), t0) {
        reg.record(Event::KeyDerivation {
            micros: shared.clock.now_micros().saturating_sub(t0),
        });
        if let Some(timer) = timer {
            reg.observe_stage(Stage::KeyDerive, timer.elapsed_ns());
        }
    }
    Ok(k)
}

/// Resolve the transmit (sfl, key) for `tuple`. A cache hit completes
/// under the held guard; a miss reserves the sfl, drops the guard for
/// the derivation, re-locks, and quietly re-checks for a racing insert
/// (the loser's reserved sfl burns, exactly like a derivation error).
#[allow(clippy::too_many_arguments)]
fn resolve_tx_key<'a>(
    shared: &'a HookShared,
    si: usize,
    mut guard: ShardGuard<'a>,
    tuple: &FiveTuple,
    destination: &Principal,
    now_secs: u64,
    combined: bool,
    payload_len: u64,
    obs: &Option<Arc<MetricsRegistry>>,
) -> (ShardGuard<'a>, Result<(u64, Arc<SealedFlowKey>), FbsError>) {
    let sfl = if combined {
        let table = guard
            .combined
            .as_mut()
            .expect("combined path requires table");
        if let Some(hit) = table.probe(tuple, now_secs) {
            return (guard, Ok((hit.sfl, hit.key)));
        }
        table.reserve_sfl()
    } else {
        let class = guard.fam.classify(*tuple, now_secs, payload_len);
        let id: FlowKeyId = (class.sfl, shared.local.clone(), destination.clone());
        if let Some(k) = guard.tfkc.get_ref(&id) {
            let k = Arc::clone(k);
            return (guard, Ok((class.sfl, k)));
        }
        class.sfl
    };
    // Rule 1: never hold a shard lock across an MKD/directory call.
    drop(guard);
    let derived = derive_key(shared, sfl, destination, &shared.local, destination, obs);
    let mut guard = shared.lock_shard(si, obs);
    let res = match derived {
        Ok(key) => {
            if combined {
                let table = guard
                    .combined
                    .as_mut()
                    .expect("combined path requires table");
                match table.peek(tuple, now_secs) {
                    // A racing thread installed this flow while we
                    // derived: use its entry, burn our sfl.
                    Some((sfl2, key2)) => Ok((sfl2, key2)),
                    None => {
                        table.insert(*tuple, sfl, Arc::clone(&key), now_secs);
                        Ok((sfl, key))
                    }
                }
            } else {
                let id: FlowKeyId = (sfl, shared.local.clone(), destination.clone());
                let key = match guard.tfkc.peek(&id) {
                    Some(k) => Arc::clone(k),
                    None => {
                        guard.tfkc.insert(id, Arc::clone(&key));
                        key
                    }
                };
                Ok((sfl, key))
            }
        }
        Err(e) => Err(e),
    };
    (guard, res)
}

/// The §7.2 protect path, with no verdict handling: classify the datagram
/// into a flow, derive/look up its key, and seal the borrowed plaintext
/// into a pool-drawn wire payload (fixing up `header`'s length on
/// success). The caller keeps ownership of the original bytes, so no
/// snapshot copy is ever needed for park/fail-open fallbacks.
#[allow(clippy::too_many_arguments)]
fn protect<'a>(
    shared: &'a HookShared,
    si: usize,
    guard: ShardGuard<'a>,
    header: &mut Ipv4Header,
    payload: &[u8],
    tuple: Option<FiveTuple>,
    pool: &mut BufferPool,
    now_us: u64,
    cfg: &IpMappingConfig,
    obs: &Option<Arc<MetricsRegistry>>,
) -> (ShardGuard<'a>, Result<Vec<u8>, FbsError>) {
    let Some(tuple) = tuple else {
        return (
            guard,
            Err(FbsError::MalformedHeader("payload too short for 5-tuple")),
        );
    };
    let destination = Principal::from_ipv4(header.dst);
    let now_secs = now_us / 1_000_000;
    let (mut guard, resolved) = resolve_tx_key(
        shared,
        si,
        guard,
        &tuple,
        &destination,
        now_secs,
        cfg.combined,
        payload.len() as u64,
        obs,
    );
    match resolved {
        Ok((sfl, key)) => {
            trace_span(
                obs,
                sfl,
                header.src,
                SpanKind::Classify,
                now_us,
                payload.len() as u64,
            );
            let mut out = pool.take();
            let timer = obs.as_ref().map(|_| StageTimer::start());
            match guard
                .codec
                .seal_with_key_into(sfl, &key, payload, cfg.encrypt, &mut out)
            {
                Ok(()) => {
                    if let (Some(reg), Some(timer)) = (obs.as_ref(), timer) {
                        reg.observe_stage(Stage::Seal, timer.elapsed_ns());
                    }
                    trace_span(
                        obs,
                        sfl,
                        header.src,
                        SpanKind::Seal,
                        now_us,
                        out.len() as u64,
                    );
                    let delta = out.len() as isize - payload.len() as isize;
                    header.grow_payload(delta);
                    (guard, Ok(out))
                }
                Err(e) => {
                    pool.put(out);
                    (guard, Err(e))
                }
            }
        }
        Err(e) => (guard, Err(e)),
    }
}

/// Output verdict wrapper: protect, and on a *key-unavailable* failure
/// apply the policy's degradation verdict.
#[allow(clippy::too_many_arguments)]
fn output_item<'a>(
    shared: &'a HookShared,
    si: usize,
    guard: ShardGuard<'a>,
    header: &mut Ipv4Header,
    payload: Vec<u8>,
    tuple: Option<FiveTuple>,
    pool: &mut BufferPool,
    now_us: u64,
    cfg: &IpMappingConfig,
    obs: &Option<Arc<MetricsRegistry>>,
) -> (ShardGuard<'a>, HookOutcome) {
    record(
        obs,
        Event::HookEntry {
            dir: Direction::Output,
        },
    );
    let verdict = degrade_verdict(cfg);
    // protect borrows the payload, so the original bytes are still owned
    // here for the fall-back verdicts — no snapshot copy needed.
    let (mut guard, res) = protect(
        shared, si, guard, header, &payload, tuple, pool, now_us, cfg, obs,
    );
    let outcome = match res {
        Ok(out) => {
            pool.put(payload);
            shared.stats.protected.fetch_add(1, Ordering::Relaxed);
            record(
                obs,
                Event::HookExit {
                    dir: Direction::Output,
                    ok: true,
                },
            );
            HookOutcome::Pass(out)
        }
        Err(e) if e.is_key_unavailable() && verdict != KeyUnavailableVerdict::FailClosed => {
            match verdict {
                KeyUnavailableVerdict::FailOpen => {
                    shared.stats.fail_open.fetch_add(1, Ordering::Relaxed);
                    record(
                        obs,
                        Event::Degraded {
                            dir: Direction::Output,
                            open: true,
                        },
                    );
                    record(
                        obs,
                        Event::HookExit {
                            dir: Direction::Output,
                            ok: true,
                        },
                    );
                    shared.stats.protected.fetch_add(1, Ordering::Relaxed); // it did exit the hook ok
                    HookOutcome::Pass(payload)
                }
                KeyUnavailableVerdict::Park => {
                    let timer = obs.as_ref().map(|_| StageTimer::start());
                    match guard.out_park.park((header.clone(), payload), now_us) {
                        Ok(()) => {
                            if let (Some(reg), Some(timer)) = (obs.as_ref(), timer) {
                                reg.observe_stage(Stage::Park, timer.elapsed_ns());
                            }
                            let queued = guard.out_park.len() as u32;
                            record(obs, Event::Parked { queued });
                            trace_note(obs, "parked", "output", now_us, queued as u64);
                            HookOutcome::Park
                        }
                        Err((_, payload)) => {
                            // Overflow hands the datagram back: recycle its
                            // pooled payload instead of leaking it.
                            pool.put(payload);
                            record(obs, Event::ParkOverflow);
                            shared.stats.output_errors.fetch_add(1, Ordering::Relaxed);
                            record(
                                obs,
                                Event::HookExit {
                                    dir: Direction::Output,
                                    ok: false,
                                },
                            );
                            HookOutcome::Reject(format!("park queue full: {e}"))
                        }
                    }
                }
                KeyUnavailableVerdict::FailClosed => unreachable!("excluded by guard"),
            }
        }
        Err(e) => {
            pool.put(payload);
            if e.is_key_unavailable() {
                shared.stats.fail_closed.fetch_add(1, Ordering::Relaxed);
                record(
                    obs,
                    Event::Degraded {
                        dir: Direction::Output,
                        open: false,
                    },
                );
            }
            shared.stats.output_errors.fetch_add(1, Ordering::Relaxed);
            record(
                obs,
                Event::HookExit {
                    dir: Direction::Output,
                    ok: false,
                },
            );
            HookOutcome::Reject(e.to_string())
        }
    };
    (guard, outcome)
}

/// The verify path, with no verdict handling: parse the FBS framing,
/// resolve the receive flow key (dropping the guard for derivation,
/// rule 1), and verify/decrypt the borrowed wire payload into a
/// pool-drawn plaintext buffer (fixing up `header`'s length on success).
#[allow(clippy::too_many_arguments)]
fn verify<'a>(
    shared: &'a HookShared,
    si: usize,
    mut guard: ShardGuard<'a>,
    header: &mut Ipv4Header,
    payload: &[u8],
    pool: &mut BufferPool,
    obs: &Option<Arc<MetricsRegistry>>,
) -> (ShardGuard<'a>, Result<Vec<u8>, FbsError>) {
    let source = Principal::from_ipv4(header.src);
    let (view, used) = match HeaderView::parse(payload) {
        Ok(v) => v,
        Err(e) => return (guard, Err(e)),
    };
    // R3-4: freshness before key lookup, so a stale datagram is rejected
    // as stale even when its key is unavailable.
    if let Err(e) = guard.codec.check_freshness(view.timestamp) {
        return (guard, Err(e));
    }
    let id: FlowKeyId = (view.sfl, source.clone(), shared.local.clone());
    let resolved = if let Some(k) = guard.rfkc.get_ref(&id) {
        Ok(Arc::clone(k))
    } else {
        drop(guard);
        let derived = derive_key(shared, view.sfl, &source, &source, &shared.local, obs);
        guard = shared.lock_shard(si, obs);
        match derived {
            Ok(key) => Ok(match guard.rfkc.peek(&id) {
                Some(k) => Arc::clone(k),
                None => {
                    guard.rfkc.insert(id, Arc::clone(&key));
                    key
                }
            }),
            Err(e) => Err(e),
        }
    };
    match resolved {
        Ok(key) => {
            let mut body = pool.take();
            let timer = obs.as_ref().map(|_| StageTimer::start());
            match guard
                .codec
                .open_with_key_into(&view, &key, &payload[used..], &mut body)
            {
                Ok(()) => {
                    if let (Some(reg), Some(timer)) = (obs.as_ref(), timer) {
                        reg.observe_stage(Stage::Open, timer.elapsed_ns());
                    }
                    trace_span(
                        obs,
                        view.sfl,
                        header.dst,
                        SpanKind::Open,
                        shared.clock.now_micros(),
                        body.len() as u64,
                    );
                    let delta = payload.len() as isize - body.len() as isize;
                    header.grow_payload(-delta);
                    (guard, Ok(body))
                }
                Err(e) => {
                    pool.put(body);
                    (guard, Err(e))
                }
            }
        }
        Err(e) => (guard, Err(e)),
    }
}

/// Input verdict wrapper. Degradation applies narrowly here:
///
/// * an **unframed** datagram (no FBS header parses) is admitted as-is
///   under fail-open — the counterpart of a fail-open sender;
/// * a **framed** datagram that fails with key-unavailable may be
///   parked; fail-open never admits it (it cannot be verified, and under
///   encryption it is unreadable anyway);
/// * cryptographic failures (MAC, freshness) always reject.
#[allow(clippy::too_many_arguments)]
fn input_item<'a>(
    shared: &'a HookShared,
    si: usize,
    guard: ShardGuard<'a>,
    header: &mut Ipv4Header,
    payload: Vec<u8>,
    pool: &mut BufferPool,
    now_us: u64,
    cfg: &IpMappingConfig,
    obs: &Option<Arc<MetricsRegistry>>,
) -> (ShardGuard<'a>, HookOutcome) {
    record(
        obs,
        Event::HookEntry {
            dir: Direction::Input,
        },
    );
    let verdict = degrade_verdict(cfg);
    let (mut guard, res) = verify(shared, si, guard, header, &payload, pool, obs);
    let outcome = match res {
        Ok(body) => {
            pool.put(payload);
            shared.stats.verified.fetch_add(1, Ordering::Relaxed);
            record(
                obs,
                Event::HookExit {
                    dir: Direction::Input,
                    ok: true,
                },
            );
            HookOutcome::Pass(body)
        }
        Err(FbsError::MalformedHeader(_) | FbsError::UnknownAlgorithm(_))
            if verdict == KeyUnavailableVerdict::FailOpen =>
        {
            shared.stats.fail_open.fetch_add(1, Ordering::Relaxed);
            shared.stats.verified.fetch_add(1, Ordering::Relaxed);
            record(
                obs,
                Event::Degraded {
                    dir: Direction::Input,
                    open: true,
                },
            );
            record(
                obs,
                Event::HookExit {
                    dir: Direction::Input,
                    ok: true,
                },
            );
            HookOutcome::Pass(payload)
        }
        Err(e) if e.is_key_unavailable() && verdict == KeyUnavailableVerdict::Park => {
            let sfl = wire_sfl(&payload);
            let timer = obs.as_ref().map(|_| StageTimer::start());
            match guard.in_park.park((header.clone(), payload), now_us) {
                Ok(()) => {
                    if let (Some(reg), Some(timer)) = (obs.as_ref(), timer) {
                        reg.observe_stage(Stage::Park, timer.elapsed_ns());
                    }
                    let queued = guard.in_park.len() as u32;
                    record(obs, Event::Parked { queued });
                    if let Some(sfl) = sfl {
                        trace_span(
                            obs,
                            sfl,
                            header.dst,
                            SpanKind::Parked,
                            now_us,
                            queued as u64,
                        );
                    }
                    HookOutcome::Park
                }
                Err((_, payload)) => {
                    pool.put(payload);
                    record(obs, Event::ParkOverflow);
                    shared.stats.input_errors.fetch_add(1, Ordering::Relaxed);
                    record(
                        obs,
                        Event::HookExit {
                            dir: Direction::Input,
                            ok: false,
                        },
                    );
                    HookOutcome::Reject(format!("park queue full: {e}"))
                }
            }
        }
        Err(e) => {
            pool.put(payload);
            if e.is_key_unavailable() {
                shared.stats.fail_closed.fetch_add(1, Ordering::Relaxed);
                record(
                    obs,
                    Event::Degraded {
                        dir: Direction::Input,
                        open: false,
                    },
                );
            }
            shared.stats.input_errors.fetch_add(1, Ordering::Relaxed);
            record(
                obs,
                Event::HookExit {
                    dir: Direction::Input,
                    ok: false,
                },
            );
            HookOutcome::Reject(e.to_string())
        }
    };
    (guard, outcome)
}

/// Per-handle reusable batch-partition buffers: cleared-but-kept between
/// [`SecurityHooks::process_batch`] calls so steady-state batching does
/// not allocate. Never shared — each clone starts its own (empty) set.
/// One partitioned datagram: submission index, header, payload, and the
/// pre-extracted 5-tuple (output direction only).
type GroupItem = (usize, Ipv4Header, Vec<u8>, Option<FiveTuple>);

#[derive(Default)]
struct Scratch {
    groups: Vec<Vec<GroupItem>>,
    slots: Vec<Option<(Ipv4Header, HookOutcome)>>,
}

/// FBS security hooks for an IP-like stack. Cheaply cloneable: clones share
/// state, so keep a handle for statistics after installing one into a
/// [`fbs_net::Host`] — and clones may be driven from different threads;
/// datagrams for different flows proceed in parallel, one shard each.
pub struct FbsIpHooks {
    shared: Arc<HookShared>,
    scratch: Scratch,
}

impl Clone for FbsIpHooks {
    fn clone(&self) -> Self {
        FbsIpHooks {
            shared: Arc::clone(&self.shared),
            scratch: Scratch::default(),
        }
    }
}

impl FbsIpHooks {
    /// Wrap an FBS endpoint in IP-mapping hooks. `sfl_seed` randomises the
    /// sfl counters' initial values (§5.3). The endpoint is decomposed:
    /// its MKD moves into the shared [`KeyingService`], and each shard
    /// gets its own [`FlowCodec`] and full-geometry table slices.
    pub fn new(endpoint: FbsEndpoint, cfg: IpMappingConfig, sfl_seed: u64) -> Self {
        let (local, ep_cfg, clock, seed, mkd) = endpoint.into_keying_parts();
        let n = cfg.shards.max(1).next_power_of_two();
        let keying = KeyingService::new(mkd, ep_cfg.mkc_slots, n);
        let endpoint_stats = Arc::new(fbs_core::AtomicEndpointStats::new());
        let tfkc_stats = Arc::new(AtomicCacheStats::new());
        let rfkc_stats = Arc::new(AtomicCacheStats::new());
        let combined_stats = Arc::new(AtomicCombinedStats::new());
        let shards: Box<[Mutex<Shard>]> = (0..n)
            .map(|i| {
                // Strided allocation keeps every sfl this shard issues
                // congruent to i (mod n): `sfl % n` IS the shard index.
                let stride_base = sfl_seed.wrapping_mul(n as u64).wrapping_add(i as u64);
                let mut codec = FlowCodec::new(
                    local.clone(),
                    ep_cfg.clone(),
                    Arc::clone(&clock),
                    seed ^ (i as u64).wrapping_mul(SHARD_SEED_MIX),
                );
                codec.share_stats(Arc::clone(&endpoint_stats));
                let fam = Fam::new(
                    cfg.fst_size,
                    FiveTuplePolicy::new(cfg.threshold_secs)
                        .with_key_unavailable(cfg.key_unavailable),
                    SflAllocator::with_stride(stride_base, n as u64),
                );
                let combined = cfg.combined.then(|| {
                    let mut t = CombinedTable::new(
                        cfg.fst_size,
                        cfg.threshold_secs,
                        // Distinct allocator space from the FAM's (only
                        // one of the two is ever used per configuration).
                        SflAllocator::with_stride(stride_base, n as u64),
                    );
                    t.share_stats(Arc::clone(&combined_stats));
                    t
                });
                let mut tfkc =
                    SoftCache::new(ep_cfg.tfkc_sets, ep_cfg.tfkc_assoc, fbs_core::flow_key_hash);
                tfkc.share_stats(Arc::clone(&tfkc_stats));
                let mut rfkc =
                    SoftCache::new(ep_cfg.rfkc_sets, ep_cfg.rfkc_assoc, fbs_core::flow_key_hash);
                rfkc.share_stats(Arc::clone(&rfkc_stats));
                Mutex::new(Shard {
                    codec,
                    fam,
                    combined,
                    tfkc,
                    rfkc,
                    out_park: ParkingQueue::new(cfg.park_capacity, cfg.park_deadline_us),
                    in_park: ParkingQueue::new(cfg.park_capacity, cfg.park_deadline_us),
                })
            })
            .collect();
        FbsIpHooks {
            shared: Arc::new(HookShared {
                shards,
                keying,
                local,
                clock,
                key_derivation: ep_cfg.key_derivation,
                cfg: Published::new(cfg),
                stats: AtomicHookStats::default(),
                endpoint_stats,
                tfkc_stats,
                rfkc_stats,
                combined_stats,
                shard_contended: AtomicU64::new(0),
                obs: Published::new(None),
            }),
            scratch: Scratch::default(),
        }
    }

    /// Attach a metrics registry: the hooks emit entry/exit events, and
    /// the registry cascades into every shard's codec, FAM, combined
    /// table, and caches, plus the shared keying service.
    pub fn attach_obs(&self, registry: Arc<MetricsRegistry>) {
        self.shared.keying.attach_obs(Arc::clone(&registry));
        for shard in self.shared.shards.iter() {
            let mut g = shard.lock();
            g.codec.set_obs(Arc::clone(&registry));
            g.fam.set_obs(Arc::clone(&registry));
            if let Some(t) = &mut g.combined {
                t.set_obs(Arc::clone(&registry));
            }
            g.tfkc.set_obs(Arc::clone(&registry), CacheKind::Tfkc);
            g.rfkc.set_obs(Arc::clone(&registry), CacheKind::Rfkc);
        }
        self.shared.obs.store(Arc::new(Some(registry)));
    }

    /// Publish a modified configuration snapshot (swap-on-update): in-
    /// flight batches finish under the snapshot they loaded; the next
    /// batch sees the new one. Only policy-ish fields take effect —
    /// geometry (`shards`, `fst_size`, cache dimensions, park capacity)
    /// is fixed at construction.
    pub fn update_config(&self, mutate: impl FnOnce(&mut IpMappingConfig)) {
        let mut next = (*self.shared.cfg.load()).clone();
        mutate(&mut next);
        self.shared.cfg.store(Arc::new(next));
    }

    /// Hook-level statistics — a lock-free atomic snapshot.
    pub fn stats(&self) -> IpHookStats {
        self.shared.stats.snapshot()
    }

    /// Endpoint statistics (sends, drops...) — lock-free.
    pub fn endpoint_stats(&self) -> EndpointStats {
        self.shared.endpoint_stats.snapshot()
    }

    /// TFKC statistics (separate path) — all zeros under `combined`.
    /// Lock-free.
    pub fn tfkc_stats(&self) -> fbs_core::CacheStats {
        self.shared.tfkc_stats.snapshot()
    }

    /// RFKC statistics — lock-free.
    pub fn rfkc_stats(&self) -> fbs_core::CacheStats {
        self.shared.rfkc_stats.snapshot()
    }

    /// MKD statistics (upcalls = master key computations) — lock-free.
    pub fn mkd_stats(&self) -> fbs_core::mkd::MkdStats {
        self.shared.keying.mkd_stats()
    }

    /// Combined-table statistics, when the §7.2 path is active.
    /// Lock-free.
    pub fn combined_stats(&self) -> Option<crate::combined::CombinedStats> {
        self.shared
            .cfg
            .load()
            .combined
            .then(|| self.shared.combined_stats.snapshot())
    }

    /// Number of flow-state shards (a power of two).
    pub fn num_shards(&self) -> usize {
        self.shared.shards.len()
    }

    /// Times a batch found its shard lock already held — lock-free.
    pub fn shard_contention(&self) -> u64 {
        self.shared.shard_contended.load(Ordering::Relaxed)
    }

    /// Per-shard active-flow occupancy at `now_secs` (briefly locks each
    /// shard in turn — a control-plane reader, not a hot-path one).
    pub fn shard_occupancy(&self, now_secs: u64) -> Vec<usize> {
        self.shared
            .shards
            .iter()
            .map(|s| {
                let g = s.lock();
                match &g.combined {
                    Some(c) => c.active_flows(now_secs),
                    None => g.fam.active_flows(now_secs),
                }
            })
            .collect()
    }

    /// Number of currently-active outgoing flows (sums the shards).
    pub fn active_flows(&self, now_secs: u64) -> usize {
        self.shard_occupancy(now_secs).iter().sum()
    }

    /// Drop all flow-key soft state (TFKC, RFKC, and the combined
    /// FST/TFKC when present) — a mid-flow cache flush. Always safe:
    /// soft state is recomputed on demand (§5.3); the next datagram per
    /// flow pays a re-derivation.
    pub fn flush_flow_keys(&self) {
        for shard in self.shared.shards.iter() {
            let mut g = shard.lock();
            g.tfkc.clear();
            g.rfkc.clear();
            if let Some(t) = &mut g.combined {
                t.clear();
            }
        }
    }

    /// Invalidate the cached master key for one peer (forces the next
    /// datagram to/from them through the MKD upcall).
    pub fn forget_peer(&self, peer: &Principal) {
        self.shared.keying.forget_peer(peer);
    }

    /// Current (output, input) parking-queue depths, summed over shards.
    pub fn parked_depths(&self) -> (usize, usize) {
        let mut out = 0;
        let mut inp = 0;
        for shard in self.shared.shards.iter() {
            let g = shard.lock();
            out += g.out_park.len();
            inp += g.in_park.len();
        }
        (out, inp)
    }

    /// Accumulated (output, input) parking counters, summed over shards.
    pub fn park_stats(&self) -> (ParkStats, ParkStats) {
        let mut out = ParkStats::default();
        let mut inp = ParkStats::default();
        for shard in self.shared.shards.iter() {
            let g = shard.lock();
            for (sum, s) in [
                (&mut out, g.out_park.stats()),
                (&mut inp, g.in_park.stats()),
            ] {
                sum.parked += s.parked;
                sum.released += s.released;
                sum.expired += s.expired;
                sum.overflow += s.overflow;
                sum.peak_depth = sum.peak_depth.max(s.peak_depth);
            }
        }
        (out, inp)
    }

    /// The MKD circuit breaker's state for `peer`, if resilience is
    /// configured and the peer has been keyed at least once.
    pub fn breaker_state(&self, peer: &Principal) -> Option<BreakerState> {
        self.shared.keying.breaker_state(peer)
    }

    /// Worst-case payload growth for the configured algorithms: the fixed
    /// header prefix, the (possibly truncated) MAC, and up to 7 bytes of
    /// DES block padding.
    fn overhead_of(cfg: &IpMappingConfig) -> usize {
        let mac_len = cfg.fbs.mac_truncate.unwrap_or(cfg.fbs.mac_alg.output_len());
        let padding = if cfg.encrypt { 7 } else { 0 };
        FIXED_PREFIX_LEN + mac_len + padding
    }
}

impl SecurityHooks for FbsIpHooks {
    fn covers(&self, proto: u8) -> bool {
        // The implementation covers TCP(our MRT) and UDP; the bypass
        // protocol always escapes FBS (Fig. 5). Raw IP is covered as
        // host-level flows only when the footnote-10 extension is on.
        match Proto::from_number(proto) {
            Proto::Mrt | Proto::Udp => true,
            Proto::Bypass => false,
            Proto::Other(_) => self.shared.cfg.load().cover_raw_ip,
        }
    }

    fn max_overhead(&self) -> usize {
        Self::overhead_of(&self.shared.cfg.load())
    }

    /// The single processing entry point (the scalar `output`/`input`
    /// trait defaults wrap it): the batch is partitioned into per-shard
    /// groups ONCE, each group processed under one shard-lock
    /// acquisition (dropped only around key derivations), and outcomes
    /// reassembled in submission order. Protected/verified payloads are
    /// drawn from `pool` and every consumed or rejected buffer is
    /// recycled into it.
    fn process_batch(
        &mut self,
        dir: Direction,
        batch: Vec<Datagram>,
        pool: &mut BufferPool,
        now_us: u64,
    ) -> Vec<(Ipv4Header, HookOutcome)> {
        let shared: &HookShared = &self.shared;
        let cfg = shared.cfg.load();
        let obs = shared.obs_handle();
        let n = shared.shards.len();
        let total = batch.len();
        // The partition and reassembly vectors are per-handle scratch,
        // drained (capacity kept) each call: a steady stream of batches
        // through one handle performs no per-batch scratch allocation.
        let scratch = &mut self.scratch;
        if scratch.groups.len() < n {
            scratch.groups.resize_with(n, Vec::new);
        }
        let timer = obs.as_ref().map(|_| StageTimer::start());
        for (slot, dg) in batch.into_iter().enumerate() {
            let Datagram { header, payload } = dg;
            let (si, tuple) = match dir {
                Direction::Output => {
                    let tuple = tuple_for(&header, &payload);
                    (tx_shard(n, tuple.as_ref()), tuple)
                }
                Direction::Input => (rx_shard(n, &payload), None),
            };
            scratch.groups[si].push((slot, header, payload, tuple));
        }
        scratch.slots.clear();
        scratch.slots.resize_with(total, || None);
        if let (Some(reg), Some(timer)) = (obs.as_ref(), timer) {
            reg.observe_stage(Stage::Partition, timer.elapsed_ns());
        }
        for (si, group) in scratch.groups.iter_mut().enumerate() {
            if group.is_empty() {
                continue;
            }
            if let Some(reg) = &obs {
                reg.incr(Counter::ShardBatches);
            }
            let mut guard = shared.lock_shard(si, &obs);
            // Hold clock starts after acquisition: a group's residency
            // under its shard lock. Key-derivation cache misses briefly
            // drop and re-take the lock inside (rule 1); their window
            // counts toward the group's residency, not as separate
            // holds — the table answers "how long was this shard's
            // state pinned by one batch group".
            let hold = obs.as_ref().map(|_| StageTimer::start());
            for (slot, mut header, payload, tuple) in group.drain(..) {
                let (g, outcome) = match dir {
                    Direction::Output => output_item(
                        shared,
                        si,
                        guard,
                        &mut header,
                        payload,
                        tuple,
                        pool,
                        now_us,
                        &cfg,
                        &obs,
                    ),
                    Direction::Input => input_item(
                        shared,
                        si,
                        guard,
                        &mut header,
                        payload,
                        pool,
                        now_us,
                        &cfg,
                        &obs,
                    ),
                };
                guard = g;
                scratch.slots[slot] = Some((header, outcome));
            }
            drop(guard);
            if let (Some(reg), Some(hold)) = (obs.as_ref(), hold) {
                let ns = hold.elapsed_ns();
                reg.observe_stage(Stage::LockHold, ns);
                reg.shard_lock_hold(si, ns);
            }
        }
        let timer = obs.as_ref().map(|_| StageTimer::start());
        let out: Vec<(Ipv4Header, HookOutcome)> = scratch
            .slots
            .drain(..)
            .map(|s| s.expect("every datagram got a verdict"))
            .collect();
        if let (Some(reg), Some(timer)) = (obs.as_ref(), timer) {
            reg.observe_stage(Stage::Dispatch, timer.elapsed_ns());
        }
        out
    }

    /// Release loop for parked output datagrams: expire the overdue
    /// (recycling their payload buffers), then retry protection for the
    /// rest — skipping (and re-parking) everything headed for a peer
    /// whose circuit breaker would fast-fail, so a wall of parked
    /// traffic cannot hammer a known-broken keying path. The fast-fail
    /// probe takes the MKD lock, so it runs with no shard lock held.
    fn release_output(&mut self, now_us: u64, pool: &mut BufferPool) -> Vec<(Ipv4Header, Vec<u8>)> {
        let shared: &HookShared = &self.shared;
        let cfg = shared.cfg.load();
        let obs = shared.obs_handle();
        let mut ready = Vec::new();
        let timer = obs.as_ref().map(|_| StageTimer::start());
        let mut did_work = false;
        for si in 0..shared.shards.len() {
            let entries = {
                let mut guard = shared.lock_shard(si, &obs);
                for expired in guard.out_park.take_expired(now_us) {
                    let (_header, payload) = expired.item;
                    pool.put(payload);
                    record(&obs, Event::ParkExpired);
                    trace_note(&obs, "park_expired", "output", now_us, 0);
                    did_work = true;
                }
                if guard.out_park.is_empty() {
                    continue;
                }
                guard.out_park.take_all()
            };
            for entry in entries {
                did_work = true;
                let Parked {
                    item: (mut header, payload),
                    parked_at_us,
                    deadline_us,
                } = entry;
                let peer = Principal::from_ipv4(header.dst);
                if shared.keying.would_fast_fail(&peer) {
                    let mut guard = shared.lock_shard(si, &obs);
                    if let Err((_, payload)) = guard.out_park.repark(Parked {
                        item: (header, payload),
                        parked_at_us,
                        deadline_us,
                    }) {
                        pool.put(payload);
                        record(&obs, Event::ParkOverflow);
                    }
                    continue;
                }
                let tuple = tuple_for(&header, &payload);
                let guard = shared.lock_shard(si, &obs);
                let (mut guard, res) = protect(
                    shared,
                    si,
                    guard,
                    &mut header,
                    &payload,
                    tuple,
                    pool,
                    now_us,
                    &cfg,
                    &obs,
                );
                match res {
                    Ok(protected) => {
                        let waited_us = guard.out_park.note_released(parked_at_us, now_us);
                        shared.stats.protected.fetch_add(1, Ordering::Relaxed);
                        record(&obs, Event::ParkReleased { waited_us });
                        record(
                            &obs,
                            Event::HookExit {
                                dir: Direction::Output,
                                ok: true,
                            },
                        );
                        // The sealed payload leads with the sfl the flow
                        // finally resolved to — the released trace span
                        // joins the flow the park had no identity for.
                        if let Some(sfl) = wire_sfl(&protected) {
                            trace_span(
                                &obs,
                                sfl,
                                header.src,
                                SpanKind::Released,
                                now_us,
                                waited_us,
                            );
                        }
                        pool.put(payload);
                        ready.push((header, protected));
                    }
                    Err(e) if e.is_key_unavailable() => {
                        // Still no key: back to the queue with the
                        // original deadline (drops at expiry, never
                        // grows unbounded). protect only borrowed the
                        // payload, so it is still owned here.
                        trace_note(&obs, "reparked", "output", now_us, 0);
                        if let Err((_, payload)) = guard.out_park.repark(Parked {
                            item: (header, payload),
                            parked_at_us,
                            deadline_us,
                        }) {
                            pool.put(payload);
                            record(&obs, Event::ParkOverflow);
                        }
                    }
                    Err(_) => {
                        shared.stats.output_errors.fetch_add(1, Ordering::Relaxed);
                        record(
                            &obs,
                            Event::HookExit {
                                dir: Direction::Output,
                                ok: false,
                            },
                        );
                        pool.put(payload);
                    }
                }
            }
        }
        if did_work {
            if let (Some(reg), Some(timer)) = (obs.as_ref(), timer) {
                reg.observe_stage(Stage::Release, timer.elapsed_ns());
            }
        }
        ready
    }

    /// Release loop for parked input datagrams, mirroring
    /// [`Self::release_output`] with the peer taken from the source
    /// address; the consumed wire payload of every verified release is
    /// recycled into `pool`.
    fn release_input(&mut self, now_us: u64, pool: &mut BufferPool) -> Vec<(Ipv4Header, Vec<u8>)> {
        let shared: &HookShared = &self.shared;
        let obs = shared.obs_handle();
        let mut ready = Vec::new();
        let timer = obs.as_ref().map(|_| StageTimer::start());
        let mut did_work = false;
        for si in 0..shared.shards.len() {
            let entries = {
                let mut guard = shared.lock_shard(si, &obs);
                for expired in guard.in_park.take_expired(now_us) {
                    let (header, payload) = expired.item;
                    if let Some(sfl) = wire_sfl(&payload) {
                        trace_span(&obs, sfl, header.dst, SpanKind::Expired, now_us, 0);
                    }
                    pool.put(payload);
                    record(&obs, Event::ParkExpired);
                    did_work = true;
                }
                if guard.in_park.is_empty() {
                    continue;
                }
                guard.in_park.take_all()
            };
            for entry in entries {
                did_work = true;
                let Parked {
                    item: (mut header, payload),
                    parked_at_us,
                    deadline_us,
                } = entry;
                let peer = Principal::from_ipv4(header.src);
                if shared.keying.would_fast_fail(&peer) {
                    let mut guard = shared.lock_shard(si, &obs);
                    if let Err((_, payload)) = guard.in_park.repark(Parked {
                        item: (header, payload),
                        parked_at_us,
                        deadline_us,
                    }) {
                        pool.put(payload);
                        record(&obs, Event::ParkOverflow);
                    }
                    continue;
                }
                let guard = shared.lock_shard(si, &obs);
                let (mut guard, res) = verify(shared, si, guard, &mut header, &payload, pool, &obs);
                match res {
                    Ok(body) => {
                        let waited_us = guard.in_park.note_released(parked_at_us, now_us);
                        shared.stats.verified.fetch_add(1, Ordering::Relaxed);
                        record(&obs, Event::ParkReleased { waited_us });
                        record(
                            &obs,
                            Event::HookExit {
                                dir: Direction::Input,
                                ok: true,
                            },
                        );
                        if let Some(sfl) = wire_sfl(&payload) {
                            trace_span(
                                &obs,
                                sfl,
                                header.dst,
                                SpanKind::Released,
                                now_us,
                                waited_us,
                            );
                        }
                        pool.put(payload);
                        ready.push((header, body));
                    }
                    Err(e) if e.is_key_unavailable() => {
                        if let Some(sfl) = wire_sfl(&payload) {
                            trace_span(&obs, sfl, header.dst, SpanKind::Reparked, now_us, 0);
                        }
                        if let Err((_, payload)) = guard.in_park.repark(Parked {
                            item: (header, payload),
                            parked_at_us,
                            deadline_us,
                        }) {
                            pool.put(payload);
                            record(&obs, Event::ParkOverflow);
                        }
                    }
                    Err(_) => {
                        shared.stats.input_errors.fetch_add(1, Ordering::Relaxed);
                        record(
                            &obs,
                            Event::HookExit {
                                dir: Direction::Input,
                                ok: false,
                            },
                        );
                        pool.put(payload);
                    }
                }
            }
        }
        if did_work {
            if let (Some(reg), Some(timer)) = (obs.as_ref(), timer) {
                reg.observe_stage(Stage::Release, timer.elapsed_ns());
            }
        }
        ready
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::host::build_secure_host;
    use fbs_cert::{CertificateAuthority, Directory};
    use fbs_core::ManualClock;
    use fbs_crypto::dh::DhGroup;
    use fbs_net::ip::Ipv4Addr;
    use std::time::Duration;

    const A: Ipv4Addr = [10, 9, 0, 1];
    const B: Ipv4Addr = [10, 9, 0, 2];

    struct World {
        clock: ManualClock,
        ca: CertificateAuthority,
        directory: Arc<Directory>,
        group: DhGroup,
    }

    impl World {
        fn new() -> Self {
            World {
                clock: ManualClock::starting_at(0),
                ca: CertificateAuthority::new("degrade-test-ca", [0xD6; 16]),
                directory: Arc::new(Directory::new(Duration::ZERO)),
                group: DhGroup::test_group(),
            }
        }

        /// Build hooks for `addr` (publishing its certificate).
        fn host(&self, addr: Ipv4Addr) -> FbsIpHooks {
            let (_host, hooks) = build_secure_host(
                addr,
                1500,
                self.cfg(),
                self.clock.clone(),
                &self.group,
                &self.ca,
                &self.directory,
                42,
            );
            hooks
        }

        fn cfg(&self) -> IpMappingConfig {
            IpMappingConfig::default()
        }
    }

    fn udp_datagram(src: Ipv4Addr, dst: Ipv4Addr) -> (Ipv4Header, Vec<u8>) {
        // 4-byte port prefix so the 5-tuple extracts, then a body.
        let mut payload = vec![0x0F, 0xA0, 0x00, 0x35];
        payload.extend_from_slice(b"degradation test body");
        let header = Ipv4Header::new(src, dst, Proto::Udp, payload.len());
        (header, payload)
    }

    fn hooks_with(world: &World, cfg: IpMappingConfig) -> FbsIpHooks {
        let (_host, hooks) = build_secure_host(
            A,
            1500,
            cfg,
            world.clock.clone(),
            &world.group,
            &world.ca,
            &world.directory,
            42,
        );
        hooks
    }

    #[test]
    fn key_unavailable_fails_closed_by_default() {
        let world = World::new();
        let mut hooks = world.host(A); // B's certificate never published
        let (mut header, payload) = udp_datagram(A, B);
        let out = hooks.output(&mut header, payload, 1_000);
        assert!(matches!(out, HookOutcome::Reject(_)), "{out:?}");
        let s = hooks.stats();
        assert_eq!(s.fail_closed, 1);
        assert_eq!(s.output_errors, 1);
        assert_eq!(s.fail_open, 0);
    }

    #[test]
    fn fail_open_passes_plaintext_when_not_confidential() {
        let world = World::new();
        let cfg = IpMappingConfig {
            encrypt: false,
            key_unavailable: KeyUnavailableVerdict::FailOpen,
            ..IpMappingConfig::default()
        };
        let mut hooks = hooks_with(&world, cfg);
        let (mut header, payload) = udp_datagram(A, B);
        let before = header.total_len;
        let out = hooks.output(&mut header, payload.clone(), 1_000);
        match out {
            HookOutcome::Pass(bytes) => assert_eq!(bytes, payload, "original plaintext"),
            other => panic!("expected fail-open pass, got {other:?}"),
        }
        assert_eq!(header.total_len, before, "no FBS overhead added");
        assert_eq!(hooks.stats().fail_open, 1);
    }

    #[test]
    fn fail_open_downgrades_to_fail_closed_under_encryption() {
        let world = World::new();
        let cfg = IpMappingConfig {
            encrypt: true,
            key_unavailable: KeyUnavailableVerdict::FailOpen,
            ..IpMappingConfig::default()
        };
        let mut hooks = hooks_with(&world, cfg);
        let (mut header, payload) = udp_datagram(A, B);
        let out = hooks.output(&mut header, payload, 1_000);
        assert!(matches!(out, HookOutcome::Reject(_)), "{out:?}");
        assert_eq!(hooks.stats().fail_closed, 1);
        assert_eq!(hooks.stats().fail_open, 0);
    }

    #[test]
    fn fail_open_input_admits_only_unframed_datagrams() {
        let world = World::new();
        let cfg = IpMappingConfig {
            encrypt: false,
            key_unavailable: KeyUnavailableVerdict::FailOpen,
            ..IpMappingConfig::default()
        };
        let mut hooks = hooks_with(&world, cfg);
        // A bare datagram with no FBS framing: decode fails, fail-open
        // admits it untouched.
        let (mut header, payload) = udp_datagram(B, A);
        let out = hooks.input(&mut header, payload.clone(), 1_000);
        match out {
            HookOutcome::Pass(bytes) => assert_eq!(bytes, payload),
            other => panic!("expected fail-open admit, got {other:?}"),
        }
        assert_eq!(hooks.stats().fail_open, 1);
    }

    #[test]
    fn crypto_failures_never_degrade() {
        // Even under fail-open, a framed datagram with a bad MAC is
        // rejected: crypto verdicts are final.
        let world = World::new();
        let cfg = IpMappingConfig {
            encrypt: false,
            key_unavailable: KeyUnavailableVerdict::FailOpen,
            ..IpMappingConfig::default()
        };
        let mut sender = hooks_with(&world, cfg.clone());
        let mut receiver = world.host(B);
        let (mut header, payload) = udp_datagram(A, B);
        let out = sender.output(&mut header, payload, 1_000);
        let mut wire = match out {
            HookOutcome::Pass(bytes) => bytes,
            other => panic!("sender should protect, got {other:?}"),
        };
        // Flip a bit in the MAC region (the tail).
        let last = wire.len() - 1;
        wire[last] ^= 0x40;
        let mut rx_header = header.clone();
        rx_header.src = A;
        rx_header.dst = B;
        let got = receiver.input(&mut rx_header, wire, 1_000);
        assert!(matches!(got, HookOutcome::Reject(_)), "{got:?}");
        assert_eq!(receiver.stats().input_errors, 1);
        assert_eq!(
            receiver.stats().fail_open,
            0,
            "MAC failure must not degrade"
        );
    }

    #[test]
    fn park_holds_then_releases_when_key_arrives() {
        let world = World::new();
        let cfg = IpMappingConfig {
            key_unavailable: KeyUnavailableVerdict::Park,
            park_deadline_us: 10_000_000,
            ..IpMappingConfig::default()
        };
        let mut hooks = hooks_with(&world, cfg);
        let mut pool = BufferPool::new();
        let (mut header, payload) = udp_datagram(A, B);
        let out = hooks.output(&mut header, payload, 1_000);
        assert!(matches!(out, HookOutcome::Park), "{out:?}");
        assert_eq!(hooks.parked_depths(), (1, 0));

        // Still keyless: the release pass re-parks, does not drop.
        assert!(hooks.release_output(2_000, &mut pool).is_empty());
        assert_eq!(hooks.parked_depths(), (1, 0));

        // B comes online (certificate published); the parked datagram
        // is protected and released on the next poll.
        let _hb = world.host(B);
        let released = hooks.release_output(3_000, &mut pool);
        assert_eq!(released.len(), 1);
        let (rel_header, rel_payload) = &released[0];
        assert!(rel_payload.len() > 25, "released payload is protected");
        assert_eq!(rel_header.dst, B);
        assert_eq!(hooks.parked_depths(), (0, 0));
        let (out_stats, _) = hooks.park_stats();
        assert_eq!(out_stats.released, 1);
        assert_eq!(out_stats.expired, 0);
        assert_eq!(hooks.stats().protected, 1);
        // The consumed plaintext went back to the pool.
        assert_eq!(pool.stats().returns, 1);
    }

    #[test]
    fn park_queue_overflow_rejects() {
        let world = World::new();
        let cfg = IpMappingConfig {
            key_unavailable: KeyUnavailableVerdict::Park,
            park_capacity: 2,
            ..IpMappingConfig::default()
        };
        let mut hooks = hooks_with(&world, cfg);
        for i in 0..2 {
            let (mut header, payload) = udp_datagram(A, B);
            let out = hooks.output(&mut header, payload, 1_000 + i);
            assert!(matches!(out, HookOutcome::Park));
        }
        let (mut header, payload) = udp_datagram(A, B);
        let out = hooks.output(&mut header, payload, 2_000);
        assert!(matches!(out, HookOutcome::Reject(_)), "{out:?}");
        let (out_stats, _) = hooks.park_stats();
        assert_eq!(out_stats.overflow, 1);
        assert_eq!(hooks.parked_depths(), (2, 0));
    }

    #[test]
    fn park_overflow_recycles_the_rejected_payload() {
        // Same scenario as above, but driven through process_batch with
        // an observable pool: the overflow reject must hand the payload
        // buffer back instead of leaking it.
        let world = World::new();
        let cfg = IpMappingConfig {
            key_unavailable: KeyUnavailableVerdict::Park,
            park_capacity: 2,
            ..IpMappingConfig::default()
        };
        let mut hooks = hooks_with(&world, cfg);
        let mut pool = BufferPool::new();
        let batch: Vec<Datagram> = (0..3)
            .map(|_| {
                let (header, payload) = udp_datagram(A, B);
                Datagram { header, payload }
            })
            .collect();
        let out = hooks.process_batch(Direction::Output, batch, &mut pool, 1_000);
        assert!(matches!(out[0].1, HookOutcome::Park));
        assert!(matches!(out[1].1, HookOutcome::Park));
        assert!(matches!(out[2].1, HookOutcome::Reject(_)));
        assert_eq!(
            pool.stats().returns,
            1,
            "the overflowed datagram's payload must be recycled"
        );
    }

    #[test]
    fn parked_datagrams_expire_at_their_deadline() {
        let world = World::new();
        let cfg = IpMappingConfig {
            key_unavailable: KeyUnavailableVerdict::Park,
            park_deadline_us: 5_000,
            ..IpMappingConfig::default()
        };
        let mut hooks = hooks_with(&world, cfg);
        let mut pool = BufferPool::new();
        let (mut header, payload) = udp_datagram(A, B);
        assert!(matches!(
            hooks.output(&mut header, payload, 1_000),
            HookOutcome::Park
        ));
        // Repeated keyless release passes must not reset the deadline.
        assert!(hooks.release_output(3_000, &mut pool).is_empty());
        assert!(hooks.release_output(5_000, &mut pool).is_empty());
        assert!(hooks.release_output(6_001, &mut pool).is_empty());
        assert_eq!(hooks.parked_depths(), (0, 0), "expired, not retained");
        let (out_stats, _) = hooks.park_stats();
        assert_eq!(out_stats.expired, 1);
        assert_eq!(out_stats.released, 0);
        // Expiry recycled the parked payload buffer into the pool.
        assert_eq!(pool.stats().returns, 1);
    }

    #[test]
    fn input_park_releases_after_sender_cert_appears() {
        // Receiver-side parking: the wire datagram arrives before the
        // receiver can fetch the sender's public value.
        let world = World::new();
        let park_cfg = IpMappingConfig {
            key_unavailable: KeyUnavailableVerdict::Park,
            park_deadline_us: 10_000_000,
            ..IpMappingConfig::default()
        };
        // Receiver A parks; its directory view is a SEPARATE directory
        // that never saw the sender's certificate.
        let receiver_world = World::new();
        let mut receiver = hooks_with(&receiver_world, park_cfg);

        // Sender B lives in `world` with both certificates present —
        // publish A's certificate there by building A's endpoint too.
        let _a_in_world = world.host(A);
        let (_host_b, _) = build_secure_host(
            B,
            1500,
            IpMappingConfig::default(),
            world.clock.clone(),
            &world.group,
            &world.ca,
            &world.directory,
            42,
        );
        let mut sender = {
            let (_h, hooks) = build_secure_host(
                B,
                1500,
                IpMappingConfig::default(),
                world.clock.clone(),
                &world.group,
                &world.ca,
                &world.directory,
                43,
            );
            hooks
        };
        let (mut header, payload) = udp_datagram(B, A);
        let wire = match sender.output(&mut header, payload.clone(), 1_000) {
            HookOutcome::Pass(bytes) => bytes,
            other => panic!("sender should protect, got {other:?}"),
        };

        let mut rx_header = header.clone();
        let out = receiver.input(&mut rx_header, wire, 1_000);
        assert!(matches!(out, HookOutcome::Park), "{out:?}");
        assert_eq!(receiver.parked_depths(), (0, 1));

        // Sender's certificate reaches the receiver's directory; note
        // the sender in `world` signs with the same CA key, so the
        // receiver's verifier accepts it.
        let b_cert = world.directory.fetch(&Principal::from_ipv4(B)).unwrap();
        receiver_world.directory.publish(b_cert);
        let mut pool = BufferPool::new();
        let released = receiver.release_input(2_000, &mut pool);
        assert_eq!(released.len(), 1);
        assert_eq!(released[0].1, payload, "verified plaintext");
        assert_eq!(receiver.parked_depths(), (0, 0));
        assert_eq!(receiver.stats().verified, 1);
        // The consumed wire payload went back to the pool.
        assert_eq!(pool.stats().returns, 1);
    }

    #[test]
    fn stats_reads_never_touch_shard_locks() {
        // Regression for the sharded design's core promise: a stats
        // scrape completes while every shard lock is held by someone
        // else (a batch mid-flight). If any accessor below took a shard
        // lock, this test would deadlock.
        let world = World::new();
        let hooks = world.host(A);
        let guards: Vec<_> = hooks.shared.shards.iter().map(|s| s.lock()).collect();
        let _ = hooks.stats();
        let _ = hooks.endpoint_stats();
        let _ = hooks.tfkc_stats();
        let _ = hooks.rfkc_stats();
        let _ = hooks.mkd_stats();
        let _ = hooks.combined_stats();
        let _ = hooks.shard_contention();
        let _ = hooks.num_shards();
        drop(guards);
    }

    #[test]
    fn config_snapshot_swaps_without_rebuilding_state() {
        // Publish-on-update: the same hooks flip from fail-closed to
        // fail-open at runtime; no shard state is rebuilt.
        let world = World::new();
        let mut hooks = world.host(A); // B never published → keyless
        let (mut header, payload) = udp_datagram(A, B);
        let out = hooks.output(&mut header, payload, 1_000);
        assert!(matches!(out, HookOutcome::Reject(_)), "{out:?}");
        hooks.update_config(|c| {
            c.encrypt = false;
            c.key_unavailable = KeyUnavailableVerdict::FailOpen;
        });
        let (mut header, payload) = udp_datagram(A, B);
        let out = hooks.output(&mut header, payload, 2_000);
        assert!(matches!(out, HookOutcome::Pass(_)), "{out:?}");
        assert_eq!(hooks.stats().fail_open, 1);
        assert_eq!(hooks.stats().fail_closed, 1);
    }

    #[test]
    fn batch_outcomes_stay_in_submission_order_across_shards() {
        // Flows with different tuples land in different shards; the
        // returned vec must still be positionally aligned with the
        // submitted batch.
        let world = World::new();
        let mut sender = world.host(A);
        let _receiver = world.host(B); // publishes B's certificate
        let mut pool = BufferPool::new();
        let batch: Vec<Datagram> = (0..16u16)
            .map(|i| {
                let mut payload = vec![0x0F, (0xA0 + i) as u8, 0x00, 0x35];
                payload.extend_from_slice(b"order test body");
                let mut header = Ipv4Header::new(A, B, Proto::Udp, payload.len());
                header.id = i; // tag each datagram through its header
                Datagram { header, payload }
            })
            .collect();
        let out = sender.process_batch(Direction::Output, batch, &mut pool, 1_000);
        assert_eq!(out.len(), 16);
        for (i, (header, outcome)) in out.iter().enumerate() {
            assert_eq!(header.id as usize, i, "submission order preserved");
            assert!(matches!(outcome, HookOutcome::Pass(_)), "{outcome:?}");
        }
        let cs = sender.combined_stats().unwrap();
        assert_eq!(cs.new_flows as usize, 16);
        assert!(
            sender.num_shards() > 1,
            "default config must actually shard"
        );
    }
}
