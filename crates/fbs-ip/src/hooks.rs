//! The `ip_fbs.c` analogue: FBS processing hooked into the stack.
//!
//! Output (§7.2): between IP output processing and fragmentation, the
//! datagram is classified into a flow, protected, and the security flow
//! header is inserted between the IP header and the transport payload;
//! the IP length fields are fixed up. "To IP, the FBS header is simply a
//! part of the higher layer header" — forwarding routers see nothing
//! strange.
//!
//! Input: between reassembly and dispatch, the FBS header is removed and
//! verified; failures drop the datagram before it reaches the transport.

use crate::combined::CombinedTable;
use crate::policy::FiveTuplePolicy;
use crate::tuple::FiveTuple;
use fbs_core::header::FIXED_PREFIX_LEN;
use fbs_core::{Datagram, Fam, FbsConfig, FbsEndpoint, Principal, ProtectedDatagram, SflAllocator};
use fbs_net::ip::Proto;
use fbs_net::{Ipv4Header, SecurityHooks};
use fbs_obs::{Direction, Event, MetricsRegistry, MetricsSnapshot};
use parking_lot::Mutex;
use std::sync::Arc;

/// Configuration of the IP mapping.
#[derive(Clone, Debug)]
pub struct IpMappingConfig {
    /// Flow idle expiry (Fig. 7's THRESHOLD).
    pub threshold_secs: u64,
    /// Flow state table size (Fig. 7's FSTSIZE).
    pub fst_size: usize,
    /// Request data confidentiality (DES) for covered datagrams; false =
    /// authentication only (keyed MD5), the paper's non-secret mode.
    pub encrypt: bool,
    /// Use the combined FST/TFKC send path of §7.2 (the implementation's
    /// choice); false = the textbook separate FAM + TFKC path of Fig. 4/6.
    pub combined: bool,
    /// Also protect raw-IP protocols (everything except the bypass
    /// protocol) as **host-level flows** — the treatment §7.1 footnote 10
    /// sketches for ICMP/IGMP: "raw IP can be considered as host-level
    /// flows". The paper's implementation left this out; it is provided as
    /// the documented extension. Default off for fidelity.
    pub cover_raw_ip: bool,
    /// The underlying FBS endpoint configuration.
    pub fbs: FbsConfig,
}

impl Default for IpMappingConfig {
    fn default() -> Self {
        IpMappingConfig {
            threshold_secs: crate::policy::DEFAULT_THRESHOLD_SECS,
            fst_size: crate::policy::DEFAULT_FST_SIZE,
            encrypt: true,
            combined: true,
            cover_raw_ip: false,
            fbs: FbsConfig::default(),
        }
    }
}

/// Counters for the hook layer.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct IpHookStats {
    /// Datagrams protected on output.
    pub protected: u64,
    /// Datagrams verified and stripped on input.
    pub verified: u64,
    /// Output datagrams rejected (keying failure, tuple extraction...).
    pub output_errors: u64,
    /// Input datagrams rejected (MAC, freshness, framing...).
    pub input_errors: u64,
}

impl IpHookStats {
    /// Total output-hook invocations.
    pub fn output_entries(&self) -> u64 {
        self.protected + self.output_errors
    }

    /// Total input-hook invocations.
    pub fn input_entries(&self) -> u64 {
        self.verified + self.input_errors
    }

    /// Fold these counters into a snapshot under the `hooks.*` names a
    /// live [`MetricsRegistry`] uses.
    pub fn contribute(&self, snap: &mut MetricsSnapshot) {
        snap.add("hooks.output_entries", self.output_entries());
        snap.add("hooks.output_ok", self.protected);
        snap.add("hooks.output_errors", self.output_errors);
        snap.add("hooks.input_entries", self.input_entries());
        snap.add("hooks.input_ok", self.verified);
        snap.add("hooks.input_errors", self.input_errors);
    }
}

struct Inner {
    endpoint: FbsEndpoint,
    /// Textbook path: FAM with the Fig. 7 policy (endpoint TFKC handles
    /// keys).
    fam: Fam<FiveTuple, FiveTuplePolicy>,
    /// §7.2 path: merged FST/TFKC, used when `cfg.combined`.
    combined: Option<CombinedTable>,
    cfg: IpMappingConfig,
    stats: IpHookStats,
    obs: Option<Arc<MetricsRegistry>>,
}

impl Inner {
    fn hook_entry(&self, dir: Direction) {
        if let Some(reg) = &self.obs {
            reg.record(Event::HookEntry { dir });
        }
    }

    fn hook_exit(&self, dir: Direction, ok: bool) {
        if let Some(reg) = &self.obs {
            reg.record(Event::HookExit { dir, ok });
        }
    }
}

/// FBS security hooks for an IP-like stack. Cheaply cloneable: clones share
/// state, so keep a handle for statistics after installing one into a
/// [`fbs_net::Host`].
#[derive(Clone)]
pub struct FbsIpHooks {
    inner: Arc<Mutex<Inner>>,
}

impl FbsIpHooks {
    /// Wrap an FBS endpoint in IP-mapping hooks. `sfl_seed` randomises the
    /// sfl counter's initial value (§5.3).
    pub fn new(endpoint: FbsEndpoint, cfg: IpMappingConfig, sfl_seed: u64) -> Self {
        let fam = Fam::new(
            cfg.fst_size,
            FiveTuplePolicy::new(cfg.threshold_secs),
            SflAllocator::new(sfl_seed),
        );
        let combined = cfg.combined.then(|| {
            CombinedTable::new(
                cfg.fst_size,
                cfg.threshold_secs,
                // Distinct allocator space from the FAM's (only one of the
                // two is ever used for a given configuration).
                SflAllocator::new(sfl_seed),
            )
        });
        FbsIpHooks {
            inner: Arc::new(Mutex::new(Inner {
                endpoint,
                fam,
                combined,
                cfg,
                stats: IpHookStats::default(),
                obs: None,
            })),
        }
    }

    /// Attach a metrics registry: the hooks emit entry/exit events, and
    /// the registry cascades into the wrapped endpoint (and its caches),
    /// the FAM, and the combined table when present.
    pub fn attach_obs(&self, registry: Arc<MetricsRegistry>) {
        let mut inner = self.inner.lock();
        inner.endpoint.attach_obs(Arc::clone(&registry));
        inner.fam.set_obs(Arc::clone(&registry));
        if let Some(table) = &mut inner.combined {
            table.set_obs(Arc::clone(&registry));
        }
        inner.obs = Some(registry);
    }

    /// Hook-level statistics.
    pub fn stats(&self) -> IpHookStats {
        self.inner.lock().stats
    }

    /// Endpoint statistics (sends, drops...).
    pub fn endpoint_stats(&self) -> fbs_core::protocol::EndpointStats {
        self.inner.lock().endpoint.stats()
    }

    /// TFKC statistics (separate path) — all zeros under `combined`.
    pub fn tfkc_stats(&self) -> fbs_core::CacheStats {
        self.inner.lock().endpoint.tfkc_stats()
    }

    /// RFKC statistics.
    pub fn rfkc_stats(&self) -> fbs_core::CacheStats {
        self.inner.lock().endpoint.rfkc_stats()
    }

    /// MKD statistics (upcalls = master key computations).
    pub fn mkd_stats(&self) -> fbs_core::mkd::MkdStats {
        self.inner.lock().endpoint.mkd_stats()
    }

    /// Combined-table statistics, when the §7.2 path is active.
    pub fn combined_stats(&self) -> Option<crate::combined::CombinedStats> {
        self.inner.lock().combined.as_ref().map(|c| c.stats())
    }

    /// Number of currently-active outgoing flows.
    pub fn active_flows(&self, now_secs: u64) -> usize {
        let inner = self.inner.lock();
        match &inner.combined {
            Some(c) => c.active_flows(now_secs),
            None => inner.fam.active_flows(now_secs),
        }
    }

    /// Worst-case payload growth for the configured algorithms: the fixed
    /// header prefix, the (possibly truncated) MAC, and up to 7 bytes of
    /// DES block padding.
    fn overhead_of(cfg: &IpMappingConfig) -> usize {
        let mac_len = cfg.fbs.mac_truncate.unwrap_or(cfg.fbs.mac_alg.output_len());
        let padding = if cfg.encrypt { 7 } else { 0 };
        FIXED_PREFIX_LEN + mac_len + padding
    }
}

impl SecurityHooks for FbsIpHooks {
    fn covers(&self, proto: u8) -> bool {
        // The implementation covers TCP(our MRT) and UDP; the bypass
        // protocol always escapes FBS (Fig. 5). Raw IP is covered as
        // host-level flows only when the footnote-10 extension is on.
        match Proto::from_number(proto) {
            Proto::Mrt | Proto::Udp => true,
            Proto::Bypass => false,
            Proto::Other(_) => self.inner.lock().cfg.cover_raw_ip,
        }
    }

    fn max_overhead(&self) -> usize {
        Self::overhead_of(&self.inner.lock().cfg)
    }

    fn output(
        &mut self,
        header: &mut Ipv4Header,
        payload: Vec<u8>,
        now_us: u64,
    ) -> Result<Vec<u8>, String> {
        let mut inner = self.inner.lock();
        output_locked(&mut inner, header, payload, now_us)
    }

    /// Batch output: the shared state is locked ONCE for the whole batch
    /// rather than once per datagram, so concurrent input processing (or a
    /// stats reader) contends per batch, not per packet.
    fn output_batch(
        &mut self,
        items: Vec<(Ipv4Header, Vec<u8>)>,
        now_us: u64,
    ) -> Vec<(Ipv4Header, Result<Vec<u8>, String>)> {
        let mut inner = self.inner.lock();
        items
            .into_iter()
            .map(|(mut header, payload)| {
                let res = output_locked(&mut inner, &mut header, payload, now_us);
                (header, res)
            })
            .collect()
    }
    fn input(
        &mut self,
        header: &mut Ipv4Header,
        payload: Vec<u8>,
        _now_us: u64,
    ) -> Result<Vec<u8>, String> {
        let mut inner = self.inner.lock();
        inner.hook_entry(Direction::Input);
        let wire_len = payload.len();
        let pd = ProtectedDatagram::decode_payload(
            Principal::from_ipv4(header.src),
            Principal::from_ipv4(header.dst),
            &payload,
        )
        .map_err(|e| {
            inner.stats.input_errors += 1;
            inner.hook_exit(Direction::Input, false);
            e.to_string()
        })?;
        match inner.endpoint.receive(pd) {
            Ok(datagram) => {
                let delta = wire_len as isize - datagram.body.len() as isize;
                header.grow_payload(-delta);
                inner.stats.verified += 1;
                inner.hook_exit(Direction::Input, true);
                Ok(datagram.body)
            }
            Err(e) => {
                inner.stats.input_errors += 1;
                inner.hook_exit(Direction::Input, false);
                Err(e.to_string())
            }
        }
    }
}

/// The §7.2 output path, run with the shared state already locked —
/// `SecurityHooks::output` locks per datagram, `output_batch` once per
/// batch.
fn output_locked(
    inner: &mut Inner,
    header: &mut Ipv4Header,
    payload: Vec<u8>,
    now_us: u64,
) -> Result<Vec<u8>, String> {
    inner.hook_entry(Direction::Output);
    let now_secs = now_us / 1_000_000;
    let is_transport = matches!(Proto::from_number(header.proto), Proto::Mrt | Proto::Udp);
    let tuple = if is_transport {
        match FiveTuple::extract(header.proto, header.src, header.dst, &payload) {
            Some(t) => t,
            None => {
                inner.stats.output_errors += 1;
                inner.hook_exit(Direction::Output, false);
                return Err("payload too short for 5-tuple extraction".into());
            }
        }
    } else {
        // Footnote-10 extension: raw IP forms host-level flows — the
        // "5-tuple" degenerates to (proto, saddr, daddr).
        FiveTuple {
            proto: header.proto,
            saddr: header.src,
            sport: 0,
            daddr: header.dst,
            dport: 0,
        }
    };
    let datagram = Datagram {
        source: Principal::from_ipv4(header.src),
        destination: Principal::from_ipv4(header.dst),
        body: payload,
    };
    let secret = inner.cfg.encrypt;
    let result = match &mut inner.combined {
        // §7.2: one lookup resolves flow identity AND key.
        Some(table) => {
            let endpoint = &mut inner.endpoint;
            let dst = datagram.destination.clone();
            table
                .lookup(tuple, now_secs, |sfl| {
                    endpoint.derive_flow_key_tx(sfl, &dst)
                })
                .and_then(|hit| endpoint.send_with_key(hit.sfl, &hit.key, datagram, secret))
        }
        // Textbook: FAM classification, then TFKC inside send().
        None => {
            let bytes = datagram.body.len() as u64;
            let class = inner.fam.classify(tuple, now_secs, bytes);
            inner.endpoint.send(class.sfl, datagram, secret)
        }
    };
    match result {
        Ok(pd) => {
            let out = pd.encode_payload();
            let delta = out.len() as isize - pd.header.plaintext_len as isize;
            header.grow_payload(delta);
            inner.stats.protected += 1;
            inner.hook_exit(Direction::Output, true);
            Ok(out)
        }
        Err(e) => {
            inner.stats.output_errors += 1;
            inner.hook_exit(Direction::Output, false);
            Err(e.to_string())
        }
    }
}
