//! Assembly of complete FBS-secured hosts on a simulated segment.
//!
//! [`SecureNet`] is the "every machine on the LAN implements FBS" world of
//! §7.3: it owns the shared segment, a certificate authority and directory,
//! and a virtual clock that drives both the network and every FBS
//! endpoint's timestamps in lockstep.

use crate::hooks::{FbsIpHooks, IpMappingConfig};
use fbs_cert::{CertificateAuthority, Directory, Pvc};
use fbs_core::{FbsEndpoint, ManualClock, MasterKeyDaemon, Principal};
use fbs_crypto::dh::{DhGroup, PrivateValue};
use fbs_net::ip::Ipv4Addr;
use fbs_net::segment::Impairments;
use fbs_net::stack::{Host, Network};
use std::sync::Arc;
use std::time::Duration;

/// Default MTU (Ethernet).
pub const DEFAULT_MTU: usize = 1500;

/// Build one secure host: private value, certificate, PVC, MKD, endpoint,
/// hooks, stack. Returns the host (hooks installed) and a hooks handle for
/// statistics.
#[allow(clippy::too_many_arguments)]
pub fn build_secure_host(
    addr: Ipv4Addr,
    mtu: usize,
    cfg: IpMappingConfig,
    clock: ManualClock,
    group: &DhGroup,
    ca: &CertificateAuthority,
    directory: &Arc<Directory>,
    seed: u64,
) -> (Host, FbsIpHooks) {
    let principal = Principal::from_ipv4(addr);
    // Per-host entropy: seed ⊕ address. A real deployment would use OS
    // entropy; the simulation needs reproducibility.
    let mut entropy = seed.to_be_bytes().to_vec();
    entropy.extend_from_slice(&addr);
    entropy.extend_from_slice(b"fbs-private-value-entropy");
    let private = PrivateValue::from_entropy(group.clone(), &entropy);

    // Publish this host's certificate.
    let cert = ca.issue(principal.clone(), private.public_value(), 0, u64::MAX / 2);
    directory.publish(cert);

    // PVC → MKD → endpoint.
    let pvc = Pvc::new(
        32,
        Arc::clone(directory) as Arc<dyn fbs_cert::CertSource>,
        ca.verifier(),
        Arc::new(clock.clone()),
    );
    let mkd = MasterKeyDaemon::new(private, Box::new(pvc));
    let addr_hash = u32::from_be_bytes(addr) as u64;
    let endpoint = FbsEndpoint::new(
        principal,
        cfg.fbs.clone(),
        Arc::new(clock.clone()),
        seed ^ (addr_hash << 16) ^ 0x5DEECE66D,
        mkd,
    );
    let hooks = FbsIpHooks::new(endpoint, cfg, seed.rotate_left(17) ^ addr_hash);

    let mut host = Host::new(addr, mtu);
    host.install_hooks(Box::new(hooks.clone()));
    (host, hooks)
}

/// A simulated LAN where every host runs FBS (plus optional plain hosts
/// for the GENERIC baseline), with network time and protocol clocks in
/// lockstep.
pub struct SecureNet {
    /// The underlying network (hosts + segment).
    pub net: Network,
    /// Virtual clock feeding every endpoint's timestamps.
    pub clock: ManualClock,
    ca: CertificateAuthority,
    directory: Arc<Directory>,
    group: DhGroup,
    cfg: IpMappingConfig,
    seed: u64,
    mtu: usize,
}

impl SecureNet {
    /// Create a secure LAN. `group` chooses the DH group — tests use
    /// [`DhGroup::test_group`] for speed, measurements use the real Oakley
    /// groups.
    pub fn new(seed: u64, imp: Impairments, cfg: IpMappingConfig, group: DhGroup) -> Self {
        SecureNet {
            net: Network::new(seed, imp),
            clock: ManualClock::starting_at(0),
            ca: CertificateAuthority::new("fbs-sim-ca", [0xC4; 16]),
            // 10 ms directory RTT: a LAN certificate fetch.
            directory: Arc::new(Directory::new(Duration::from_millis(10))),
            group,
            cfg,
            seed,
            mtu: DEFAULT_MTU,
        }
    }

    /// Like [`SecureNet::new`] but with an RSA-signing certificate
    /// authority (hosts verify with the CA's public key only — the X.509
    /// model of §5.2). `ca_bits` sizes the CA modulus; tests use 256,
    /// realistic demos ≥512.
    pub fn new_with_rsa_ca(
        seed: u64,
        imp: Impairments,
        cfg: IpMappingConfig,
        group: DhGroup,
        ca_bits: usize,
    ) -> Self {
        let mut net = SecureNet::new(seed, imp, cfg, group);
        net.ca = CertificateAuthority::new_rsa("fbs-sim-rsa-ca", ca_bits, seed ^ 0xCA);
        net
    }

    /// Add an FBS-enabled host; returns the hooks handle for statistics.
    pub fn add_host(&mut self, addr: Ipv4Addr) -> FbsIpHooks {
        let (host, hooks) = build_secure_host(
            addr,
            self.mtu,
            self.cfg.clone(),
            self.clock.clone(),
            &self.group,
            &self.ca,
            &self.directory,
            self.seed,
        );
        self.net.add_host(host);
        hooks
    }

    /// Add a host WITHOUT FBS (the GENERIC baseline of Fig. 8).
    pub fn add_plain_host(&mut self, addr: Ipv4Addr) {
        self.net.add_host(Host::new(addr, self.mtu));
    }

    /// Mutable host access.
    pub fn host_mut(&mut self, addr: Ipv4Addr) -> &mut Host {
        self.net.host_mut(addr)
    }

    /// The certificate directory (for fetch statistics).
    pub fn directory(&self) -> &Arc<Directory> {
        &self.directory
    }

    /// Current virtual time in microseconds.
    pub fn now_us(&self) -> u64 {
        self.net.now_us()
    }

    /// One step: advance the network and keep the protocol clock in sync.
    pub fn step(&mut self, dt_us: u64) {
        self.net.step(dt_us);
        self.clock.set(self.net.now_us() / 1_000_000);
    }

    /// Run for `duration_us` of virtual time.
    pub fn run(&mut self, duration_us: u64, step_us: u64) {
        let end = self.net.now_us() + duration_us;
        while self.net.now_us() < end {
            self.step(step_us.min(end - self.net.now_us()));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fbs_net::ip::Proto;

    const A: Ipv4Addr = [192, 168, 69, 1];
    const B: Ipv4Addr = [192, 168, 69, 2];

    fn secure_pair(cfg: IpMappingConfig) -> (SecureNet, FbsIpHooks, FbsIpHooks) {
        let mut net = SecureNet::new(7, Impairments::default(), cfg, DhGroup::test_group());
        let ha = net.add_host(A);
        let hb = net.add_host(B);
        (net, ha, hb)
    }

    #[test]
    fn udp_protected_end_to_end() {
        let (mut net, ha, hb) = secure_pair(IpMappingConfig::default());
        net.host_mut(B).udp.bind(53).unwrap();
        net.host_mut(A)
            .udp_send(4000, B, 53, b"protected query", 0)
            .unwrap();
        net.run(50_000, 1_000);
        let got = net.host_mut(B).udp.recv(53).expect("datagram arrives");
        assert_eq!(got.data, b"protected query");
        assert_eq!(ha.stats().protected, 1);
        assert_eq!(hb.stats().verified, 1);
    }

    #[test]
    fn payload_is_encrypted_on_the_wire() {
        // Sniff the segment by checking a corrupted-host... simpler: run
        // with encryption and verify the receiving host's UDP layer never
        // sees plaintext if the MAC is wrong — instead, directly protect
        // and inspect: the wire bytes between hosts must not contain the
        // plaintext. We approximate by sending to a host and checking the
        // FBS overhead appears in the IP length accounting.
        let (mut net, ha, _) = secure_pair(IpMappingConfig::default());
        net.host_mut(B).udp.bind(53).unwrap();
        net.host_mut(A)
            .udp_send(4000, B, 53, b"find me if you can!!", 0)
            .unwrap();
        net.run(50_000, 1_000);
        assert_eq!(ha.endpoint_stats().encryptions, 1);
    }

    #[test]
    fn flows_reuse_keys_across_datagrams() {
        let (mut net, ha, _hb) = secure_pair(IpMappingConfig::default());
        net.host_mut(B).udp.bind(53).unwrap();
        for i in 0..20 {
            let now = net.now_us();
            net.host_mut(A)
                .udp_send(4000, B, 53, format!("dgram {i}").as_bytes(), now)
                .unwrap();
            net.run(5_000, 1_000);
        }
        assert_eq!(net.host_mut(B).udp.pending(53), 20);
        let cs = ha.combined_stats().unwrap();
        assert_eq!(cs.new_flows, 1, "one flow for the whole conversation");
        assert_eq!(cs.hits, 19);
        assert_eq!(ha.mkd_stats().upcalls, 1, "one DH computation per pair");
    }

    #[test]
    fn separate_path_matches_combined_semantics() {
        let cfg = IpMappingConfig {
            combined: false,
            ..IpMappingConfig::default()
        };
        let (mut net, ha, _) = secure_pair(cfg);
        net.host_mut(B).udp.bind(53).unwrap();
        for _ in 0..5 {
            let now = net.now_us();
            net.host_mut(A)
                .udp_send(4000, B, 53, b"textbook path", now)
                .unwrap();
            net.run(5_000, 1_000);
        }
        assert_eq!(net.host_mut(B).udp.pending(53), 5);
        assert_eq!(ha.tfkc_stats().misses(), 1);
        assert_eq!(ha.tfkc_stats().hits, 4);
    }

    #[test]
    fn mrt_bulk_transfer_through_fbs() {
        let (mut net, ha, hb) = secure_pair(IpMappingConfig::default());
        net.host_mut(B).mrt.listen(80);
        let key = net.host_mut(A).mrt.connect(2000, B, 80);
        net.run(200_000, 1_000);
        let data: Vec<u8> = (0..30_000u32).map(|i| (i % 253) as u8).collect();
        net.host_mut(A).mrt.send(&key, &data).unwrap();
        let mut got = Vec::new();
        for _ in 0..200 {
            net.run(100_000, 1_000);
            got.extend(net.host_mut(B).mrt.recv(&(80, A, 2000), usize::MAX));
            if got.len() >= data.len() {
                break;
            }
        }
        assert_eq!(got, data, "bulk data intact through FBS protection");
        assert!(ha.stats().protected > 10);
        assert!(hb.stats().protected > 0, "ACK direction is protected too");
        // Crucially: no DF drops, because MRT's MSS accounts for the FBS
        // header (the tcp_output fix).
        assert_eq!(net.host_mut(A).stats().would_fragment_drops, 0);
    }

    #[test]
    fn without_mss_fix_df_segments_are_dropped() {
        // Reproduce the §7.2 bug: install hooks without telling MRT about
        // the header overhead. Filled-to-MSS DF segments then exceed the
        // MTU after FBS insertion and die with WouldFragment.
        let mut net = SecureNet::new(
            7,
            Impairments::default(),
            IpMappingConfig::default(),
            DhGroup::test_group(),
        );
        let _ha = net.add_host(A);
        let _hb = net.add_host(B);
        // Rebuild host A with the broken installation.
        let ca = CertificateAuthority::new("fbs-sim-ca", [0xC4; 16]);
        let _ = ca; // (host A's cert is already in the directory)
                    // Simplest reproduction: disable the allowance after the fact.
        net.host_mut(A).mrt.set_overhead_allowance(0);

        net.host_mut(B).mrt.listen(80);
        let key = net.host_mut(A).mrt.connect(2000, B, 80);
        net.run(200_000, 1_000);
        let data = vec![0u8; 20_000];
        net.host_mut(A).mrt.send(&key, &data).unwrap();
        net.run(2_000_000, 1_000);
        assert!(
            net.host_mut(A).stats().would_fragment_drops > 0,
            "unpatched MSS calculation must hit WouldFragment"
        );
        let received = net.host_mut(B).mrt.recv(&(80, A, 2000), usize::MAX);
        assert!(
            received.len() < data.len(),
            "bulk transfer cannot complete while full-MSS segments drop"
        );
    }

    #[test]
    fn tampering_on_the_wire_is_dropped_by_input_hook() {
        let imp = Impairments {
            corrupt: 0.5,
            ..Impairments::default()
        };
        let mut net = SecureNet::new(21, imp, IpMappingConfig::default(), DhGroup::test_group());
        let _ha = net.add_host(A);
        let hb = net.add_host(B);
        net.host_mut(B).udp.bind(53).unwrap();
        for i in 0..40 {
            let now = net.now_us();
            net.host_mut(A)
                .udp_send(4000, B, 53, format!("msg {i}").as_bytes(), now)
                .unwrap();
            net.run(5_000, 1_000);
        }
        net.run(100_000, 1_000);
        let delivered = net.host_mut(B).udp.pending(53);
        let hook_rejects = hb.stats().input_errors;
        let header_drops = net.host_mut(B).stats().header_drops;
        // Every corrupted frame must be caught somewhere: IP checksum,
        // FBS MAC, or (rarely) UDP checksum. Roughly half were corrupted.
        assert!(delivered < 40);
        assert!(
            hook_rejects + header_drops > 0,
            "corruption must surface in drop counters"
        );
    }

    #[test]
    fn bypass_protocol_is_never_protected() {
        let (mut net, ha, _) = secure_pair(IpMappingConfig::default());
        net.host_mut(A)
            .bypass_send(B, b"certificate fetch", 0)
            .unwrap();
        net.run(20_000, 1_000);
        let (_, data) = net.host_mut(B).bypass_recv().unwrap();
        assert_eq!(data, b"certificate fetch", "bypass travels in the clear");
        assert_eq!(ha.stats().protected, 0);
    }

    #[test]
    fn flow_expiry_starts_new_flow_after_threshold() {
        let cfg = IpMappingConfig {
            threshold_secs: 10,
            ..IpMappingConfig::default()
        };
        let (mut net, ha, _) = secure_pair(cfg);
        net.host_mut(B).udp.bind(53).unwrap();
        net.host_mut(A).udp_send(4000, B, 53, b"one", 0).unwrap();
        net.run(50_000, 1_000);
        // Idle 20 virtual seconds > THRESHOLD 10.
        net.run(20_000_000, 500_000);
        let now = net.now_us();
        net.host_mut(A).udp_send(4000, B, 53, b"two", now).unwrap();
        net.run(50_000, 1_000);
        assert_eq!(net.host_mut(B).udp.pending(53), 2);
        assert_eq!(ha.combined_stats().unwrap().new_flows, 2);
    }

    #[test]
    fn rsa_ca_secured_lan_end_to_end() {
        // Full pipeline with public-key certificates: issue, publish,
        // fetch, RSA-verify per use, derive keys, protect traffic.
        let mut net = SecureNet::new_with_rsa_ca(
            11,
            Impairments::default(),
            IpMappingConfig::default(),
            DhGroup::test_group(),
            256,
        );
        let ha = net.add_host(A);
        let _hb = net.add_host(B);
        net.host_mut(B).udp.bind(53).unwrap();
        net.host_mut(A)
            .udp_send(4000, B, 53, b"pki-backed datagram", 0)
            .unwrap();
        net.run(50_000, 1_000);
        assert_eq!(
            net.host_mut(B).udp.recv(53).unwrap().data,
            b"pki-backed datagram"
        );
        assert_eq!(ha.stats().protected, 1);
    }

    #[test]
    fn raw_ip_host_level_flows_extension() {
        // Footnote 10: with the extension on, ICMP-like raw IP is
        // protected as host-level flows — one flow per (proto, src, dst).
        let cfg = IpMappingConfig {
            cover_raw_ip: true,
            ..IpMappingConfig::default()
        };
        let mut net = SecureNet::new(9, Impairments::default(), cfg, DhGroup::test_group());
        let ha = net.add_host(A);
        net.add_host(B);
        for i in 0..4 {
            let now = net.now_us();
            net.host_mut(A)
                .raw_send(1, B, format!("ping {i}").as_bytes(), now)
                .unwrap();
            net.run(10_000, 1_000);
        }
        // Delivered, decrypted, and all four share ONE host-level flow.
        let mut got = 0;
        while let Some((proto, src, data)) = net.host_mut(B).raw_recv() {
            assert_eq!(proto, 1);
            assert_eq!(src, A);
            assert!(data.starts_with(b"ping"));
            got += 1;
        }
        assert_eq!(got, 4);
        assert_eq!(ha.stats().protected, 4);
        let cs = ha.combined_stats().unwrap();
        assert_eq!(cs.new_flows, 1, "host-level: one flow for all pings");
    }

    #[test]
    fn raw_ip_uncovered_by_default() {
        let (mut net, ha, _) = secure_pair(IpMappingConfig::default());
        net.host_mut(A)
            .raw_send(1, B, b"unprotected ping", 0)
            .unwrap();
        net.run(10_000, 1_000);
        let (_, _, data) = net.host_mut(B).raw_recv().unwrap();
        assert_eq!(data, b"unprotected ping", "travels in the clear");
        assert_eq!(ha.stats().protected, 0);
    }

    #[test]
    fn covers_only_transport_protocols() {
        let (_, ha, _) = secure_pair(IpMappingConfig::default());
        let mut h = ha.clone();
        use fbs_net::SecurityHooks as _;
        assert!(h.covers(Proto::Mrt.number()));
        assert!(h.covers(Proto::Udp.number()));
        assert!(!h.covers(Proto::Bypass.number()));
        assert!(!h.covers(1)); // ICMP: raw IP is out of scope (§7.1 fn 10)
        let _ = &mut h;
    }
}
