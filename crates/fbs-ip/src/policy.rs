//! The Fig. 7 security flow policy, verbatim.
//!
//! "A secure flow is defined as a sequence of datagrams of the same
//! transport layer protocol going from a port on a host to another port on
//! another (not necessarily distinct) host such that the datagrams do not
//! arrive more than THRESHOLD apart." The mapper indexes the FST with
//! `CRC-32(saddr, sport, daddr, dport, proto-num) mod FSTSIZE`; the
//! sweeper invalidates entries idle longer than THRESHOLD.

use crate::tuple::FiveTuple;
use fbs_core::fam::{FlowPolicy, FstEntry, KeyUnavailableVerdict};
use fbs_crypto::crc32;

/// Default THRESHOLD: the paper's experiments centre on 300-600 s and find
/// the policy insensitive above 900 s; 600 s is our default.
pub const DEFAULT_THRESHOLD_SECS: u64 = 600;

/// Default FSTSIZE: footnote 11 observes "almost no collision ... with a
/// reasonable FSTSIZE, e.g., 32 or above".
pub const DEFAULT_FST_SIZE: usize = 64;

/// The Fig. 7 mapper + sweeper pair.
#[derive(Clone, Copy, Debug)]
pub struct FiveTuplePolicy {
    /// Flow idle expiry in seconds.
    pub threshold_secs: u64,
    /// What happens to a datagram whose flow key cannot be derived
    /// right now (directory/MKD outage, open circuit breaker). The
    /// paper's behaviour — and the safe default — is fail-closed.
    pub key_unavailable: KeyUnavailableVerdict,
}

impl Default for FiveTuplePolicy {
    fn default() -> Self {
        FiveTuplePolicy {
            threshold_secs: DEFAULT_THRESHOLD_SECS,
            key_unavailable: KeyUnavailableVerdict::FailClosed,
        }
    }
}

impl FiveTuplePolicy {
    /// Policy with an explicit THRESHOLD (the Fig. 13/14 sweep parameter).
    pub fn new(threshold_secs: u64) -> Self {
        FiveTuplePolicy {
            threshold_secs,
            ..FiveTuplePolicy::default()
        }
    }

    /// Override the key-unavailable degradation verdict.
    pub fn with_key_unavailable(mut self, verdict: KeyUnavailableVerdict) -> Self {
        self.key_unavailable = verdict;
        self
    }
}

impl FlowPolicy<FiveTuple> for FiveTuplePolicy {
    fn index(&self, attrs: &FiveTuple, table_size: usize) -> usize {
        // Fig. 7: i = CRC-32(saddr, sport, daddr, dport, proto) mod FSTSIZE
        crc32(&attrs.canonical_array()) as usize % table_size
    }

    fn key_unavailable(&self) -> KeyUnavailableVerdict {
        self.key_unavailable
    }

    fn same_flow(&self, entry_attrs: &FiveTuple, attrs: &FiveTuple) -> bool {
        entry_attrs == attrs
    }

    fn expired(&self, entry: &FstEntry<FiveTuple>, now_secs: u64) -> bool {
        // Fig. 7 sweeper: (curtime - e.last) > THRESHOLD.
        now_secs.saturating_sub(entry.last) > self.threshold_secs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fbs_core::{Fam, SflAllocator};

    fn tuple(sport: u16) -> FiveTuple {
        FiveTuple {
            proto: 6,
            saddr: [10, 0, 0, 1],
            sport,
            daddr: [10, 0, 0, 2],
            dport: 80,
        }
    }

    fn fam(threshold: u64) -> Fam<FiveTuple, FiveTuplePolicy> {
        Fam::new(
            DEFAULT_FST_SIZE,
            FiveTuplePolicy::new(threshold),
            SflAllocator::new(1),
        )
        .with_repeat_tracking()
    }

    #[test]
    fn telnet_session_with_quiet_period_splits_into_two_flows() {
        // §7.1: "a long TELNET session with large quiet periods" becomes
        // multiple flows — and the paper notes this is GOOD for security.
        let mut f = fam(600);
        let c1 = f.classify(tuple(4001), 0, 50);
        let c2 = f.classify(tuple(4001), 100, 50);
        assert_eq!(c1.sfl, c2.sfl);
        let c3 = f.classify(tuple(4001), 100 + 601, 50); // quiet period
        assert_ne!(c1.sfl, c3.sfl);
        assert!(c3.repeated);
    }

    #[test]
    fn sustained_nfs_traffic_is_one_flow() {
        // Periodic transfer with gaps under THRESHOLD stays one flow no
        // matter how long it lives.
        let mut f = fam(600);
        let first = f.classify(tuple(2049), 0, 8192);
        let mut last = first;
        for i in 1..100 {
            last = f.classify(tuple(2049), i * 500, 8192);
        }
        assert_eq!(first.sfl, last.sfl);
        assert_eq!(f.stats().flows_started, 1);
    }

    #[test]
    fn different_ports_are_different_flows() {
        let mut f = fam(600);
        let c1 = f.classify(tuple(5001), 0, 10);
        let c2 = f.classify(tuple(5002), 0, 10);
        assert_ne!(c1.sfl, c2.sfl);
    }

    #[test]
    fn flow_spans_connections_port_reuse_within_threshold() {
        // §7.1: "a flow may span multiple connections" — a process that
        // reuses a just-freed port within THRESHOLD continues the old flow.
        // This is the behaviour behind the port-reuse attack.
        let mut f = fam(600);
        let victim = f.classify(tuple(3000), 0, 10);
        // Victim exits; attacker binds the same port 10 s later.
        let attacker = f.classify(tuple(3000), 10, 10);
        assert_eq!(
            victim.sfl, attacker.sfl,
            "the FAM cannot see the ownership change"
        );
    }

    #[test]
    fn direction_matters() {
        let mut f = fam(600);
        let fwd = f.classify(tuple(4001), 0, 10);
        let rev = f.classify(tuple(4001).reversed(), 0, 10);
        assert_ne!(fwd.sfl, rev.sfl);
    }

    #[test]
    fn threshold_zero_forces_flow_per_gap() {
        let mut f = fam(0);
        let c1 = f.classify(tuple(1), 0, 10);
        let c2 = f.classify(tuple(1), 1, 10); // gap 1 > 0
        assert_ne!(c1.sfl, c2.sfl);
    }
}
