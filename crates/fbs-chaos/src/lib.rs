//! # fbs-chaos — seeded, deterministic fault injection for the FBS stack
//!
//! FBS is built on *soft state*: every cache entry (MKC, TFKC, RFKC,
//! PVC) can vanish at any moment and the protocol must reconverge
//! (§5.3). This crate turns that claim into an executable experiment:
//! a [`FaultPlan`] scripts time windows of impairment against the
//! certificate directory ([`ChaosDirectory`]), the master key daemon's
//! upcall path ([`ChaosPvs`]), the flow-key caches (flush pulses /
//! eviction storms driven by [`FaultPlan::cache_pulses`]), and the
//! datagram-plane worker runtime itself ([`WorkerChaos`]: scheduled
//! worker panics, stalls, and ring saturation), all on a shared
//! microsecond [`VirtualClock`].
//!
//! Everything is a pure function of `(seed, schedule, virtual time)` —
//! no wall-clock, no OS entropy — so a chaos soak that fails once fails
//! every time, under the same datagram.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cert;
pub mod clock;
pub mod mkd;
pub mod plan;
pub mod worker;

pub use cert::{ChaosDirectory, ChaosDirectoryStats};
pub use clock::VirtualClock;
pub use mkd::{ChaosPvs, ChaosPvsStats};
pub use plan::{FaultKind, FaultPlan, FaultWindow, FlushScope};
pub use worker::WorkerChaos;
