//! Fault-injecting public-value-source wrapper for the MKD upcall path.
//!
//! [`ChaosPvs`] wraps any [`PublicValueSource`] (typically the PVC) and
//! fails the MKD's upcall with a transport error while an
//! [`FaultKind::MkdOutage`](crate::FaultKind::MkdOutage) window is open
//! — exercising the retry policy, the per-peer circuit breaker, and the
//! degradation hooks downstream of a key-derivation failure.

use crate::plan::FaultPlan;
use fbs_core::mkd::PublicValueSource;
use fbs_core::{Clock, FbsError, Principal, Result};
use fbs_crypto::dh::PublicValue;
use parking_lot::Mutex;
use std::sync::Arc;

/// Counters for injected MKD-upcall impairments.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ChaosPvsStats {
    /// Upcall fetches attempted through the wrapper.
    pub fetches: u64,
    /// Fetches failed by an MKD-outage window.
    pub outages: u64,
}

/// A [`PublicValueSource`] that fails upcalls during MKD-outage windows.
pub struct ChaosPvs {
    inner: Arc<dyn PublicValueSource>,
    plan: FaultPlan,
    clock: Arc<dyn Clock>,
    stats: Mutex<ChaosPvsStats>,
}

impl ChaosPvs {
    /// Wrap `inner`, failing fetches per `plan` on `clock`'s time axis.
    pub fn new(inner: Arc<dyn PublicValueSource>, plan: FaultPlan, clock: Arc<dyn Clock>) -> Self {
        ChaosPvs {
            inner,
            plan,
            clock,
            stats: Mutex::new(ChaosPvsStats::default()),
        }
    }

    /// Accumulated impairment counters.
    pub fn stats(&self) -> ChaosPvsStats {
        *self.stats.lock()
    }
}

impl PublicValueSource for ChaosPvs {
    fn fetch(&self, principal: &Principal) -> Result<PublicValue> {
        let now_us = self.clock.now_micros();
        self.stats.lock().fetches += 1;
        if self.plan.mkd_outage(now_us) {
            self.stats.lock().outages += 1;
            return Err(FbsError::Transport(format!(
                "chaos: mkd outage at {now_us}us"
            )));
        }
        self.inner.fetch(principal)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::VirtualClock;
    use crate::plan::FaultKind;
    use fbs_core::mkd::PinnedDirectory;
    use fbs_crypto::dh::{DhGroup, PrivateValue};

    #[test]
    fn outage_window_gates_fetches() {
        let mut pinned = PinnedDirectory::default();
        let pv = PrivateValue::from_entropy(DhGroup::test_group(), b"bob").public_value();
        pinned.pin(Principal::named("bob"), pv.clone());

        let clock = Arc::new(VirtualClock::default());
        let plan = FaultPlan::new(3).with_window(50, 100, FaultKind::MkdOutage);
        let chaos = ChaosPvs::new(Arc::new(pinned), plan, clock.clone());
        let bob = Principal::named("bob");

        assert_eq!(chaos.fetch(&bob).unwrap(), pv);
        clock.set_us(75);
        assert!(matches!(
            chaos.fetch(&bob).unwrap_err(),
            FbsError::Transport(_)
        ));
        clock.set_us(100);
        assert!(chaos.fetch(&bob).is_ok());
        let s = chaos.stats();
        assert_eq!(s.fetches, 3);
        assert_eq!(s.outages, 1);
    }
}
