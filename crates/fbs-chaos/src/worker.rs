//! Datagram-plane worker faults: scheduled panics, stalls, and ring
//! saturation.
//!
//! [`WorkerChaos`] adapts a [`FaultPlan`]'s worker windows to the
//! runtime's [`WorkerFaultInjector`] taps. The determinism contract is
//! the trait's: panic and stall taps are **edge-triggered** — at most
//! one firing per `(window, worker)` no matter how often the worker
//! polls — while saturation is **level-triggered** on the producer side
//! (the worker keeps draining at virtual time, so a seeded soak's
//! virtual-time outputs stay byte-identical; only wall-clock latency
//! moves).
//!
//! Edge state is a per-window fired flag behind a CAS, so concurrent
//! polls from a worker and its producer cannot double-fire a pulse.

use crate::plan::{FaultKind, FaultPlan};
use fbs_core::WorkerFaultInjector;
use std::sync::atomic::{AtomicBool, Ordering};

/// One armed edge-triggered window: fires at most once, while open.
struct Pulse {
    start_us: u64,
    end_us: u64,
    worker: usize,
    /// For stalls: the sleep length; 0 for panics.
    stall_us: u64,
    fired: AtomicBool,
}

impl Pulse {
    fn take(&self, worker: usize, now_us: u64) -> bool {
        worker == self.worker
            && self.start_us <= now_us
            && now_us < self.end_us
            && !self.fired.swap(true, Ordering::AcqRel)
    }
}

/// A [`WorkerFaultInjector`] scripted by a [`FaultPlan`]'s
/// `WorkerPanic` / `WorkerStall` / `RingSaturation` windows.
pub struct WorkerChaos {
    panics: Vec<Pulse>,
    stalls: Vec<Pulse>,
    /// Saturation is stateless: `(start, end, worker)` levels.
    saturations: Vec<(u64, u64, usize)>,
}

impl WorkerChaos {
    /// Arm every worker-fault window in `plan`. Windows of other kinds
    /// are ignored, so one plan can drive directory, MKD, cache, and
    /// worker chaos together.
    pub fn from_plan(plan: &FaultPlan) -> Self {
        let mut panics = Vec::new();
        let mut stalls = Vec::new();
        let mut saturations = Vec::new();
        for w in plan.windows() {
            match w.kind {
                FaultKind::WorkerPanic { worker } => panics.push(Pulse {
                    start_us: w.start_us,
                    end_us: w.end_us,
                    worker,
                    stall_us: 0,
                    fired: AtomicBool::new(false),
                }),
                FaultKind::WorkerStall { worker, stall_us } => stalls.push(Pulse {
                    start_us: w.start_us,
                    end_us: w.end_us,
                    worker,
                    stall_us,
                    fired: AtomicBool::new(false),
                }),
                FaultKind::RingSaturation { worker } => {
                    saturations.push((w.start_us, w.end_us, worker));
                }
                _ => {}
            }
        }
        WorkerChaos {
            panics,
            stalls,
            saturations,
        }
    }

    /// Number of armed panic windows (for report/gate plumbing).
    pub fn scheduled_panics(&self) -> usize {
        self.panics.len()
    }
}

impl WorkerFaultInjector for WorkerChaos {
    fn take_panic(&self, worker: usize, now_us: u64) -> bool {
        self.panics.iter().any(|p| p.take(worker, now_us))
    }

    fn take_stall_us(&self, worker: usize, now_us: u64) -> u64 {
        self.stalls
            .iter()
            .filter(|p| p.take(worker, now_us))
            .map(|p| p.stall_us)
            .sum()
    }

    fn ring_saturated(&self, worker: usize, now_us: u64) -> bool {
        self.saturations
            .iter()
            .any(|&(s, e, w)| w == worker && s <= now_us && now_us < e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn panic_pulse_fires_once_per_window_and_worker() {
        let plan = FaultPlan::new(7)
            .with_window(100, 200, FaultKind::WorkerPanic { worker: 0 })
            .with_window(300, 400, FaultKind::WorkerPanic { worker: 0 });
        let chaos = WorkerChaos::from_plan(&plan);
        assert_eq!(chaos.scheduled_panics(), 2);
        assert!(!chaos.take_panic(0, 50), "before the window");
        assert!(!chaos.take_panic(1, 150), "wrong worker never fires");
        assert!(chaos.take_panic(0, 150), "first poll inside fires");
        assert!(!chaos.take_panic(0, 160), "edge-triggered: once only");
        assert!(chaos.take_panic(0, 350), "second window re-arms");
        assert!(!chaos.take_panic(0, 399));
    }

    #[test]
    fn stall_is_edge_triggered_and_sums_overlaps() {
        let plan = FaultPlan::new(7)
            .with_window(
                100,
                300,
                FaultKind::WorkerStall {
                    worker: 1,
                    stall_us: 500,
                },
            )
            .with_window(
                200,
                400,
                FaultKind::WorkerStall {
                    worker: 1,
                    stall_us: 250,
                },
            );
        let chaos = WorkerChaos::from_plan(&plan);
        assert_eq!(chaos.take_stall_us(1, 250), 750, "overlapping windows add");
        assert_eq!(chaos.take_stall_us(1, 260), 0, "both edges consumed");
        assert_eq!(chaos.take_stall_us(0, 250), 0, "other workers untouched");
    }

    #[test]
    fn saturation_is_level_triggered() {
        let plan = FaultPlan::new(7).with_window(100, 200, FaultKind::RingSaturation { worker: 0 });
        let chaos = WorkerChaos::from_plan(&plan);
        assert!(!chaos.ring_saturated(0, 99));
        assert!(chaos.ring_saturated(0, 100));
        assert!(chaos.ring_saturated(0, 150), "level: true for the window");
        assert!(chaos.ring_saturated(0, 199));
        assert!(!chaos.ring_saturated(0, 200), "half-open end");
        assert!(!chaos.ring_saturated(1, 150));
    }

    #[test]
    fn non_worker_windows_are_ignored() {
        let plan = FaultPlan::new(7).with_window(0, 1_000, FaultKind::DirectoryOutage);
        let chaos = WorkerChaos::from_plan(&plan);
        assert_eq!(chaos.scheduled_panics(), 0);
        assert!(!chaos.take_panic(0, 500));
        assert_eq!(chaos.take_stall_us(0, 500), 0);
        assert!(!chaos.ring_saturated(0, 500));
    }
}
