//! A microsecond-resolution virtual clock shared between the soak
//! driver, the fault injectors, and the endpoints under test.
//!
//! [`ManualClock`](fbs_core::ManualClock) advances in whole seconds —
//! too coarse for fault windows and backoff budgets measured in
//! microseconds. [`VirtualClock`] stores microseconds and overrides
//! [`Clock::now_micros`], so retry deadlines, breaker open intervals,
//! and [`FaultPlan`](crate::FaultPlan) windows all tick on the same
//! deterministic axis.

use fbs_core::Clock;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A manually-advanced clock with microsecond resolution. Clones share
/// the underlying time cell.
#[derive(Debug, Clone, Default)]
pub struct VirtualClock {
    micros: Arc<AtomicU64>,
}

impl VirtualClock {
    /// Start at `micros` microseconds past the FBS epoch.
    pub fn starting_at_us(micros: u64) -> Self {
        VirtualClock {
            micros: Arc::new(AtomicU64::new(micros)),
        }
    }

    /// Advance by `micros` microseconds.
    pub fn advance_us(&self, micros: u64) {
        self.micros.fetch_add(micros, Ordering::SeqCst);
    }

    /// Jump to an absolute time in microseconds.
    pub fn set_us(&self, micros: u64) {
        self.micros.store(micros, Ordering::SeqCst);
    }
}

impl Clock for VirtualClock {
    fn now_secs(&self) -> u64 {
        self.micros.load(Ordering::SeqCst) / 1_000_000
    }

    fn now_micros(&self) -> u64 {
        self.micros.load(Ordering::SeqCst)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn micros_drive_secs_and_minutes() {
        let c = VirtualClock::starting_at_us(61_500_000);
        assert_eq!(c.now_micros(), 61_500_000);
        assert_eq!(c.now_secs(), 61);
        assert_eq!(c.now_minutes(), 1);
        c.advance_us(500_000);
        assert_eq!(c.now_secs(), 62);
    }

    #[test]
    fn clones_share_time() {
        let a = VirtualClock::default();
        let b = a.clone();
        a.advance_us(1_000);
        assert_eq!(b.now_micros(), 1_000);
        b.set_us(5);
        assert_eq!(a.now_micros(), 5);
    }
}
