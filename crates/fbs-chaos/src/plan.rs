//! Scripted fault schedules: time windows × fault kinds.
//!
//! A [`FaultPlan`] is the deterministic core of every chaos run: given
//! the same seed and windows, the same datagrams experience the same
//! faults. Injectors ([`ChaosDirectory`](crate::ChaosDirectory),
//! [`ChaosPvs`](crate::ChaosPvs)) query *state faults* ("is the
//! directory down at `now_us`?"); the soak driver polls *pulse faults*
//! (cache flushes, eviction storms) via
//! [`cache_pulses`](FaultPlan::cache_pulses), which edge-triggers on
//! window entry and ticks periodically for storms.

/// Which side's caches a flush/storm hits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlushScope {
    /// Both endpoints.
    All,
    /// The sending endpoint's TFKC (and combined table).
    Sender,
    /// The receiving endpoint's RFKC.
    Receiver,
}

/// One kind of injected fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Certificate-directory fetches fail with a transport error.
    DirectoryOutage,
    /// Directory fetches are charged extra round-trip latency.
    DirectoryLatency {
        /// Extra RTT per fetch, in microseconds.
        extra_rtt_us: u64,
    },
    /// The directory serves the first certificate it ever served for
    /// each principal — rekeys and renewals are invisible.
    DirectoryStale,
    /// The directory flips one deterministic bit in each served public
    /// value, so per-use verification rejects it.
    DirectoryGarbage,
    /// The MKD's public-value source fails (upcall outage).
    MkdOutage,
    /// Flush TFKC/RFKC (and the combined table) once, on window entry —
    /// mid-flow soft-state loss.
    FlushCaches {
        /// Which endpoint(s) to flush.
        scope: FlushScope,
    },
    /// Repeated flushes every `period_us` for the whole window — a
    /// sustained eviction storm.
    EvictionStorm {
        /// Interval between flushes, in microseconds.
        period_us: u64,
        /// Which endpoint(s) each flush hits.
        scope: FlushScope,
    },
    /// One worker-loop panic, on window entry, in the named worker of
    /// the sending endpoint's datagram-plane runtime (edge-triggered
    /// via [`WorkerChaos`](crate::WorkerChaos)).
    WorkerPanic {
        /// Target worker index.
        worker: usize,
    },
    /// The named worker stalls (wall-clock sleep) once per window entry
    /// before processing its next sub-batch — latency only, no
    /// virtual-time counter moves.
    WorkerStall {
        /// Target worker index.
        worker: usize,
        /// Stall length in wall microseconds (the runtime caps it).
        stall_us: u64,
    },
    /// The named worker's ingress ring reads as saturated for the whole
    /// window (level-triggered, producer side): every sub-batch routed
    /// to it sheds per the overload policy.
    RingSaturation {
        /// Target worker index.
        worker: usize,
    },
}

impl FaultKind {
    /// Stable snake_case name for logs, flow-trace annotations, and
    /// reports.
    pub fn name(&self) -> &'static str {
        match self {
            FaultKind::DirectoryOutage => "directory_outage",
            FaultKind::DirectoryLatency { .. } => "directory_latency",
            FaultKind::DirectoryStale => "directory_stale",
            FaultKind::DirectoryGarbage => "directory_garbage",
            FaultKind::MkdOutage => "mkd_outage",
            FaultKind::FlushCaches { .. } => "flush_caches",
            FaultKind::EvictionStorm { .. } => "eviction_storm",
            FaultKind::WorkerPanic { .. } => "worker_panic",
            FaultKind::WorkerStall { .. } => "worker_stall",
            FaultKind::RingSaturation { .. } => "ring_saturation",
        }
    }
}

/// A fault active over `[start_us, end_us)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultWindow {
    /// Window start (inclusive), in plan microseconds.
    pub start_us: u64,
    /// Window end (exclusive), in plan microseconds.
    pub end_us: u64,
    /// The fault injected while the window is open.
    pub kind: FaultKind,
}

impl FaultWindow {
    /// Is the window open at `now_us`?
    pub fn contains(&self, now_us: u64) -> bool {
        self.start_us <= now_us && now_us < self.end_us
    }
}

/// A seeded, scripted schedule of faults.
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    /// Seed feeding deterministic corruption (garbage bytes) and any
    /// randomised injector decisions.
    pub seed: u64,
    windows: Vec<FaultWindow>,
}

impl FaultPlan {
    /// An empty plan (no faults) under `seed`.
    pub fn new(seed: u64) -> Self {
        FaultPlan {
            seed,
            windows: Vec::new(),
        }
    }

    /// Add a fault window (builder style).
    pub fn with_window(mut self, start_us: u64, end_us: u64, kind: FaultKind) -> Self {
        assert!(start_us < end_us, "fault window must be non-empty");
        self.windows.push(FaultWindow {
            start_us,
            end_us,
            kind,
        });
        self
    }

    /// All scheduled windows.
    pub fn windows(&self) -> &[FaultWindow] {
        &self.windows
    }

    /// Latest window end — the instant after which no fault can fire.
    pub fn horizon_us(&self) -> u64 {
        self.windows.iter().map(|w| w.end_us).max().unwrap_or(0)
    }

    /// Is a directory outage active at `now_us`?
    pub fn directory_outage(&self, now_us: u64) -> bool {
        self.windows
            .iter()
            .any(|w| w.contains(now_us) && w.kind == FaultKind::DirectoryOutage)
    }

    /// Total extra directory RTT injected at `now_us` (overlapping
    /// latency windows add).
    pub fn directory_extra_rtt_us(&self, now_us: u64) -> u64 {
        self.windows
            .iter()
            .filter(|w| w.contains(now_us))
            .map(|w| match w.kind {
                FaultKind::DirectoryLatency { extra_rtt_us } => extra_rtt_us,
                _ => 0,
            })
            .sum()
    }

    /// Is stale serving active at `now_us`?
    pub fn directory_stale(&self, now_us: u64) -> bool {
        self.windows
            .iter()
            .any(|w| w.contains(now_us) && w.kind == FaultKind::DirectoryStale)
    }

    /// Is garbage corruption active at `now_us`?
    pub fn directory_garbage(&self, now_us: u64) -> bool {
        self.windows
            .iter()
            .any(|w| w.contains(now_us) && w.kind == FaultKind::DirectoryGarbage)
    }

    /// Is an MKD outage active at `now_us`?
    pub fn mkd_outage(&self, now_us: u64) -> bool {
        self.windows
            .iter()
            .any(|w| w.contains(now_us) && w.kind == FaultKind::MkdOutage)
    }

    /// Fault-window edges crossed in `(prev_us, now_us]`: `(edge,
    /// fault, t_us)` tuples with edge `"fault_start"` /
    /// `"fault_end"`, ordered by time (ties keep plan order). The soak
    /// driver forwards these to the flow tracer as annotations, so a
    /// trace shows which fault window each parked or degraded span sat
    /// inside. Edge-triggered like [`Self::cache_pulses`]: calling once
    /// per step with the previous step's time yields each edge exactly
    /// once.
    pub fn window_edges(
        &self,
        prev_us: u64,
        now_us: u64,
    ) -> Vec<(&'static str, &'static str, u64)> {
        let mut edges = Vec::new();
        for w in &self.windows {
            if prev_us < w.start_us && w.start_us <= now_us {
                edges.push(("fault_start", w.kind.name(), w.start_us));
            }
            if prev_us < w.end_us && w.end_us <= now_us {
                edges.push(("fault_end", w.kind.name(), w.end_us));
            }
        }
        edges.sort_by_key(|e| e.2);
        edges
    }

    /// Cache flushes due in `(prev_us, now_us]`: one pulse per
    /// `FlushCaches` window entered, plus one per elapsed
    /// `EvictionStorm` tick (ticks at `start + k * period` inside the
    /// window). The driver calls this once per simulation step with the
    /// previous step's time; determinism follows from the times alone.
    pub fn cache_pulses(&self, prev_us: u64, now_us: u64) -> Vec<FlushScope> {
        let mut pulses = Vec::new();
        for w in &self.windows {
            match w.kind {
                FaultKind::FlushCaches { scope }
                    if prev_us < w.start_us && w.start_us <= now_us =>
                {
                    pulses.push(scope);
                }
                FaultKind::EvictionStorm { period_us, scope } => {
                    if period_us == 0 {
                        continue;
                    }
                    // Ticks k = 0, 1, ... at start + k*period, within
                    // the window and within (prev, now].
                    let mut t = w.start_us;
                    while t < w.end_us && t <= now_us {
                        if t > prev_us {
                            pulses.push(scope);
                        }
                        t = t.saturating_add(period_us);
                    }
                }
                _ => {}
            }
        }
        pulses
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn windows_are_half_open() {
        let plan = FaultPlan::new(1).with_window(100, 200, FaultKind::DirectoryOutage);
        assert!(!plan.directory_outage(99));
        assert!(plan.directory_outage(100));
        assert!(plan.directory_outage(199));
        assert!(!plan.directory_outage(200));
        assert_eq!(plan.horizon_us(), 200);
    }

    #[test]
    fn latency_windows_add() {
        let plan = FaultPlan::new(1)
            .with_window(0, 100, FaultKind::DirectoryLatency { extra_rtt_us: 30 })
            .with_window(50, 150, FaultKind::DirectoryLatency { extra_rtt_us: 20 });
        assert_eq!(plan.directory_extra_rtt_us(10), 30);
        assert_eq!(plan.directory_extra_rtt_us(60), 50);
        assert_eq!(plan.directory_extra_rtt_us(120), 20);
        assert_eq!(plan.directory_extra_rtt_us(200), 0);
    }

    #[test]
    fn flush_pulse_fires_once_on_entry() {
        let plan = FaultPlan::new(1).with_window(
            1_000,
            2_000,
            FaultKind::FlushCaches {
                scope: FlushScope::All,
            },
        );
        assert!(plan.cache_pulses(0, 999).is_empty());
        assert_eq!(plan.cache_pulses(999, 1_001), vec![FlushScope::All]);
        // Already inside: no re-trigger.
        assert!(plan.cache_pulses(1_001, 1_500).is_empty());
    }

    #[test]
    fn eviction_storm_ticks_periodically() {
        let plan = FaultPlan::new(1).with_window(
            1_000,
            1_900,
            FaultKind::EvictionStorm {
                period_us: 300,
                scope: FlushScope::Sender,
            },
        );
        // Ticks at 1000, 1300, 1600 (1900 is outside the half-open window).
        assert_eq!(plan.cache_pulses(0, 1_100).len(), 1);
        assert_eq!(plan.cache_pulses(1_100, 1_700).len(), 2);
        assert_eq!(plan.cache_pulses(1_700, 5_000).len(), 0);
        // One sweep over everything sees all three.
        assert_eq!(plan.cache_pulses(0, 5_000).len(), 3);
    }

    #[test]
    fn mkd_and_directory_faults_are_independent() {
        let plan = FaultPlan::new(1)
            .with_window(0, 10, FaultKind::MkdOutage)
            .with_window(20, 30, FaultKind::DirectoryOutage);
        assert!(plan.mkd_outage(5));
        assert!(!plan.directory_outage(5));
        assert!(!plan.mkd_outage(25));
        assert!(plan.directory_outage(25));
    }

    #[test]
    fn window_edges_fire_once_in_time_order() {
        let plan = FaultPlan::new(1)
            .with_window(100, 300, FaultKind::DirectoryOutage)
            .with_window(200, 400, FaultKind::MkdOutage);
        assert!(plan.window_edges(0, 99).is_empty());
        assert_eq!(
            plan.window_edges(99, 250),
            vec![
                ("fault_start", "directory_outage", 100),
                ("fault_start", "mkd_outage", 200),
            ]
        );
        // Edges already delivered never re-fire.
        assert_eq!(
            plan.window_edges(250, 1_000),
            vec![
                ("fault_end", "directory_outage", 300),
                ("fault_end", "mkd_outage", 400),
            ]
        );
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_window_rejected() {
        let _ = FaultPlan::new(1).with_window(5, 5, FaultKind::DirectoryOutage);
    }
}
