//! Fault-injecting certificate-directory wrapper.
//!
//! [`ChaosDirectory`] sits between the PVC and the real
//! [`Directory`](fbs_cert::Directory) behind the
//! [`CertSource`](fbs_cert::CertSource) seam, consulting a
//! [`FaultPlan`] at each fetch:
//!
//! * **outage** — the fetch fails with a transport error;
//! * **latency** — extra RTT is accounted against the fetch;
//! * **stale** — the first certificate ever served for each principal
//!   is replayed forever (rekeys become invisible);
//! * **garbage** — one deterministic, seed-derived bit of the served
//!   public value is flipped, so per-use verification rejects it.
//!
//! Every impairment is a function of `(plan, clock, principal)` alone,
//! so two runs with the same seed and schedule fail identically.

use crate::plan::FaultPlan;
use fbs_cert::{CertSource, Certificate};
use fbs_core::{Clock, FbsError, Principal, Result};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::Arc;

/// Counters for injected directory impairments.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ChaosDirectoryStats {
    /// Fetches attempted through the wrapper.
    pub fetches: u64,
    /// Fetches failed by an outage window.
    pub outages: u64,
    /// Total extra RTT injected, in microseconds.
    pub injected_rtt_us: u64,
    /// Fetches answered from the stale snapshot.
    pub stale_served: u64,
    /// Fetches whose public value was corrupted.
    pub garbage_served: u64,
}

/// A [`CertSource`] that impairs fetches according to a [`FaultPlan`].
pub struct ChaosDirectory {
    inner: Arc<dyn CertSource>,
    plan: FaultPlan,
    clock: Arc<dyn Clock>,
    /// First certificate successfully served per principal, replayed
    /// during stale windows.
    snapshot: Mutex<HashMap<Principal, Certificate>>,
    stats: Mutex<ChaosDirectoryStats>,
}

impl ChaosDirectory {
    /// Wrap `inner`, impairing fetches per `plan` on `clock`'s time axis.
    pub fn new(inner: Arc<dyn CertSource>, plan: FaultPlan, clock: Arc<dyn Clock>) -> Self {
        ChaosDirectory {
            inner,
            plan,
            clock,
            snapshot: Mutex::new(HashMap::new()),
            stats: Mutex::new(ChaosDirectoryStats::default()),
        }
    }

    /// Accumulated impairment counters.
    pub fn stats(&self) -> ChaosDirectoryStats {
        *self.stats.lock()
    }

    /// FNV-1a over the principal name, mixed with the plan seed — the
    /// deterministic source of which bit garbage windows flip.
    fn corruption_word(&self, principal: &Principal) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in principal.to_string().bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        h ^ self.plan.seed
    }
}

impl CertSource for ChaosDirectory {
    fn fetch_cert(&self, principal: &Principal) -> Result<Certificate> {
        let now_us = self.clock.now_micros();
        self.stats.lock().fetches += 1;

        if self.plan.directory_outage(now_us) {
            self.stats.lock().outages += 1;
            return Err(FbsError::Transport(format!(
                "chaos: directory outage at {now_us}us"
            )));
        }

        let extra = self.plan.directory_extra_rtt_us(now_us);
        if extra > 0 {
            self.stats.lock().injected_rtt_us += extra;
        }

        let mut cert = if self.plan.directory_stale(now_us) {
            let snap = self.snapshot.lock().get(principal).cloned();
            match snap {
                Some(c) => {
                    self.stats.lock().stale_served += 1;
                    c
                }
                // Nothing snapshotted yet: the stale window started
                // before the first fetch, so serve (and snapshot) live.
                None => self.inner.fetch_cert(principal)?,
            }
        } else {
            self.inner.fetch_cert(principal)?
        };

        self.snapshot
            .lock()
            .entry(principal.clone())
            .or_insert_with(|| cert.clone());

        if self.plan.directory_garbage(now_us) {
            let word = self.corruption_word(principal);
            let bytes = &mut cert.public_value.bytes;
            if !bytes.is_empty() {
                let idx = (word as usize) % bytes.len();
                let bit = 1u8 << ((word >> 32) % 8);
                bytes[idx] ^= bit;
                self.stats.lock().garbage_served += 1;
            }
        }

        Ok(cert)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::VirtualClock;
    use crate::plan::FaultKind;
    use fbs_cert::{CertificateAuthority, Directory};
    use fbs_crypto::dh::{DhGroup, PrivateValue};
    use std::time::Duration;

    fn world() -> (Arc<Directory>, CertificateAuthority) {
        let ca = CertificateAuthority::new("ca", [7u8; 16]);
        let dir = Arc::new(Directory::new(Duration::ZERO));
        let pv = PrivateValue::from_entropy(DhGroup::test_group(), b"alice-seed").public_value();
        dir.publish(ca.issue(Principal::named("alice"), pv, 0, u64::MAX));
        (dir, ca)
    }

    #[test]
    fn outage_window_fails_then_recovers() {
        let (dir, _ca) = world();
        let clock = Arc::new(VirtualClock::default());
        let plan = FaultPlan::new(9).with_window(100, 200, FaultKind::DirectoryOutage);
        let chaos = ChaosDirectory::new(dir, plan, clock.clone());
        let alice = Principal::named("alice");

        assert!(chaos.fetch_cert(&alice).is_ok());
        clock.set_us(150);
        let err = chaos.fetch_cert(&alice).unwrap_err();
        assert!(matches!(err, FbsError::Transport(_)));
        clock.set_us(250);
        assert!(chaos.fetch_cert(&alice).is_ok());
        let s = chaos.stats();
        assert_eq!(s.fetches, 3);
        assert_eq!(s.outages, 1);
    }

    #[test]
    fn stale_window_replays_first_cert() {
        let (dir, ca) = world();
        let clock = Arc::new(VirtualClock::default());
        let plan = FaultPlan::new(9).with_window(100, 200, FaultKind::DirectoryStale);
        let chaos =
            ChaosDirectory::new(Arc::clone(&dir) as Arc<dyn CertSource>, plan, clock.clone());
        let alice = Principal::named("alice");

        let first = chaos.fetch_cert(&alice).unwrap();
        // Rekey: publish a different public value.
        let pv2 = PrivateValue::from_entropy(DhGroup::test_group(), b"alice-rekey").public_value();
        dir.publish(ca.issue(alice.clone(), pv2, 0, u64::MAX));

        clock.set_us(150);
        let stale = chaos.fetch_cert(&alice).unwrap();
        assert_eq!(stale, first, "stale window must replay the snapshot");
        assert_eq!(chaos.stats().stale_served, 1);

        clock.set_us(250);
        let fresh = chaos.fetch_cert(&alice).unwrap();
        assert_ne!(fresh, first, "after the window the rekey is visible");
    }

    #[test]
    fn garbage_window_corrupts_deterministically() {
        let (dir, _ca) = world();
        let clock = Arc::new(VirtualClock::starting_at_us(150));
        let plan = FaultPlan::new(42).with_window(100, 200, FaultKind::DirectoryGarbage);
        let chaos = ChaosDirectory::new(Arc::clone(&dir) as Arc<dyn CertSource>, plan, clock);
        let alice = Principal::named("alice");

        let a = chaos.fetch_cert(&alice).unwrap();
        let b = chaos.fetch_cert(&alice).unwrap();
        assert_eq!(a, b, "same seed, same principal, same corruption");
        let clean = dir.fetch(&alice).unwrap();
        assert_ne!(a.public_value, clean.public_value);
        // Exactly one bit differs.
        let flipped: u32 = a
            .public_value
            .bytes
            .iter()
            .zip(clean.public_value.bytes.iter())
            .map(|(x, y)| (x ^ y).count_ones())
            .sum();
        assert_eq!(flipped, 1);
        assert_eq!(chaos.stats().garbage_served, 2);
    }

    #[test]
    fn latency_window_accounts_extra_rtt() {
        let (dir, _ca) = world();
        let clock = Arc::new(VirtualClock::starting_at_us(10));
        let plan = FaultPlan::new(9).with_window(
            0,
            100,
            FaultKind::DirectoryLatency { extra_rtt_us: 777 },
        );
        let chaos = ChaosDirectory::new(dir, plan, clock);
        chaos.fetch_cert(&Principal::named("alice")).unwrap();
        assert_eq!(chaos.stats().injected_rtt_us, 777);
    }
}
