//! Streamed million-flow server workloads for the scale benches.
//!
//! The §7.3 models in [`model`](crate::model) materialise whole traces
//! as `Vec<PacketRecord>` — right for regenerating the paper's figures
//! (tens of thousands of packets), hopeless for probing soft-state
//! tables at million-flow residency. [`ScaleTrace`] is the streamed
//! counterpart: an iterator that synthesises a modern server-side
//! workload packet by packet in O(active-window) memory, so a bench can
//! pull hundreds of millions of datagrams drawn from a multi-million
//! client population without ever holding a trace in memory.
//!
//! Shape of the workload (all seeded and deterministic):
//!
//! * **Heavy-tailed flow sizes** — Pareto datagram counts: most flows
//!   are a handful of packets, a small elephant tail carries the bytes
//!   (the same qualitative shape §7.3 reports, pushed to server scale).
//! * **Power-law client popularity** — flow births pick clients by a
//!   skewed inverse-CDF over the configured population, so a hot
//!   minority of clients recurs while the long tail keeps introducing
//!   cold addresses. No per-client state exists; the population is
//!   statistical, which is what lets it reach millions.
//! * **Modern port reuse** — each client draws source ports from a
//!   small ephemeral span, so returning clients re-present earlier
//!   5-tuples at realistic rates (NAT pools, connection-reusing
//!   runtimes) and the flow tables see genuine key recurrence, not an
//!   endless stream of fresh keys.

use crate::record::PacketRecord;
use fbs_ip::FiveTuple;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const TCP: u8 = 6;

/// Parameters of the streamed server workload.
#[derive(Clone, Debug)]
pub struct ScaleConfig {
    /// RNG seed; equal configs yield byte-identical streams.
    pub seed: u64,
    /// Statistical client population (distinct possible remote hosts).
    /// Addresses are unique per client up to 2^24; no per-client state
    /// is kept, so millions cost nothing.
    pub clients: u64,
    /// Power-law skew of client popularity: a birth picks
    /// `client = floor(clients * u^skew)`. 1.0 is uniform; larger
    /// concentrates traffic on a hot minority.
    pub client_skew: f64,
    /// Concurrently active flows (the only O(n) state in the stream).
    pub active_flows: usize,
    /// Pareto shape of flow datagram counts; shapes just above 1 give
    /// the heavy elephant tail (mean `alpha/(alpha-1)` datagrams).
    pub flow_alpha: f64,
    /// Cap on a single flow's datagram count (keeps one elephant from
    /// monopolising the whole window).
    pub max_flow_dgrams: u64,
    /// Ephemeral source ports per client. Small spans make returning
    /// clients re-present earlier 5-tuples — the modern port-reuse
    /// knob.
    pub port_reuse_span: u16,
    /// Offered load, datagrams per second (drives `t_ms`).
    pub dgrams_per_sec: u64,
    /// The server every flow terminates at.
    pub server: [u8; 4],
    /// The server port.
    pub server_port: u16,
}

impl Default for ScaleConfig {
    fn default() -> Self {
        ScaleConfig {
            seed: 2026,
            clients: 2_000_000,
            client_skew: 2.0,
            active_flows: 8_192,
            flow_alpha: 1.2,
            max_flow_dgrams: 1 << 20,
            port_reuse_span: 64,
            dgrams_per_sec: 1_000_000,
            server: [10, 9, 0, 1],
            server_port: 443,
        }
    }
}

/// One slot of the bounded active-flow window.
#[derive(Clone, Debug)]
struct ActiveFlow {
    tuple: FiveTuple,
    /// Datagrams this flow has left to emit.
    remaining: u64,
    /// Per-datagram payload length (fixed per flow; drawn small-biased).
    len: u32,
}

/// The streamed workload: an infinite, deterministic
/// `Iterator<Item = PacketRecord>`. Bound it with `take(n)`; memory
/// stays O(`active_flows`) no matter how many packets are pulled.
#[derive(Debug)]
pub struct ScaleTrace {
    cfg: ScaleConfig,
    rng: StdRng,
    /// The active window; `None` slots have not seen a flow yet.
    active: Vec<Option<ActiveFlow>>,
    emitted: u64,
    flows_started: u64,
}

impl ScaleTrace {
    /// A stream over `cfg`'s workload, positioned at its first packet.
    pub fn new(cfg: ScaleConfig) -> Self {
        let slots = cfg.active_flows.max(1);
        ScaleTrace {
            rng: StdRng::seed_from_u64(cfg.seed),
            active: vec![None; slots],
            cfg,
            emitted: 0,
            flows_started: 0,
        }
    }

    /// Datagrams emitted so far.
    pub fn emitted(&self) -> u64 {
        self.emitted
    }

    /// Flows born so far (births ≥ distinct 5-tuples: port reuse makes
    /// some births re-present an earlier tuple).
    pub fn flows_started(&self) -> u64 {
        self.flows_started
    }

    /// The only O(n) state: the bounded active-flow window.
    pub fn window_len(&self) -> usize {
        self.active.len()
    }

    /// Pick a client by power-law popularity and give it an address —
    /// unique per client for populations up to 2^24, aliased into the
    /// same space beyond (indistinguishable from extra sharing).
    fn birth(&mut self) -> ActiveFlow {
        self.flows_started += 1;
        let u: f64 = self.rng.gen_range(1e-12..1.0);
        let client = ((self.cfg.clients as f64) * u.powf(self.cfg.client_skew)) as u64;
        let saddr = [10, (client >> 16) as u8, (client >> 8) as u8, client as u8];
        // Ephemeral port from the client's reuse span. The span is
        // positioned by the client id so two clients aliased to one
        // address still look like one host with one port pool.
        let span = self.cfg.port_reuse_span.max(1);
        let sport = 32_768 + self.rng.gen_range(0..span);
        // Pareto(1, alpha) datagram count, capped.
        let v: f64 = self.rng.gen_range(1e-12..1.0);
        let dgrams =
            (v.powf(-1.0 / self.cfg.flow_alpha).ceil() as u64).clamp(1, self.cfg.max_flow_dgrams);
        // Small-biased per-flow datagram length: squaring the uniform
        // pushes mass toward the 64 B floor while keeping MTU-filling
        // bulk flows present.
        let w: f64 = self.rng.gen_range(0.0..1.0);
        let len = 64 + (w * w * 1_336.0) as u32;
        ActiveFlow {
            tuple: FiveTuple {
                proto: TCP,
                saddr,
                sport,
                daddr: self.cfg.server,
                dport: self.cfg.server_port,
            },
            remaining: dgrams,
            len,
        }
    }
}

impl Iterator for ScaleTrace {
    type Item = PacketRecord;

    fn next(&mut self) -> Option<PacketRecord> {
        let slot = self.rng.gen_range(0..self.active.len());
        let needs_birth = match &self.active[slot] {
            Some(f) => f.remaining == 0,
            None => true,
        };
        if needs_birth {
            self.active[slot] = Some(self.birth());
        }
        let t_ms = self.emitted * 1_000 / self.cfg.dgrams_per_sec.max(1);
        self.emitted += 1;
        let flow = self.active[slot].as_mut().expect("slot just filled");
        flow.remaining -= 1;
        Some(PacketRecord {
            t_ms,
            tuple: flow.tuple,
            len: flow.len,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    fn small_cfg() -> ScaleConfig {
        ScaleConfig {
            clients: 100_000,
            active_flows: 256,
            ..ScaleConfig::default()
        }
    }

    #[test]
    fn stream_is_deterministic_by_seed() {
        let a: Vec<PacketRecord> = ScaleTrace::new(small_cfg()).take(10_000).collect();
        let b: Vec<PacketRecord> = ScaleTrace::new(small_cfg()).take(10_000).collect();
        assert_eq!(a, b);
        let other = ScaleTrace::new(ScaleConfig {
            seed: 999,
            ..small_cfg()
        })
        .take(10_000)
        .collect::<Vec<_>>();
        assert_ne!(a, other);
    }

    #[test]
    fn memory_stays_bounded_by_the_window() {
        let mut s = ScaleTrace::new(small_cfg());
        for _ in 0..100_000 {
            s.next();
        }
        assert_eq!(s.window_len(), 256);
        assert_eq!(s.emitted(), 100_000);
        assert!(s.flows_started() > 256, "flows must churn through slots");
    }

    #[test]
    fn client_population_is_wide() {
        let mut clients = std::collections::HashSet::new();
        for r in ScaleTrace::new(ScaleConfig {
            clients: 1_000_000,
            active_flows: 1_024,
            ..ScaleConfig::default()
        })
        .take(200_000)
        {
            clients.insert(r.tuple.saddr);
        }
        assert!(
            clients.len() > 10_000,
            "expected a wide client population, got {}",
            clients.len()
        );
    }

    #[test]
    fn flow_sizes_are_heavy_tailed() {
        let mut per_flow: HashMap<FiveTuple, u64> = HashMap::new();
        for r in ScaleTrace::new(small_cfg()).take(300_000) {
            *per_flow.entry(r.tuple).or_insert(0) += 1;
        }
        let mut sizes: Vec<u64> = per_flow.values().copied().collect();
        sizes.sort_unstable();
        let median = sizes[sizes.len() / 2];
        let max = *sizes.last().unwrap();
        assert!(
            max >= median * 50,
            "tail too light: median {median}, max {max}"
        );
    }

    #[test]
    fn small_port_spans_reuse_five_tuples() {
        // A tiny client pool with a tiny port span must re-present
        // earlier 5-tuples: births strictly exceed distinct keys.
        let mut s = ScaleTrace::new(ScaleConfig {
            clients: 50,
            client_skew: 1.0,
            port_reuse_span: 4,
            active_flows: 64,
            ..ScaleConfig::default()
        });
        let mut distinct = std::collections::HashSet::new();
        for _ in 0..100_000 {
            distinct.insert(s.next().unwrap().tuple);
        }
        assert!(distinct.len() as u64 <= 50 * 4);
        assert!(
            s.flows_started() > distinct.len() as u64 * 10,
            "births ({}) should dwarf distinct tuples ({})",
            s.flows_started(),
            distinct.len()
        );
    }

    #[test]
    fn timestamps_follow_the_offered_rate() {
        let cfg = ScaleConfig {
            dgrams_per_sec: 1_000,
            ..small_cfg()
        };
        let records: Vec<PacketRecord> = ScaleTrace::new(cfg).take(3_000).collect();
        assert_eq!(records[0].t_ms, 0);
        assert_eq!(records[999].t_ms, 999);
        assert_eq!(records[2_999].t_ms, 2_999);
        assert!(records.windows(2).all(|w| w[0].t_ms <= w[1].t_ms));
    }
}
