//! Synthetic workload models of the paper's two measurement environments.
//!
//! §7.3 cautions that "flow characteristics are very much dependent on the
//! type of traffic and network environment"; these models are shaped to
//! the *qualitative* mix the paper reports for its server-based campus
//! LAN — a majority of short, few-packet conversations (TELNET keystroke
//! bursts, DNS queries, X11 events, WWW hits) plus a few long-lived flows
//! (NFS, FTP bulk data) that carry the bulk of the bytes — so the
//! regenerated Figs. 9-14 reproduce the paper's shapes, not its exact
//! numbers.
//!
//! Everything is seeded and deterministic.

use crate::record::PacketRecord;
use fbs_ip::FiveTuple;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const UDP: u8 = 17;
const TCP: u8 = 6; // "MRT" in the live simulator; classic numbering here

/// Campus LAN model parameters.
#[derive(Clone, Debug)]
pub struct CampusConfig {
    /// RNG seed.
    pub seed: u64,
    /// Trace length in seconds.
    pub duration_secs: u64,
    /// Number of user desktops.
    pub desktops: usize,
    /// Number of NFS file servers.
    pub file_servers: usize,
    /// Number of compute (TELNET/X11) servers.
    pub compute_servers: usize,
    /// Mean TELNET sessions per desktop per hour.
    pub telnet_per_hour: f64,
    /// Mean FTP sessions per desktop per hour.
    pub ftp_per_hour: f64,
    /// Mean X11 sessions per desktop per hour.
    pub x11_per_hour: f64,
    /// Fraction of desktops with NFS-mounted home directories.
    pub nfs_fraction: f64,
    /// Mean DNS queries per desktop per hour.
    pub dns_per_hour: f64,
}

impl Default for CampusConfig {
    fn default() -> Self {
        CampusConfig {
            seed: 1997,
            duration_secs: 2 * 3600,
            desktops: 40,
            file_servers: 2,
            compute_servers: 2,
            telnet_per_hour: 1.0,
            ftp_per_hour: 0.5,
            x11_per_hour: 0.4,
            nfs_fraction: 0.5,
            // 1996 campus hosts resolved most names locally; DNS one-shot
            // conversations are present but do not dominate flow births.
            dns_per_hour: 4.0,
        }
    }
}

/// WWW server model parameters.
#[derive(Clone, Debug)]
pub struct WwwConfig {
    /// RNG seed.
    pub seed: u64,
    /// Trace length in seconds.
    pub duration_secs: u64,
    /// Request rate — the paper's server saw ~10,000 hits/day.
    pub hits_per_day: f64,
    /// Size of the client population (distinct remote hosts).
    pub clients: usize,
}

impl Default for WwwConfig {
    fn default() -> Self {
        WwwConfig {
            seed: 1997,
            duration_secs: 6 * 3600,
            hits_per_day: 10_000.0,
            clients: 400,
        }
    }
}

/// Address plan for the simulated LAN.
fn desktop_addr(i: usize) -> [u8; 4] {
    [10, 1, 0, 10 + i as u8]
}
fn file_server_addr(i: usize) -> [u8; 4] {
    [10, 1, 1, 1 + i as u8]
}
fn compute_server_addr(i: usize) -> [u8; 4] {
    [10, 1, 2, 1 + i as u8]
}
const DNS_SERVER: [u8; 4] = [10, 1, 3, 1];
const WWW_SERVER: [u8; 4] = [10, 1, 4, 1];

/// Exponential variate with the given mean.
fn exp(rng: &mut StdRng, mean_secs: f64) -> f64 {
    let u: f64 = rng.gen_range(1e-12..1.0);
    -mean_secs * u.ln()
}

struct TraceBuilder {
    records: Vec<PacketRecord>,
    end_ms: u64,
}

impl TraceBuilder {
    #[allow(clippy::too_many_arguments)]
    fn push(&mut self, t: f64, proto: u8, s: [u8; 4], sp: u16, d: [u8; 4], dp: u16, len: u32) {
        let t_ms = (t * 1000.0) as u64;
        if t_ms >= self.end_ms {
            return;
        }
        self.records.push(PacketRecord {
            t_ms,
            tuple: FiveTuple {
                proto,
                saddr: s,
                sport: sp,
                daddr: d,
                dport: dp,
            },
            len,
        });
    }
}

/// Per-host ephemeral port allocation, cycling sequentially through the
/// BSD range like `in_pcballoc` — so a 5-tuple only repeats after the
/// host wraps the port space (or deliberately reuses a fixed port, as the
/// NFS client mount does).
#[derive(Default)]
struct PortCycler {
    next: std::collections::HashMap<[u8; 4], u16>,
}

impl PortCycler {
    fn ephemeral(&mut self, host: [u8; 4]) -> u16 {
        let p = self.next.entry(host).or_insert(1024);
        let port = *p;
        *p = if *p >= 5000 { 1024 } else { *p + 1 };
        port
    }
}

/// Generate the campus LAN trace.
pub fn generate_campus_trace(cfg: &CampusConfig) -> Vec<PacketRecord> {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut ports = PortCycler::default();
    let mut tb = TraceBuilder {
        records: Vec::new(),
        end_ms: cfg.duration_secs * 1000,
    };
    let horizon = cfg.duration_secs as f64;

    for d in 0..cfg.desktops {
        let me = desktop_addr(d);

        // --- TELNET: long interactive sessions with quiet periods -------
        let mut t = exp(&mut rng, 3600.0 / cfg.telnet_per_hour.max(1e-9));
        while t < horizon {
            let server = compute_server_addr(rng.gen_range(0..cfg.compute_servers));
            let cport = ports.ephemeral(me);
            let session_len = exp(&mut rng, 1200.0).min(horizon - t);
            let mut s = t;
            while s < t + session_len {
                // Keystroke burst with echoes.
                let burst = rng.gen_range(1..=8);
                for k in 0..burst {
                    let bt = s + k as f64 * 0.2;
                    tb.push(bt, TCP, me, cport, server, 23, rng.gen_range(1..64));
                    tb.push(bt + 0.05, TCP, server, 23, me, cport, rng.gen_range(1..128));
                }
                // Think time; occasionally a quiet period that will split
                // the flow under the §7.1 policy. Quiet-period lengths are
                // exponential above a 2-minute floor, so most fall below
                // ~900 s — the gap structure behind the paper's
                // "insensitive above 900 s" observation in Fig. 13.
                s += if rng.gen_bool(0.06) {
                    120.0 + exp(&mut rng, 250.0)
                } else {
                    exp(&mut rng, 5.0).max(0.5)
                };
            }
            t += exp(&mut rng, 3600.0 / cfg.telnet_per_hour.max(1e-9)).max(session_len);
        }

        // --- FTP: control conversation + bulk data --------------------
        let mut t = exp(&mut rng, 3600.0 / cfg.ftp_per_hour.max(1e-9));
        while t < horizon {
            let server = file_server_addr(rng.gen_range(0..cfg.file_servers));
            let cport = ports.ephemeral(me);
            // Control chatter.
            for k in 0..rng.gen_range(4..10) {
                let ct = t + k as f64 * rng.gen_range(0.5..3.0);
                tb.push(ct, TCP, me, cport, server, 21, rng.gen_range(10..80));
                tb.push(
                    ct + 0.02,
                    TCP,
                    server,
                    21,
                    me,
                    cport,
                    rng.gen_range(20..200),
                );
            }
            // Bulk transfer: log-uniform 10 KB .. 4 MB, MSS packets
            // back-to-back at roughly 10 Mb/s.
            let dport = ports.ephemeral(me);
            let size_kb = 10.0 * (400.0f64).powf(rng.gen_range(0.0..1.0));
            let packets = ((size_kb * 1024.0) / 1460.0).ceil() as u64;
            let mut bt = t + 5.0;
            for _ in 0..packets {
                tb.push(bt, TCP, server, 20, me, dport, 1460);
                bt += 0.0012;
            }
            t += exp(&mut rng, 3600.0 / cfg.ftp_per_hour.max(1e-9)).max(bt - t);
        }

        // --- NFS: on/off periodic bulk (the long-lived elephants) -----
        if (d as f64) < cfg.nfs_fraction * cfg.desktops as f64 {
            let server = file_server_addr(d % cfg.file_servers);
            let cport = ports.ephemeral(me);
            let mut t = exp(&mut rng, 300.0);
            while t < horizon {
                // Active period.
                let active = exp(&mut rng, 600.0).min(horizon - t);
                let mut s = t;
                while s < t + active {
                    tb.push(s, UDP, me, cport, server, 2049, rng.gen_range(96..160));
                    tb.push(s + 0.01, UDP, server, 2049, me, cport, 8192);
                    s += exp(&mut rng, 1.5).max(0.02);
                }
                // Off period: 2-minute floor plus an exponential tail, so
                // some but not most gaps exceed common THRESHOLDs.
                t = s + 120.0 + exp(&mut rng, 400.0);
            }
        }

        // --- X11: interactive events ----------------------------------
        let mut t = exp(&mut rng, 3600.0 / cfg.x11_per_hour.max(1e-9));
        while t < horizon {
            let server = compute_server_addr(rng.gen_range(0..cfg.compute_servers));
            let cport = ports.ephemeral(me);
            let session_len = exp(&mut rng, 1800.0).min(horizon - t);
            let mut s = t;
            while s < t + session_len {
                tb.push(s, TCP, server, 6000, me, cport, rng.gen_range(64..2048));
                if rng.gen_bool(0.5) {
                    tb.push(
                        s + 0.01,
                        TCP,
                        me,
                        cport,
                        server,
                        6000,
                        rng.gen_range(8..128),
                    );
                }
                s += exp(&mut rng, 2.0).max(0.05);
            }
            t += exp(&mut rng, 3600.0 / cfg.x11_per_hour.max(1e-9)).max(session_len);
        }

        // --- DNS: tiny two-packet conversations ------------------------
        let mut t = exp(&mut rng, 3600.0 / cfg.dns_per_hour.max(1e-9));
        while t < horizon {
            let cport = ports.ephemeral(me);
            tb.push(t, UDP, me, cport, DNS_SERVER, 53, rng.gen_range(40..80));
            tb.push(
                t + 0.005,
                UDP,
                DNS_SERVER,
                53,
                me,
                cport,
                rng.gen_range(80..300),
            );
            t += exp(&mut rng, 3600.0 / cfg.dns_per_hour.max(1e-9));
        }
    }

    tb.records.sort_by_key(|r| r.t_ms);
    tb.records
}

/// Generate the WWW server trace (server-side capture: requests in,
/// responses out).
pub fn generate_www_trace(cfg: &WwwConfig) -> Vec<PacketRecord> {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut ports = PortCycler::default();
    let mut tb = TraceBuilder {
        records: Vec::new(),
        end_ms: cfg.duration_secs * 1000,
    };
    let horizon = cfg.duration_secs as f64;
    let mean_interarrival = 86_400.0 / cfg.hits_per_day;

    // Zipf-ish client popularity: client i has weight 1/(i+1).
    let weights: Vec<f64> = (0..cfg.clients).map(|i| 1.0 / (i + 1) as f64).collect();
    let total_w: f64 = weights.iter().sum();

    let mut t = exp(&mut rng, mean_interarrival);
    while t < horizon {
        // Pick a client by popularity.
        let mut pick = rng.gen_range(0.0..total_w);
        let mut client_idx = 0;
        for (i, w) in weights.iter().enumerate() {
            if pick < *w {
                client_idx = i;
                break;
            }
            pick -= w;
        }
        let client = [
            171,
            (client_idx / 251) as u8,
            (client_idx % 251) as u8,
            (17 + client_idx % 200) as u8,
        ];
        let cport = ports.ephemeral(client);
        // Request.
        tb.push(
            t,
            TCP,
            client,
            cport,
            WWW_SERVER,
            80,
            rng.gen_range(200..600),
        );
        // Response: log-uniform 1 KB .. 200 KB.
        let size_kb = 1.0 * (200.0f64).powf(rng.gen_range(0.0..1.0));
        let packets = ((size_kb * 1024.0) / 1460.0).ceil() as u64;
        let mut rt = t + rng.gen_range(0.01..0.2);
        for _ in 0..packets {
            tb.push(rt, TCP, WWW_SERVER, 80, client, cport, 1460);
            rt += rng.gen_range(0.001..0.05); // WAN pacing
        }
        t += exp(&mut rng, mean_interarrival);
    }

    tb.records.sort_by_key(|r| r.t_ms);
    tb.records
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    fn small_campus() -> CampusConfig {
        CampusConfig {
            duration_secs: 900,
            desktops: 8,
            ..CampusConfig::default()
        }
    }

    #[test]
    fn campus_trace_is_sorted_and_bounded() {
        let cfg = small_campus();
        let trace = generate_campus_trace(&cfg);
        assert!(!trace.is_empty());
        assert!(trace.windows(2).all(|w| w[0].t_ms <= w[1].t_ms));
        assert!(trace.iter().all(|r| r.t_ms < cfg.duration_secs * 1000));
    }

    #[test]
    fn campus_trace_deterministic_per_seed() {
        let cfg = small_campus();
        let a = generate_campus_trace(&cfg);
        let b = generate_campus_trace(&cfg);
        assert_eq!(a, b);
        let c = generate_campus_trace(&CampusConfig {
            seed: 2,
            ..small_campus()
        });
        assert_ne!(a, c);
    }

    #[test]
    fn campus_has_expected_traffic_mix() {
        let trace = generate_campus_trace(&small_campus());
        let protos: HashSet<u8> = trace.iter().map(|r| r.tuple.proto).collect();
        assert!(protos.contains(&6), "TCP-class traffic present");
        assert!(protos.contains(&17), "UDP-class traffic present");
        let dports: HashSet<u16> = trace.iter().map(|r| r.tuple.dport).collect();
        assert!(dports.contains(&53), "DNS");
        assert!(dports.contains(&2049), "NFS");
        assert!(dports.contains(&23), "TELNET");
    }

    #[test]
    fn elephants_carry_the_bulk() {
        // The paper's observation: a few flows (NFS/FTP bulk) carry most
        // of the bytes. Partition bytes by (dport ∈ {2049, 20}) vs rest.
        let trace = generate_campus_trace(&CampusConfig {
            duration_secs: 1800,
            desktops: 10,
            ..CampusConfig::default()
        });
        let total: u64 = trace.iter().map(|r| r.len as u64).sum();
        let bulk: u64 = trace
            .iter()
            .filter(|r| {
                r.tuple.dport == 2049
                    || r.tuple.sport == 2049
                    || r.tuple.sport == 20
                    || r.tuple.dport == 20
            })
            .map(|r| r.len as u64)
            .sum();
        assert!(
            bulk as f64 > 0.5 * total as f64,
            "bulk {} of {} should dominate",
            bulk,
            total
        );
    }

    #[test]
    fn www_trace_rate_roughly_matches() {
        let cfg = WwwConfig {
            duration_secs: 3600,
            ..WwwConfig::default()
        };
        let trace = generate_www_trace(&cfg);
        // ~10k/day ⇒ ~417 hits/hour; count distinct request packets
        // (client→server port 80).
        let hits = trace.iter().filter(|r| r.tuple.dport == 80).count();
        assert!((200..700).contains(&hits), "hits {hits}");
    }

    #[test]
    fn www_clients_skewed_by_popularity() {
        let trace = generate_www_trace(&WwwConfig {
            duration_secs: 4 * 3600,
            ..WwwConfig::default()
        });
        let mut per_client = std::collections::HashMap::new();
        for r in trace.iter().filter(|r| r.tuple.dport == 80) {
            *per_client.entry(r.tuple.saddr).or_insert(0u32) += 1;
        }
        let mut counts: Vec<u32> = per_client.values().copied().collect();
        counts.sort_unstable_by(|a, b| b.cmp(a));
        assert!(counts.len() > 10, "many distinct clients");
        assert!(
            counts[0] >= 4 * counts[counts.len() / 2].max(1),
            "popular clients dominate: top {} vs median {}",
            counts[0],
            counts[counts.len() / 2]
        );
    }
}
