//! Converting live sniffer captures into analysable packet traces.
//!
//! The paper's methodology (§7.3): Pentium-133s ran tcpdump on the
//! workgroup LAN, and the captured traces were "fed into a number of flow
//! simulation programs". This module is the tcpdump-to-trace step for the
//! simulated segment: frames captured promiscuously by
//! [`fbs_net::stack::Network::take_capture`] become [`PacketRecord`]s
//! ready for [`crate::flowsim`].
//!
//! Note the paper's measurement was of a LAN *without* FBS deployed (the
//! simulations ask what WOULD happen "had every machine on the LAN
//! implemented FBS"). Likewise, port extraction here only works for
//! unprotected traffic — on an FBS-protected segment the transport header
//! is encrypted and a sniffer can only form host-level records, which is
//! FBS doing its job (see [`records_from_frames_host_level`]).

use crate::record::PacketRecord;
use fbs_ip::FiveTuple;
use fbs_net::ip::{Packet, IPV4_HEADER_LEN};

/// Parse captured frames into 5-tuple packet records. Frames that do not
/// parse, or whose transport ports are unreadable, are skipped (a real
/// tcpdump also drops runts).
pub fn records_from_frames(frames: &[(u64, Vec<u8>)]) -> Vec<PacketRecord> {
    frames
        .iter()
        .filter_map(|(t_us, frame)| {
            let packet = Packet::decode(frame).ok()?;
            let tuple = FiveTuple::extract(
                packet.header.proto,
                packet.header.src,
                packet.header.dst,
                &packet.payload,
            )?;
            Some(PacketRecord {
                t_ms: t_us / 1000,
                tuple,
                len: (packet.header.total_len as usize).saturating_sub(IPV4_HEADER_LEN) as u32,
            })
        })
        .collect()
}

/// Parse captured frames into host-level records (ports zeroed) — all a
/// sniffer can recover from an FBS-protected segment, where the transport
/// header travels inside the encrypted body.
pub fn records_from_frames_host_level(frames: &[(u64, Vec<u8>)]) -> Vec<PacketRecord> {
    frames
        .iter()
        .filter_map(|(t_us, frame)| {
            let packet = Packet::decode(frame).ok()?;
            Some(PacketRecord {
                t_ms: t_us / 1000,
                tuple: FiveTuple {
                    proto: packet.header.proto,
                    saddr: packet.header.src,
                    sport: 0,
                    daddr: packet.header.dst,
                    dport: 0,
                },
                len: (packet.header.total_len as usize).saturating_sub(IPV4_HEADER_LEN) as u32,
            })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use fbs_net::segment::Impairments;
    use fbs_net::stack::{Host, Network};

    const A: [u8; 4] = [10, 0, 0, 1];
    const B: [u8; 4] = [10, 0, 0, 2];

    fn plain_network_with_traffic() -> Vec<(u64, Vec<u8>)> {
        let mut net = Network::new(5, Impairments::default());
        net.add_host(Host::new(A, 1500));
        net.add_host(Host::new(B, 1500));
        net.enable_capture();
        net.host_mut(B).udp.bind(53).unwrap();
        for i in 0..5u16 {
            let now = net.now_us();
            net.host_mut(A)
                .udp_send(1024 + i, B, 53, b"sniffed datagram", now)
                .unwrap();
            net.step(5_000);
        }
        net.run(50_000, 1_000);
        net.take_capture()
    }

    #[test]
    fn capture_to_records_pipeline() {
        let frames = plain_network_with_traffic();
        assert!(frames.len() >= 5);
        let records = records_from_frames(&frames);
        assert_eq!(records.len(), 5);
        for (i, r) in records.iter().enumerate() {
            assert_eq!(r.tuple.saddr, A);
            assert_eq!(r.tuple.daddr, B);
            assert_eq!(r.tuple.dport, 53);
            assert_eq!(r.tuple.sport, 1024 + i as u16);
            assert_eq!(r.tuple.proto, 17);
            assert!(r.len as usize >= 16);
        }
        // Times are non-decreasing (arrival order).
        assert!(records.windows(2).all(|w| w[0].t_ms <= w[1].t_ms));
    }

    #[test]
    fn captured_records_feed_the_flow_simulator() {
        // Full pipeline closure: live traffic → sniffer → records →
        // flow simulation. Five distinct source ports ⇒ five flows.
        let frames = plain_network_with_traffic();
        let records = records_from_frames(&frames);
        let result =
            crate::flowsim::simulate_flows(&records, &crate::flowsim::FlowSimConfig::default());
        assert_eq!(result.flows_started, 5);
        assert_eq!(result.classifications, 5);
    }

    #[test]
    fn host_level_fallback_zeroes_ports() {
        let frames = plain_network_with_traffic();
        let records = records_from_frames_host_level(&frames);
        assert_eq!(records.len(), 5);
        assert!(records
            .iter()
            .all(|r| r.tuple.sport == 0 && r.tuple.dport == 0));
    }
}
