//! Packet trace records (tcpdump-like) with a plain-text codec.

use fbs_ip::FiveTuple;
use std::fmt;

/// One captured packet: arrival time, 5-tuple, payload length.
///
/// ```
/// use fbs_trace::PacketRecord;
/// let line = "1500 17 10.1.0.10 1024 10.1.3.1 53 64";
/// let r = PacketRecord::from_line(line).unwrap();
/// assert_eq!(r.t_secs(), 1);
/// assert_eq!(r.tuple.dport, 53);
/// assert_eq!(r.to_line(), line);
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PacketRecord {
    /// Arrival time in milliseconds from trace start.
    pub t_ms: u64,
    /// The packet's 5-tuple.
    pub tuple: FiveTuple,
    /// Transport payload bytes.
    pub len: u32,
}

impl PacketRecord {
    /// Arrival time in whole seconds (the FAM granularity).
    pub fn t_secs(&self) -> u64 {
        self.t_ms / 1000
    }

    /// One-line text form: `t_ms proto s.s.s.s sport d.d.d.d dport len`.
    pub fn to_line(&self) -> String {
        let t = &self.tuple;
        format!(
            "{} {} {}.{}.{}.{} {} {}.{}.{}.{} {} {}",
            self.t_ms,
            t.proto,
            t.saddr[0],
            t.saddr[1],
            t.saddr[2],
            t.saddr[3],
            t.sport,
            t.daddr[0],
            t.daddr[1],
            t.daddr[2],
            t.daddr[3],
            t.dport,
            self.len,
        )
    }

    /// Parse the [`to_line`](Self::to_line) format.
    pub fn from_line(line: &str) -> Option<PacketRecord> {
        let mut parts = line.split_whitespace();
        let t_ms = parts.next()?.parse().ok()?;
        let proto = parts.next()?.parse().ok()?;
        let saddr = parse_addr(parts.next()?)?;
        let sport = parts.next()?.parse().ok()?;
        let daddr = parse_addr(parts.next()?)?;
        let dport = parts.next()?.parse().ok()?;
        let len = parts.next()?.parse().ok()?;
        if parts.next().is_some() {
            return None;
        }
        Some(PacketRecord {
            t_ms,
            tuple: FiveTuple {
                proto,
                saddr,
                sport,
                daddr,
                dport,
            },
            len,
        })
    }
}

fn parse_addr(s: &str) -> Option<[u8; 4]> {
    let mut out = [0u8; 4];
    let mut parts = s.split('.');
    for slot in &mut out {
        *slot = parts.next()?.parse().ok()?;
    }
    parts.next().is_none().then_some(out)
}

impl fmt::Display for PacketRecord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_line())
    }
}

/// Serialise a trace to the line format.
pub fn write_trace(records: &[PacketRecord]) -> String {
    let mut out = String::new();
    for r in records {
        out.push_str(&r.to_line());
        out.push('\n');
    }
    out
}

/// Parse a trace in the line format, skipping blank and `#` comment lines.
pub fn read_trace(text: &str) -> Vec<PacketRecord> {
    text.lines()
        .filter(|l| !l.trim().is_empty() && !l.trim_start().starts_with('#'))
        .filter_map(PacketRecord::from_line)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> PacketRecord {
        PacketRecord {
            t_ms: 123_456,
            tuple: FiveTuple {
                proto: 17,
                saddr: [10, 0, 0, 7],
                sport: 2049,
                daddr: [10, 0, 0, 1],
                dport: 1023,
            },
            len: 8192,
        }
    }

    #[test]
    fn line_roundtrip() {
        let r = sample();
        assert_eq!(PacketRecord::from_line(&r.to_line()), Some(r));
    }

    #[test]
    fn trace_roundtrip_with_comments() {
        let rs = vec![sample(), sample()];
        let mut text = String::from("# tcpdump-ish trace\n\n");
        text.push_str(&write_trace(&rs));
        assert_eq!(read_trace(&text), rs);
    }

    #[test]
    fn malformed_lines_skipped() {
        assert!(PacketRecord::from_line("garbage").is_none());
        assert!(PacketRecord::from_line("1 17 10.0.0.1 1 10.0.0.2 2 3 extra").is_none());
        assert!(PacketRecord::from_line("1 17 10.0.0 1 10.0.0.2 2 3").is_none());
    }

    #[test]
    fn seconds_conversion() {
        assert_eq!(sample().t_secs(), 123);
    }
}
