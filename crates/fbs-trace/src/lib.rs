//! # fbs-trace — flow-characteristics experiments (paper §7.3)
//!
//! The paper's flow measurements came from tcpdump traces of a Stanford
//! workgroup LAN ("a number of file and compute servers in addition to
//! individual users' desktops") and of a lightly-hit (~10,000 hits/day)
//! WWW server, fed into "a number of flow simulation programs". The
//! original traces are long gone; this crate rebuilds the pipeline:
//!
//! * [`record`] — packet-level trace records with a plain-text codec;
//! * [`model`] — seeded synthetic workload models of the two environments
//!   (campus LAN with TELNET/FTP/NFS/X11/DNS traffic, WWW server with a
//!   Zipf-ish client population), shaped to the qualitative traffic mix
//!   the paper describes: many short interactive conversations plus a few
//!   long-lived bulk flows carrying most of the bytes;
//! * [`flowsim`] — the flow simulation programs: replay a trace through
//!   per-source-host FAMs with the Fig. 7 policy, producing flow sizes
//!   (Fig. 9), durations (Fig. 10), key-cache miss rates vs geometry/hash
//!   (Fig. 11), concurrent active flows (Fig. 12), the THRESHOLD sweep
//!   (Fig. 13) and repeated-flow counts (Fig. 14);
//! * [`stats`] — histograms, CDFs and fixed-width table rendering for the
//!   figure-regeneration binaries in `fbs-bench`;
//! * [`capture`] — the tcpdump step: converts promiscuous captures from
//!   the live simulated segment into analysable packet records.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod capture;
pub mod flowsim;
pub mod model;
pub mod record;
pub mod scale;
pub mod stats;

pub use flowsim::{simulate_cache, simulate_flows, CacheSimConfig, FlowSimConfig, FlowSimResult};
pub use model::{generate_campus_trace, generate_www_trace, CampusConfig, WwwConfig};
pub use record::PacketRecord;
pub use scale::{ScaleConfig, ScaleTrace};
