//! Small statistics toolkit for the figure-regeneration binaries:
//! log-bucketed histograms, CDF sampling, and fixed-width text tables.
//!
//! [`LogHistogram`] shares its bucketing with the registry histograms in
//! `fbs-obs`, and converts to/from [`HistogramSnapshot`] so figure
//! binaries can export either through the same `--metrics` pipeline.

use fbs_obs::HistogramSnapshot;

/// A histogram over power-of-two buckets: bucket k holds values in
/// `[2^k, 2^(k+1))` (bucket 0 holds 0 and 1).
#[derive(Clone, Debug, Default)]
pub struct LogHistogram {
    counts: Vec<u64>,
    total: u64,
    sum: u64,
}

impl LogHistogram {
    /// Empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add one observation.
    pub fn add(&mut self, value: u64) {
        let bucket = if value <= 1 {
            0
        } else {
            63 - value.leading_zeros() as usize
        };
        if self.counts.len() <= bucket {
            self.counts.resize(bucket + 1, 0);
        }
        self.counts[bucket] += 1;
        self.total += 1;
        self.sum = self.sum.saturating_add(value);
    }

    /// (bucket lower bound, bucket upper bound, count, cumulative fraction
    /// ≤ upper bound). Bucket 0 covers `[0, 1]`; bucket k covers
    /// `[2^k, 2^(k+1) - 1]`.
    pub fn rows(&self) -> Vec<(u64, u64, u64, f64)> {
        let mut cum = 0u64;
        self.counts
            .iter()
            .enumerate()
            .map(|(k, &c)| {
                cum += c;
                let (lo, hi) = if k == 0 {
                    (0, 1)
                } else if k >= 63 {
                    (1u64 << 63, u64::MAX)
                } else {
                    (1u64 << k, (1u64 << (k + 1)) - 1)
                };
                (lo, hi, c, cum as f64 / self.total.max(1) as f64)
            })
            .collect()
    }

    /// Total observations.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Sum of all observed values (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// View as an [`fbs_obs::HistogramSnapshot`] (non-empty buckets only).
    /// The bucketing is identical, so the conversion is lossless.
    pub fn to_snapshot(&self) -> HistogramSnapshot {
        let buckets = self
            .counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(k, &c)| {
                let lo = if k == 0 { 0 } else { 1u64 << k };
                let hi = if k >= 63 {
                    u64::MAX
                } else {
                    (1u64 << (k + 1)) - 1
                };
                (lo, hi, c)
            })
            .collect();
        HistogramSnapshot {
            buckets,
            sum: self.sum,
        }
    }

    /// Rebuild from a registry [`HistogramSnapshot`] (e.g. to reuse the
    /// CDF/percentile helpers on a live registry's latency histogram).
    pub fn from_snapshot(snap: &HistogramSnapshot) -> Self {
        let mut h = LogHistogram::new();
        for &(lo, _, count) in &snap.buckets {
            let bucket = if lo <= 1 {
                0
            } else {
                63 - lo.leading_zeros() as usize
            };
            if h.counts.len() <= bucket {
                h.counts.resize(bucket + 1, 0);
            }
            h.counts[bucket] += count;
            h.total += count;
        }
        h.sum = snap.sum;
        h
    }
}

/// Sample a CDF from sorted values at `points` evenly-spaced fractions,
/// returning (value, fraction).
pub fn cdf_points(sorted: &[u64], points: usize) -> Vec<(u64, f64)> {
    if sorted.is_empty() || points == 0 {
        return Vec::new();
    }
    (1..=points)
        .map(|i| {
            let frac = i as f64 / points as f64;
            let idx = (((sorted.len() as f64) * frac).ceil() as usize).min(sorted.len()) - 1;
            (sorted[idx], frac)
        })
        .collect()
}

/// Percentile (0-100) of sorted values.
pub fn percentile(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = ((sorted.len() as f64 * p / 100.0).ceil() as usize).clamp(1, sorted.len()) - 1;
    sorted[idx]
}

/// Arithmetic mean.
pub fn mean(values: &[u64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    values.iter().sum::<u64>() as f64 / values.len() as f64
}

/// Render an aligned fixed-width text table.
pub fn render_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let ncols = headers.len();
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate().take(ncols) {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let mut out = String::new();
    let fmt_row = |cells: &[String], widths: &[usize]| -> String {
        let mut line = String::new();
        for (i, c) in cells.iter().enumerate() {
            if i > 0 {
                line.push_str("  ");
            }
            line.push_str(&format!("{c:>width$}", width = widths[i]));
        }
        line
    };
    let header_cells: Vec<String> = headers.iter().map(|h| h.to_string()).collect();
    out.push_str(&fmt_row(&header_cells, &widths));
    out.push('\n');
    out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (ncols - 1)));
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row, &widths));
        out.push('\n');
    }
    out
}

/// Render rows as CSV (for `--csv` output of the figure binaries).
pub fn render_csv(headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut out = headers.join(",");
    out.push('\n');
    for row in rows {
        out.push_str(&row.join(","));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets() {
        let mut h = LogHistogram::new();
        for v in [0, 1, 2, 3, 4, 7, 8, 1000] {
            h.add(v);
        }
        let rows = h.rows();
        assert_eq!(h.total(), 8);
        // bucket 0: {0,1} → 2; bucket 1 (values 2..3): {2,3} → 2;
        // bucket 2 (4..7): {4,7} → 2; bucket 3 (8..15): {8} → 1;
        // bucket 9 (512..1023): {1000} → 1.
        assert_eq!(rows[0], (0, 1, 2, 0.25));
        assert_eq!((rows[1].0, rows[1].1, rows[1].2), (2, 3, 2));
        assert_eq!((rows[2].0, rows[2].1, rows[2].2), (4, 7, 2));
        assert_eq!(rows[3].2, 1);
        assert_eq!((rows[9].0, rows[9].1, rows[9].2), (512, 1023, 1));
        assert!((rows.last().unwrap().3 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn snapshot_round_trip_is_lossless() {
        let mut h = LogHistogram::new();
        for v in [0, 1, 2, 5, 8, 9, 4096, u64::MAX] {
            h.add(v);
        }
        let snap = h.to_snapshot();
        assert_eq!(snap.count(), h.total());
        let back = LogHistogram::from_snapshot(&snap);
        assert_eq!(back.rows(), h.rows());
        assert_eq!(back.total(), h.total());
    }

    #[test]
    fn cdf_sampling() {
        let values: Vec<u64> = (1..=100).collect();
        let pts = cdf_points(&values, 4);
        assert_eq!(pts, vec![(25, 0.25), (50, 0.5), (75, 0.75), (100, 1.0)]);
        assert!(cdf_points(&[], 4).is_empty());
    }

    #[test]
    fn percentiles_and_mean() {
        let values: Vec<u64> = (1..=10).collect();
        assert_eq!(percentile(&values, 50.0), 5);
        assert_eq!(percentile(&values, 100.0), 10);
        assert_eq!(percentile(&values, 1.0), 1);
        assert_eq!(mean(&values), 5.5);
        assert_eq!(mean(&[]), 0.0);
    }

    #[test]
    fn table_rendering_aligns() {
        let t = render_table(
            &["name", "count"],
            &[
                vec!["a".into(), "1".into()],
                vec!["long-name".into(), "12345".into()],
            ],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("name"));
        assert!(lines[3].ends_with("12345"));
    }

    #[test]
    fn csv_rendering() {
        let c = render_csv(&["a", "b"], &[vec!["1".into(), "2".into()]]);
        assert_eq!(c, "a,b\n1,2\n");
    }
}
