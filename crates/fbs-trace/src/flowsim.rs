//! The "flow simulation programs" of §7.3: replay a packet trace through
//! per-source-host FAMs (every machine on the LAN implements FBS) and
//! through key caches, producing the raw series behind Figs. 9-14.

use crate::record::PacketRecord;
use fbs_core::cache::CacheStats;
use fbs_core::{Fam, FlowRecord, SflAllocator, SoftCache};
use fbs_crypto::crc32;
use fbs_ip::{FiveTuple, FiveTuplePolicy};
use std::collections::HashMap;

/// Flow simulation parameters.
#[derive(Clone, Copy, Debug)]
pub struct FlowSimConfig {
    /// The §7.1 policy THRESHOLD in seconds.
    pub threshold_secs: u64,
    /// Per-host FST size.
    pub fst_size: usize,
    /// Sampling interval for the active-flow time series.
    pub sample_interval_secs: u64,
}

impl Default for FlowSimConfig {
    fn default() -> Self {
        FlowSimConfig {
            threshold_secs: 600,
            // Large FST so figure statistics are not distorted by index
            // collisions (the paper reports almost none at FSTSIZE ≥ 32).
            fst_size: 4096,
            sample_interval_secs: 60,
        }
    }
}

/// Output of a flow simulation run.
#[derive(Clone, Debug)]
pub struct FlowSimResult {
    /// Every flow observed (completed or still open at trace end).
    pub flows: Vec<FlowRecord>,
    /// (time, simultaneously active flows summed over all source hosts).
    pub active_series: Vec<(u64, usize)>,
    /// Peak simultaneous active flows at any single host.
    pub per_host_max_active: usize,
    /// Datagrams classified.
    pub classifications: u64,
    /// Flows started.
    pub flows_started: u64,
    /// New flows whose 5-tuple had identified an earlier flow (Fig. 14).
    pub repeated_flows: u64,
    /// Flows prematurely terminated by FST index collisions.
    pub collisions: u64,
}

impl FlowSimResult {
    /// Fold the FAM-level counters into a snapshot under the `fam.*`
    /// names a live [`fbs_obs::MetricsRegistry`] uses, so trace-driven
    /// simulations export through the same `--metrics` pipeline as
    /// instrumented endpoints.
    pub fn contribute(&self, snap: &mut fbs_obs::MetricsSnapshot) {
        snap.add("fam.classifications", self.classifications);
        snap.add("fam.flows_started", self.flows_started);
        snap.add("fam.repeated_flows", self.repeated_flows);
        snap.add("fam.collisions", self.collisions);
    }
}

/// Run the Fig. 7 policy over `trace`, one FAM per source host.
pub fn simulate_flows(trace: &[PacketRecord], cfg: &FlowSimConfig) -> FlowSimResult {
    let mut fams: HashMap<[u8; 4], Fam<FiveTuple, FiveTuplePolicy>> = HashMap::new();
    let mut next_sfl_seed = 1u64;
    let mut active_series = Vec::new();
    let mut per_host_max = 0usize;
    let mut next_sample = 0u64;

    for r in trace {
        let now = r.t_secs();
        while now >= next_sample {
            let (total, host_max) = active_counts(&fams, next_sample);
            per_host_max = per_host_max.max(host_max);
            active_series.push((next_sample, total));
            next_sample += cfg.sample_interval_secs;
        }
        let fam = fams.entry(r.tuple.saddr).or_insert_with(|| {
            next_sfl_seed += 1 << 32;
            Fam::new(
                cfg.fst_size,
                FiveTuplePolicy::new(cfg.threshold_secs),
                SflAllocator::new(next_sfl_seed),
            )
            .with_repeat_tracking()
            .with_flow_records()
        });
        fam.classify(r.tuple, now, r.len as u64);
    }
    // Final sample.
    if let Some(last) = trace.last() {
        let (total, host_max) = active_counts(&fams, last.t_secs());
        per_host_max = per_host_max.max(host_max);
        active_series.push((last.t_secs(), total));
    }

    let mut flows = Vec::new();
    let mut classifications = 0;
    let mut flows_started = 0;
    let mut repeated = 0;
    let mut collisions = 0;
    for fam in fams.values_mut() {
        let s = fam.stats();
        classifications += s.classifications;
        flows_started += s.flows_started;
        repeated += s.repeated_flows;
        collisions += s.collisions;
        flows.extend(fam.drain_records());
    }
    FlowSimResult {
        flows,
        active_series,
        per_host_max_active: per_host_max,
        classifications,
        flows_started,
        repeated_flows: repeated,
        collisions,
    }
}

fn active_counts(
    fams: &HashMap<[u8; 4], Fam<FiveTuple, FiveTuplePolicy>>,
    now: u64,
) -> (usize, usize) {
    let mut total = 0;
    let mut host_max = 0;
    for fam in fams.values() {
        let a = fam.active_flows(now);
        total += a;
        host_max = host_max.max(a);
    }
    (total, host_max)
}

/// Index hash used by the key-cache simulation (the Fig. 11(b) ablation).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CacheHash {
    /// CRC-32 over the key bytes — the §5.3 recommendation.
    Crc32,
    /// Low bits of the sfl (plain modulo — "fast but little randomness").
    Modulo,
    /// XOR-fold of the key bytes.
    Xor,
}

/// Key-cache simulation parameters.
#[derive(Clone, Copy, Debug)]
pub struct CacheSimConfig {
    /// Flow policy THRESHOLD (controls how many flows exist).
    pub threshold_secs: u64,
    /// Total cache entries.
    pub cache_slots: usize,
    /// Associativity (slots = sets × assoc).
    pub assoc: usize,
    /// Index hash.
    pub hash: CacheHash,
}

/// TFKC cache key: (sfl, peer address), per §5.3 (the local address is
/// constant within one host's cache).
type CacheKey = (u64, [u8; 4]);

fn hash_key(hash: CacheHash, key: &CacheKey) -> u32 {
    match hash {
        CacheHash::Crc32 => {
            let mut bytes = key.0.to_be_bytes().to_vec();
            bytes.extend_from_slice(&key.1);
            crc32(&bytes)
        }
        CacheHash::Modulo => key.0 as u32,
        CacheHash::Xor => {
            let b = key.0.to_be_bytes();
            let mut x = u32::from_be_bytes([b[0], b[1], b[2], b[3]])
                ^ u32::from_be_bytes([b[4], b[5], b[6], b[7]]);
            x ^= u32::from_be_bytes(key.1);
            x
        }
    }
}

/// Replay `trace` against per-host transmission flow key caches of the
/// given geometry, returning aggregate hit/miss statistics (with 3C miss
/// classification). One cache access per datagram, exactly as in the
/// FBSSend fast path.
pub fn simulate_cache(trace: &[PacketRecord], cfg: &CacheSimConfig) -> CacheStats {
    assert!(
        cfg.cache_slots.is_multiple_of(cfg.assoc),
        "slots must divide evenly into sets"
    );
    // Flow identity assignment: large-FST FAMs so sfl streams match the
    // flow structure rather than collision artifacts.
    let mut fams: HashMap<[u8; 4], Fam<FiveTuple, FiveTuplePolicy>> = HashMap::new();
    let mut caches: HashMap<[u8; 4], SoftCache<CacheKey, ()>> = HashMap::new();
    let mut seed = 1u64;

    for r in trace {
        let now = r.t_secs();
        let fam = fams.entry(r.tuple.saddr).or_insert_with(|| {
            seed += 1 << 32;
            Fam::new(
                8192,
                FiveTuplePolicy::new(cfg.threshold_secs),
                SflAllocator::new(seed),
            )
        });
        let class = fam.classify(r.tuple, now, r.len as u64);
        let hash = cfg.hash;
        let cache = caches.entry(r.tuple.saddr).or_insert_with(|| {
            SoftCache::new(
                cfg.cache_slots / cfg.assoc,
                cfg.assoc,
                move |k: &CacheKey| hash_key(hash, k),
            )
            .with_classification()
        });
        let key = (class.sfl, r.tuple.daddr);
        if cache.get(&key).is_none() {
            cache.insert(key, ());
        }
    }

    let mut total = CacheStats::default();
    for c in caches.values() {
        let s = c.stats();
        total.hits += s.hits;
        total.cold_misses += s.cold_misses;
        total.capacity_misses += s.capacity_misses;
        total.collision_misses += s.collision_misses;
        total.insertions += s.insertions;
        total.evictions += s.evictions;
    }
    total
}

/// A 5-tuple policy with a pluggable mapper hash, for the §5.3 ablation:
/// "simple hash functions, such as modulo and XOR'ing, are fast but ...
/// provide little randomness unless the input ... is already random. The
/// input for all our caches could be highly correlated, e.g., local
/// network addresses" — exactly the FST's situation, whose keys are
/// addresses and ports sharing prefixes and ranges.
pub struct HashedFiveTuplePolicy {
    /// Idle expiry threshold.
    pub threshold_secs: u64,
    /// The mapper's index hash.
    pub hash: CacheHash,
}

impl fbs_core::fam::FlowPolicy<FiveTuple> for HashedFiveTuplePolicy {
    fn index(&self, attrs: &FiveTuple, table_size: usize) -> usize {
        use fbs_core::policy::FlowAttrs;
        let bytes = attrs.canonical_bytes();
        let h = match self.hash {
            CacheHash::Crc32 => crc32(&bytes),
            // Naive additive fold (a "modulo" style hash): sums the raw
            // field bytes — correlated inputs cluster badly.
            CacheHash::Modulo => bytes.iter().map(|&b| b as u32).sum(),
            // XOR-fold of the canonical bytes into 32 bits.
            CacheHash::Xor => bytes.chunks(4).fold(0u32, |acc, c| {
                let mut w = [0u8; 4];
                w[..c.len()].copy_from_slice(c);
                acc ^ u32::from_be_bytes(w)
            }),
        };
        h as usize % table_size
    }

    fn same_flow(&self, a: &FiveTuple, b: &FiveTuple) -> bool {
        a == b
    }

    fn expired(&self, entry: &fbs_core::fam::FstEntry<FiveTuple>, now_secs: u64) -> bool {
        now_secs.saturating_sub(entry.last) > self.threshold_secs
    }
}

/// FST mapper-hash ablation result.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FstAblation {
    /// Flows started.
    pub flows_started: u64,
    /// Flows prematurely terminated by index collisions (footnote 11).
    pub collisions: u64,
    /// Collision rate per classification.
    pub collision_rate: f64,
}

/// Replay `trace` through per-host FSTs of `fst_size` slots under the
/// given mapper hash, counting premature flow terminations.
pub fn simulate_fst_hash(
    trace: &[PacketRecord],
    fst_size: usize,
    hash: CacheHash,
    threshold_secs: u64,
) -> FstAblation {
    let mut fams: HashMap<[u8; 4], Fam<FiveTuple, HashedFiveTuplePolicy>> = HashMap::new();
    let mut seed = 1u64;
    for r in trace {
        let fam = fams.entry(r.tuple.saddr).or_insert_with(|| {
            seed += 1 << 32;
            Fam::new(
                fst_size,
                HashedFiveTuplePolicy {
                    threshold_secs,
                    hash,
                },
                SflAllocator::new(seed),
            )
        });
        fam.classify(r.tuple, r.t_secs(), r.len as u64);
    }
    let mut flows = 0;
    let mut collisions = 0;
    let mut classifications = 0;
    for fam in fams.values() {
        let s = fam.stats();
        flows += s.flows_started;
        collisions += s.collisions;
        classifications += s.classifications;
    }
    FstAblation {
        flows_started: flows,
        collisions,
        collision_rate: collisions as f64 / classifications.max(1) as f64,
    }
}

/// Convenience: flow-size distribution inputs for Fig. 9 — (packets,
/// bytes) per flow.
pub fn flow_sizes(result: &FlowSimResult) -> (Vec<u64>, Vec<u64>) {
    let mut pkts: Vec<u64> = result.flows.iter().map(|f| f.packets).collect();
    let mut bytes: Vec<u64> = result.flows.iter().map(|f| f.bytes).collect();
    pkts.sort_unstable();
    bytes.sort_unstable();
    (pkts, bytes)
}

/// Convenience: flow durations in seconds for Fig. 10.
pub fn flow_durations(result: &FlowSimResult) -> Vec<u64> {
    let mut d: Vec<u64> = result.flows.iter().map(|f| f.duration_secs()).collect();
    d.sort_unstable();
    d
}

/// Sanity helper used by experiments: fraction of total bytes carried by
/// the largest `top_fraction` of flows (the elephant share).
pub fn elephant_share(result: &FlowSimResult, top_fraction: f64) -> f64 {
    let mut bytes: Vec<u64> = result.flows.iter().map(|f| f.bytes).collect();
    if bytes.is_empty() {
        return 0.0;
    }
    bytes.sort_unstable_by(|a, b| b.cmp(a));
    let total: u64 = bytes.iter().sum();
    let top_n = ((bytes.len() as f64 * top_fraction).ceil() as usize).max(1);
    let top: u64 = bytes[..top_n.min(bytes.len())].iter().sum();
    top as f64 / total.max(1) as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{generate_campus_trace, CampusConfig};

    fn small_trace() -> Vec<PacketRecord> {
        generate_campus_trace(&CampusConfig {
            duration_secs: 1200,
            desktops: 10,
            ..CampusConfig::default()
        })
    }

    #[test]
    fn flows_partition_all_datagrams() {
        let trace = small_trace();
        let result = simulate_flows(&trace, &FlowSimConfig::default());
        assert_eq!(result.classifications, trace.len() as u64);
        let flow_pkts: u64 = result.flows.iter().map(|f| f.packets).sum();
        assert_eq!(flow_pkts, trace.len() as u64, "every packet in a flow");
        let flow_bytes: u64 = result.flows.iter().map(|f| f.bytes).sum();
        let trace_bytes: u64 = trace.iter().map(|r| r.len as u64).sum();
        assert_eq!(flow_bytes, trace_bytes);
    }

    #[test]
    fn majority_of_flows_are_short() {
        // Fig. 9's headline: most flows are small.
        let result = simulate_flows(&small_trace(), &FlowSimConfig::default());
        let (pkts, _) = flow_sizes(&result);
        let median = pkts[pkts.len() / 2];
        assert!(median <= 32, "median flow is small, got {median}");
        assert!(
            *pkts.last().unwrap() > 100,
            "but elephants exist: {:?}",
            pkts.last()
        );
    }

    #[test]
    fn few_flows_carry_bulk_of_traffic() {
        let result = simulate_flows(&small_trace(), &FlowSimConfig::default());
        let share = elephant_share(&result, 0.10);
        assert!(share > 0.5, "top 10% of flows carry {share:.2} of bytes");
    }

    #[test]
    fn smaller_threshold_means_more_flows() {
        // The Fig. 13/14 mechanism.
        let trace = small_trace();
        let f300 = simulate_flows(
            &trace,
            &FlowSimConfig {
                threshold_secs: 300,
                ..FlowSimConfig::default()
            },
        );
        let f1200 = simulate_flows(
            &trace,
            &FlowSimConfig {
                threshold_secs: 1200,
                ..FlowSimConfig::default()
            },
        );
        assert!(f300.flows_started >= f1200.flows_started);
        assert!(f300.repeated_flows >= f1200.repeated_flows);
    }

    #[test]
    fn active_series_is_sampled_and_modest() {
        let result = simulate_flows(&small_trace(), &FlowSimConfig::default());
        assert!(result.active_series.len() >= 10);
        let peak = result.active_series.iter().map(|(_, c)| *c).max().unwrap();
        assert!(peak > 0);
        // Fig. 12's point: counts a kernel can easily hold.
        assert!(result.per_host_max_active < 500);
    }

    #[test]
    fn cache_miss_rate_drops_with_size() {
        // Fig. 11's headline: sharp miss-rate drop-off with cache size.
        let trace = small_trace();
        let mut rates = Vec::new();
        let mut avoidable = Vec::new();
        for slots in [2usize, 8, 32, 128] {
            let stats = simulate_cache(
                &trace,
                &CacheSimConfig {
                    threshold_secs: 600,
                    cache_slots: slots,
                    assoc: 1,
                    hash: CacheHash::Crc32,
                },
            );
            rates.push(stats.miss_rate());
            // Cold misses are the floor; capacity+collision misses are
            // what cache size can eliminate.
            avoidable.push(
                (stats.capacity_misses + stats.collision_misses) as f64 / stats.lookups() as f64,
            );
        }
        assert!(
            rates.windows(2).all(|w| w[1] <= w[0] + 1e-9),
            "monotone non-increasing: {rates:?}"
        );
        assert!(
            avoidable[3] < avoidable[0] / 5.0,
            "sharp drop in avoidable misses: {avoidable:?}"
        );
    }

    #[test]
    fn associativity_reduces_collision_misses() {
        let trace = small_trace();
        let direct = simulate_cache(
            &trace,
            &CacheSimConfig {
                threshold_secs: 600,
                cache_slots: 16,
                assoc: 1,
                hash: CacheHash::Crc32,
            },
        );
        let four_way = simulate_cache(
            &trace,
            &CacheSimConfig {
                threshold_secs: 600,
                cache_slots: 16,
                assoc: 4,
                hash: CacheHash::Crc32,
            },
        );
        assert!(four_way.collision_misses <= direct.collision_misses);
    }

    #[test]
    fn cold_misses_equal_distinct_flows() {
        let trace = small_trace();
        let flows = simulate_flows(&trace, &FlowSimConfig::default());
        let cache = simulate_cache(
            &trace,
            &CacheSimConfig {
                threshold_secs: 600,
                cache_slots: 64,
                assoc: 1,
                hash: CacheHash::Crc32,
            },
        );
        // Every distinct flow incarnation produces exactly one cold miss.
        assert_eq!(cache.cold_misses, flows.flows_started);
    }

    #[test]
    fn fst_hash_ablation_reasonable_crc_few_collisions() {
        // Footnote 11: "almost no collision is observed with a reasonable
        // FSTSIZE, e.g., 32 or above" — under the CRC-32 mapper.
        let trace = small_trace();
        let crc = simulate_fst_hash(&trace, 64, CacheHash::Crc32, 600);
        assert!(
            crc.collision_rate < 0.02,
            "CRC-32 collision rate {:.4} should be tiny",
            crc.collision_rate
        );
        // The naive additive hash clusters correlated 5-tuples harder.
        let naive = simulate_fst_hash(&trace, 64, CacheHash::Modulo, 600);
        assert!(
            naive.collisions >= crc.collisions,
            "naive {} >= crc {}",
            naive.collisions,
            crc.collisions
        );
    }

    #[test]
    #[should_panic(expected = "divide evenly")]
    fn bad_geometry_panics() {
        simulate_cache(
            &[],
            &CacheSimConfig {
                threshold_secs: 600,
                cache_slots: 10,
                assoc: 4,
                hash: CacheHash::Crc32,
            },
        );
    }
}
