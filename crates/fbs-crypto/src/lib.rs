//! # fbs-crypto — cryptographic substrate for the FBS reproduction
//!
//! From-scratch implementations of every primitive the paper's CryptoLib
//! dependency supplied (Mittra & Woo, SIGCOMM '97, §7.2):
//!
//! * [`des`] — DES (FIPS 46) with ECB/CBC/CFB/OFB modes (FIPS 81);
//! * [`mod@md5`] — MD5 (RFC 1321);
//! * [`mod@sha1`] — SHA-1 / "SHS" (FIPS 180);
//! * [`mac`] — the paper's prefix-keyed MAC plus RFC 2104 HMAC;
//! * [`bignum`] + [`dh`] — Diffie-Hellman over the Oakley MODP groups;
//! * [`rsa`] — RSA key generation (Miller-Rabin) and signatures for the
//!   certificate authority;
//! * [`rng`] — the LCG confounder source and the Blum-Blum-Shub generator;
//! * [`mod@crc32`] — the randomising cache hash of §5.3.
//!
//! ## ⚠ Security disclaimer
//!
//! DES, MD5, SHA-1 and prefix-keyed MACs are **broken by modern standards**.
//! They are reimplemented here solely to reproduce a 1997 paper with
//! fidelity. Do not use this crate to protect real traffic.
//!
//! All implementations are validated against published test vectors (FIPS
//! worked examples, RFC 1321 appendix, RFC 2202, CRC-32 check value) in
//! their module tests.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bignum;
pub mod chacha;
pub mod crc32;
pub mod des;
pub mod dh;
pub mod mac;
pub mod md5;
pub mod rng;
pub mod rsa;
pub mod sha1;
pub mod suite;

pub use bignum::BigUint;
pub use chacha::{poly1305, ChaCha20, Poly1305};
pub use crc32::crc32;
pub use des::{Des, Mode as DesMode};
pub use dh::{DhGroup, PrivateValue, PublicValue};
pub use mac::{keyed_digest, mac_eq, MacAlgorithm, MacContext};
pub use md5::md5;
pub use rng::{Bbs, Lcg64};
pub use rsa::{RsaPrivateKey, RsaPublicKey};
pub use sha1::sha1;
pub use suite::CipherSuite;
