//! CRC-32 (IEEE 802.3 polynomial).
//!
//! §5.3 argues that software key caches need a hash that *randomises
//! correlated input* (local addresses, sequential sfls) before the modulo
//! that indexes the cache, and names CRC-32 as the example. The Fig.-7
//! mapper indexes the flow state table with
//! `CRC-32(saddr, sport, daddr, dport, proto) mod FSTSIZE`.

/// Reflected IEEE polynomial.
const POLY: u32 = 0xEDB88320;

/// Build the 256-entry lookup table at first use.
fn table() -> &'static [u32; 256] {
    use std::sync::OnceLock;
    static TABLE: OnceLock<[u32; 256]> = OnceLock::new();
    TABLE.get_or_init(|| {
        let mut t = [0u32; 256];
        for (i, e) in t.iter_mut().enumerate() {
            let mut crc = i as u32;
            for _ in 0..8 {
                crc = if crc & 1 != 0 {
                    (crc >> 1) ^ POLY
                } else {
                    crc >> 1
                };
            }
            *e = crc;
        }
        t
    })
}

/// A streaming CRC-32 state.
#[derive(Clone, Copy, Debug)]
pub struct Crc32 {
    state: u32,
}

impl Default for Crc32 {
    fn default() -> Self {
        Self::new()
    }
}

impl Crc32 {
    /// Fresh CRC state.
    pub fn new() -> Self {
        Crc32 { state: 0xFFFF_FFFF }
    }

    /// Absorb bytes.
    pub fn update(&mut self, data: &[u8]) {
        let t = table();
        for &b in data {
            self.state = (self.state >> 8) ^ t[((self.state ^ b as u32) & 0xFF) as usize];
        }
    }

    /// Final CRC value.
    pub fn finalize(self) -> u32 {
        !self.state
    }
}

/// One-shot CRC-32 of `data`.
pub fn crc32(data: &[u8]) -> u32 {
    let mut c = Crc32::new();
    c.update(data);
    c.finalize()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn check_value() {
        // The standard CRC-32/IEEE check value.
        assert_eq!(crc32(b"123456789"), 0xCBF43926);
    }

    #[test]
    fn empty_input() {
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn streaming_matches_oneshot() {
        let data = b"the quick brown fox jumps over the lazy dog";
        let mut c = Crc32::new();
        c.update(&data[..10]);
        c.update(&data[10..]);
        assert_eq!(c.finalize(), crc32(data));
    }

    #[test]
    fn sequential_inputs_decorrelate() {
        // The whole point of using CRC-32 for cache indexing (§5.3):
        // sequential sfls must spread across cache indices. Check that 256
        // consecutive sfls hit many distinct slots of a 64-entry table.
        let mut slots = std::collections::HashSet::new();
        for sfl in 0u64..256 {
            slots.insert(crc32(&sfl.to_be_bytes()) % 64);
        }
        assert_eq!(slots.len(), 64, "CRC should cover all 64 slots");
    }
}
