//! ChaCha20 stream cipher and Poly1305 one-time authenticator (RFC 8439).
//!
//! These are the modern-suite primitives behind [`CipherSuite::AeadChaPoly`]
//! (crate root): the paper's algorithm-ID field (§5.2) explicitly anticipates
//! deployments negotiating stronger algorithms than DES+MD5, and the fig08
//! analysis identifies per-byte crypto cost as the throughput ceiling.
//! ChaCha20-Poly1305 runs an order of magnitude faster per byte than
//! DES+MD5 in portable scalar code, which is what raises that ceiling.
//!
//! Hermetic from-scratch implementations (no external crates), validated
//! against the RFC 8439 test vectors in the module tests. Poly1305 uses the
//! classic five-limb radix-2^26 representation so all products fit in `u64`.

/// ChaCha20 block/stream cipher keyed with a 256-bit key and 96-bit nonce.
#[derive(Clone)]
pub struct ChaCha20 {
    /// Key words 4..12 of the initial state (little-endian key bytes).
    key: [u32; 8],
    /// Nonce words 13..16 of the initial state (little-endian nonce bytes).
    nonce: [u32; 3],
}

const CHACHA_CONSTANTS: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];

#[inline(always)]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

impl ChaCha20 {
    /// Build a cipher instance from a 256-bit key and 96-bit nonce.
    pub fn new(key: &[u8; 32], nonce: &[u8; 12]) -> Self {
        let mut k = [0u32; 8];
        for (i, w) in k.iter_mut().enumerate() {
            *w = u32::from_le_bytes(key[i * 4..i * 4 + 4].try_into().unwrap());
        }
        let mut n = [0u32; 3];
        for (i, w) in n.iter_mut().enumerate() {
            *w = u32::from_le_bytes(nonce[i * 4..i * 4 + 4].try_into().unwrap());
        }
        ChaCha20 { key: k, nonce: n }
    }

    /// Produce the 64-byte keystream block for `counter`.
    pub fn block(&self, counter: u32, out: &mut [u8; 64]) {
        let mut state = [0u32; 16];
        state[..4].copy_from_slice(&CHACHA_CONSTANTS);
        state[4..12].copy_from_slice(&self.key);
        state[12] = counter;
        state[13..16].copy_from_slice(&self.nonce);
        let initial = state;
        for _ in 0..10 {
            quarter_round(&mut state, 0, 4, 8, 12);
            quarter_round(&mut state, 1, 5, 9, 13);
            quarter_round(&mut state, 2, 6, 10, 14);
            quarter_round(&mut state, 3, 7, 11, 15);
            quarter_round(&mut state, 0, 5, 10, 15);
            quarter_round(&mut state, 1, 6, 11, 12);
            quarter_round(&mut state, 2, 7, 8, 13);
            quarter_round(&mut state, 3, 4, 9, 14);
        }
        for i in 0..16 {
            let w = state[i].wrapping_add(initial[i]);
            out[i * 4..i * 4 + 4].copy_from_slice(&w.to_le_bytes());
        }
    }

    /// XOR the keystream starting at block `counter` into `data` in place.
    /// Encryption and decryption are the same operation.
    pub fn xor_keystream(&self, mut counter: u32, data: &mut [u8]) {
        let mut ks = [0u8; 64];
        for chunk in data.chunks_mut(64) {
            self.block(counter, &mut ks);
            for (b, k) in chunk.iter_mut().zip(ks.iter()) {
                *b ^= k;
            }
            counter = counter.wrapping_add(1);
        }
    }

    /// Derive the Poly1305 one-time key for this (key, nonce) pair: the
    /// first 32 bytes of keystream block 0 (RFC 8439 §2.6). Message
    /// encryption then starts at block 1.
    pub fn poly1305_key(&self) -> [u8; 32] {
        let mut block0 = [0u8; 64];
        self.block(0, &mut block0);
        let mut otk = [0u8; 32];
        otk.copy_from_slice(&block0[..32]);
        otk
    }
}

/// Streaming Poly1305 one-time authenticator (RFC 8439 §2.5).
///
/// The 32-byte key is `r || s`; `r` is clamped per the RFC. The key MUST be
/// used for a single message only — the suite derives a fresh one per
/// datagram from ChaCha20 keystream block 0.
#[derive(Clone)]
pub struct Poly1305 {
    /// Clamped `r`, radix-2^26 limbs.
    r: [u32; 5],
    /// `5 * r[1..5]`, precomputed for the reduction step.
    r5: [u32; 4],
    /// `s`, added mod 2^128 at the end.
    s: [u32; 4],
    /// Accumulator, radix-2^26 limbs.
    h: [u32; 5],
    /// Partial-block buffer.
    buf: [u8; 16],
    /// Bytes pending in `buf`.
    buf_len: usize,
}

impl Poly1305 {
    /// Tag length in bytes.
    pub const TAG_LEN: usize = 16;

    /// Start a tag computation under the 32-byte one-time key `r || s`.
    pub fn new(key: &[u8; 32]) -> Self {
        let t0 = u32::from_le_bytes(key[0..4].try_into().unwrap());
        let t1 = u32::from_le_bytes(key[4..8].try_into().unwrap());
        let t2 = u32::from_le_bytes(key[8..12].try_into().unwrap());
        let t3 = u32::from_le_bytes(key[12..16].try_into().unwrap());
        // Clamp and split r into five 26-bit limbs.
        let r = [
            t0 & 0x03ff_ffff,
            ((t0 >> 26) | (t1 << 6)) & 0x03ff_ff03,
            ((t1 >> 20) | (t2 << 12)) & 0x03ff_c0ff,
            ((t2 >> 14) | (t3 << 18)) & 0x03f0_3fff,
            (t3 >> 8) & 0x000f_ffff,
        ];
        Poly1305 {
            r,
            r5: [r[1] * 5, r[2] * 5, r[3] * 5, r[4] * 5],
            s: [
                u32::from_le_bytes(key[16..20].try_into().unwrap()),
                u32::from_le_bytes(key[20..24].try_into().unwrap()),
                u32::from_le_bytes(key[24..28].try_into().unwrap()),
                u32::from_le_bytes(key[28..32].try_into().unwrap()),
            ],
            h: [0; 5],
            buf: [0; 16],
            buf_len: 0,
        }
    }

    /// Absorb one 16-byte block; `hibit` is 1<<24 for full blocks, the
    /// padded high bit position for the final short block.
    fn block(&mut self, m: &[u8; 16], hibit: u32) {
        let t0 = u32::from_le_bytes(m[0..4].try_into().unwrap());
        let t1 = u32::from_le_bytes(m[4..8].try_into().unwrap());
        let t2 = u32::from_le_bytes(m[8..12].try_into().unwrap());
        let t3 = u32::from_le_bytes(m[12..16].try_into().unwrap());
        let h0 = (self.h[0] + (t0 & 0x03ff_ffff)) as u64;
        let h1 = (self.h[1] + (((t0 >> 26) | (t1 << 6)) & 0x03ff_ffff)) as u64;
        let h2 = (self.h[2] + (((t1 >> 20) | (t2 << 12)) & 0x03ff_ffff)) as u64;
        let h3 = (self.h[3] + (((t2 >> 14) | (t3 << 18)) & 0x03ff_ffff)) as u64;
        let h4 = (self.h[4] + ((t3 >> 8) | hibit)) as u64;

        let (r0, r1, r2, r3, r4) = (
            self.r[0] as u64,
            self.r[1] as u64,
            self.r[2] as u64,
            self.r[3] as u64,
            self.r[4] as u64,
        );
        let (s1, s2, s3, s4) = (
            self.r5[0] as u64,
            self.r5[1] as u64,
            self.r5[2] as u64,
            self.r5[3] as u64,
        );

        let d0 = h0 * r0 + h1 * s4 + h2 * s3 + h3 * s2 + h4 * s1;
        let mut d1 = h0 * r1 + h1 * r0 + h2 * s4 + h3 * s3 + h4 * s2;
        let mut d2 = h0 * r2 + h1 * r1 + h2 * r0 + h3 * s4 + h4 * s3;
        let mut d3 = h0 * r3 + h1 * r2 + h2 * r1 + h3 * r0 + h4 * s4;
        let mut d4 = h0 * r4 + h1 * r3 + h2 * r2 + h3 * r1 + h4 * r0;

        // Carry chain mod 2^130 - 5: the carry out of limb 4 re-enters
        // limb 0 multiplied by 5.
        let mut c = d0 >> 26;
        d1 += c;
        let mut h = [0u32; 5];
        h[0] = (d0 & 0x03ff_ffff) as u32;
        c = d1 >> 26;
        d2 += c;
        h[1] = (d1 & 0x03ff_ffff) as u32;
        c = d2 >> 26;
        d3 += c;
        h[2] = (d2 & 0x03ff_ffff) as u32;
        c = d3 >> 26;
        d4 += c;
        h[3] = (d3 & 0x03ff_ffff) as u32;
        c = d4 >> 26;
        h[4] = (d4 & 0x03ff_ffff) as u32;
        h[0] += (c as u32) * 5;
        let c2 = h[0] >> 26;
        h[0] &= 0x03ff_ffff;
        h[1] += c2;
        self.h = h;
    }

    /// Absorb message bytes.
    pub fn update(&mut self, mut data: &[u8]) {
        if self.buf_len > 0 {
            let want = 16 - self.buf_len;
            let take = want.min(data.len());
            self.buf[self.buf_len..self.buf_len + take].copy_from_slice(&data[..take]);
            self.buf_len += take;
            data = &data[take..];
            if self.buf_len == 16 {
                let block = self.buf;
                self.block(&block, 1 << 24);
                self.buf_len = 0;
            }
        }
        let mut chunks = data.chunks_exact(16);
        for chunk in &mut chunks {
            self.block(chunk.try_into().unwrap(), 1 << 24);
        }
        let rem = chunks.remainder();
        self.buf[..rem.len()].copy_from_slice(rem);
        self.buf_len = rem.len();
    }

    /// Finish and return the 16-byte tag.
    pub fn finalize(mut self) -> [u8; 16] {
        if self.buf_len > 0 {
            // Final short block: append the 0x01 byte, zero-pad, no hibit.
            let mut block = [0u8; 16];
            block[..self.buf_len].copy_from_slice(&self.buf[..self.buf_len]);
            block[self.buf_len] = 1;
            self.block(&block, 0);
        }
        // Fully reduce h mod 2^130 - 5.
        let mut h = self.h;
        let mut c = h[1] >> 26;
        h[1] &= 0x03ff_ffff;
        h[2] += c;
        c = h[2] >> 26;
        h[2] &= 0x03ff_ffff;
        h[3] += c;
        c = h[3] >> 26;
        h[3] &= 0x03ff_ffff;
        h[4] += c;
        c = h[4] >> 26;
        h[4] &= 0x03ff_ffff;
        h[0] += c * 5;
        c = h[0] >> 26;
        h[0] &= 0x03ff_ffff;
        h[1] += c;

        // Compute h + -p and constant-time select.
        let mut g = [0u32; 5];
        let mut carry = 5u32;
        for i in 0..4 {
            let t = h[i] + carry;
            g[i] = t & 0x03ff_ffff;
            carry = t >> 26;
        }
        let t = h[4].wrapping_add(carry).wrapping_sub(1 << 26);
        g[4] = t;
        let mask = (t >> 31).wrapping_sub(1); // all-ones if h >= p
        for i in 0..5 {
            h[i] = (h[i] & !mask) | (g[i] & mask);
        }

        // Serialize to radix-2^32 and add s mod 2^128.
        let w = [
            h[0] | (h[1] << 26),
            (h[1] >> 6) | (h[2] << 20),
            (h[2] >> 12) | (h[3] << 14),
            (h[3] >> 18) | (h[4] << 8),
        ];
        let mut tag = [0u8; 16];
        let mut acc = 0u64;
        for i in 0..4 {
            acc = (w[i] as u64) + (self.s[i] as u64) + (acc >> 32);
            tag[i * 4..i * 4 + 4].copy_from_slice(&(acc as u32).to_le_bytes());
        }
        tag
    }
}

/// One-shot Poly1305 tag of `parts` (logically concatenated) under `key`.
pub fn poly1305(key: &[u8; 32], parts: &[&[u8]]) -> [u8; 16] {
    let mut p = Poly1305::new(key);
    for part in parts {
        p.update(part);
    }
    p.finalize()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(d: &[u8]) -> String {
        d.iter().map(|b| format!("{b:02x}")).collect()
    }

    fn key_seq() -> [u8; 32] {
        let mut k = [0u8; 32];
        for (i, b) in k.iter_mut().enumerate() {
            *b = i as u8;
        }
        k
    }

    /// RFC 8439 §2.3.2: ChaCha20 block function test vector.
    #[test]
    fn rfc8439_block() {
        let nonce = [0, 0, 0, 9, 0, 0, 0, 0x4a, 0, 0, 0, 0];
        let cc = ChaCha20::new(&key_seq(), &nonce);
        let mut out = [0u8; 64];
        cc.block(1, &mut out);
        assert_eq!(
            hex(&out),
            "10f1e7e4d13b5915500fdd1fa32071c4c7d1f4c733c068030422aa9ac3d46c4e\
             d2826446079faa0914c2d705d98b02a2b5129cd1de164eb9cbd083e8a2503c4e"
        );
    }

    /// RFC 8439 §2.4.2: ChaCha20 encryption of the sunscreen plaintext.
    #[test]
    fn rfc8439_encrypt() {
        let nonce = [0, 0, 0, 0, 0, 0, 0, 0x4a, 0, 0, 0, 0];
        let cc = ChaCha20::new(&key_seq(), &nonce);
        let mut data = *b"Ladies and Gentlemen of the class of '99: \
If I could offer you only one tip for the future, sunscreen would be it.";
        cc.xor_keystream(1, &mut data);
        assert_eq!(
            hex(&data[..32]),
            "6e2e359a2568f98041ba0728dd0d6981e97e7aec1d4360c20a27afccfd9fae0b"
        );
        assert_eq!(hex(&data[data.len() - 8..]), "8eedf2785e42874d");
        // Decryption is the same operation.
        let mut back = data;
        cc.xor_keystream(1, &mut back);
        assert!(back.starts_with(b"Ladies and Gentlemen"));
    }

    /// RFC 8439 §2.5.2: Poly1305 tag test vector.
    #[test]
    fn rfc8439_poly1305() {
        let mut key = [0u8; 32];
        key[..16].copy_from_slice(
            &[
                0x85, 0xd6, 0xbe, 0x78, 0x57, 0x55, 0x6d, 0x33, 0x7f, 0x44, 0x52, 0xfe, 0x42,
                0xd5, 0x06, 0xa8,
            ][..],
        );
        key[16..].copy_from_slice(
            &[
                0x01, 0x03, 0x80, 0x8a, 0xfb, 0x0d, 0xb2, 0xfd, 0x4a, 0xbf, 0xf6, 0xaf, 0x41,
                0x49, 0xf5, 0x1b,
            ][..],
        );
        let tag = poly1305(&key, &[b"Cryptographic Forum Research Group"]);
        assert_eq!(hex(&tag), "a8061dc1305136c6c22b8baf0c0127a9");
    }

    /// RFC 8439 §2.6.2: Poly1305 one-time key derivation from ChaCha20.
    #[test]
    fn rfc8439_poly_key_gen() {
        let mut key = [0u8; 32];
        for (i, b) in key.iter_mut().enumerate() {
            *b = 0x80 + i as u8;
        }
        let nonce = [0, 0, 0, 0, 0, 1, 2, 3, 4, 5, 6, 7];
        let otk = ChaCha20::new(&key, &nonce).poly1305_key();
        assert_eq!(
            hex(&otk),
            "8ad5a08b905f81cc815040274ab29471a833b637e3fd0da508dbb8e2fdd1a646"
        );
    }

    /// Streaming updates across odd boundaries match the one-shot tag.
    #[test]
    fn poly1305_streaming_split_is_irrelevant() {
        let key = key_seq();
        let msg: Vec<u8> = (0..137u32).map(|i| (i * 7) as u8).collect();
        let oneshot = poly1305(&key, &[&msg]);
        for split in [1, 15, 16, 17, 31, 64, 100] {
            let mut p = Poly1305::new(&key);
            p.update(&msg[..split]);
            p.update(&msg[split..]);
            assert_eq!(p.finalize(), oneshot, "split at {split}");
        }
    }

    /// Keystream over multiple blocks equals per-block generation.
    #[test]
    fn multiblock_keystream_consistent() {
        let nonce = [7u8; 12];
        let cc = ChaCha20::new(&key_seq(), &nonce);
        let mut stream = vec![0u8; 130];
        cc.xor_keystream(1, &mut stream);
        let mut blocks = [0u8; 64];
        for (i, chunk) in stream.chunks(64).enumerate() {
            cc.block(1 + i as u32, &mut blocks);
            assert_eq!(chunk, &blocks[..chunk.len()]);
        }
    }
}
