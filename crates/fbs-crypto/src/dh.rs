//! Diffie-Hellman key exchange for zero-message keying.
//!
//! FBS assumes each principal holds a private value `s` whose public value
//! `g^s mod p` is distributed and authenticated out of band (certificates or
//! secure DNS, §5.2). The pair-based master key `K_{S,D} = g^{sd} mod p` is
//! then computable by exactly the two endpoints with no message exchange.
//!
//! The well-known groups are the Oakley MODP groups 1 (768-bit) and 2
//! (1024-bit) from RFC 2409 — the contemporaneous standard choices — plus a
//! small 256-bit test group for fast unit tests.

use crate::bignum::BigUint;

/// RFC 2409 Oakley group 1: 768-bit prime, generator 2.
pub const OAKLEY_GROUP1_PRIME_HEX: &str = "\
FFFFFFFFFFFFFFFFC90FDAA22168C234C4C6628B80DC1CD129024E088A67CC74\
020BBEA63B139B22514A08798E3404DDEF9519B3CD3A431B302B0A6DF25F1437\
4FE1356D6D51C245E485B576625E7EC6F44C42E9A63A3620FFFFFFFFFFFFFFFF";

/// RFC 2409 Oakley group 2: 1024-bit prime, generator 2.
pub const OAKLEY_GROUP2_PRIME_HEX: &str = "\
FFFFFFFFFFFFFFFFC90FDAA22168C234C4C6628B80DC1CD129024E088A67CC74\
020BBEA63B139B22514A08798E3404DDEF9519B3CD3A431B302B0A6DF25F1437\
4FE1356D6D51C245E485B576625E7EC6F44C42E9A637ED6B0BFF5CB6F406B7ED\
EE386BFB5A899FA5AE9F24117C4B1FE649286651ECE65381FFFFFFFFFFFFFFFF";

/// A Diffie-Hellman group (prime modulus + generator).
#[derive(Clone, Debug)]
pub struct DhGroup {
    /// Prime modulus `p`.
    pub p: BigUint,
    /// Generator `g`.
    pub g: BigUint,
    /// Human-readable name for diagnostics.
    pub name: &'static str,
}

impl DhGroup {
    /// Oakley group 1 (768-bit). The default for FBS principals.
    pub fn oakley1() -> Self {
        DhGroup {
            p: BigUint::from_hex(OAKLEY_GROUP1_PRIME_HEX),
            g: BigUint::from_u64(2),
            name: "oakley-group-1-768",
        }
    }

    /// Oakley group 2 (1024-bit).
    pub fn oakley2() -> Self {
        DhGroup {
            p: BigUint::from_hex(OAKLEY_GROUP2_PRIME_HEX),
            g: BigUint::from_u64(2),
            name: "oakley-group-2-1024",
        }
    }

    /// A tiny 61-bit group for fast tests ONLY (p = 2^61 - 1, a Mersenne
    /// prime; g = 37). Never use outside test code.
    pub fn test_group() -> Self {
        DhGroup {
            p: BigUint::from_u64((1u64 << 61) - 1),
            g: BigUint::from_u64(37),
            name: "test-group-61 (INSECURE)",
        }
    }

    /// Size of a serialised public value for this group, in bytes.
    pub fn element_len(&self) -> usize {
        self.p.bit_len().div_ceil(8)
    }
}

/// A principal's private value `s` plus its group.
#[derive(Clone)]
pub struct PrivateValue {
    group: DhGroup,
    s: BigUint,
}

/// A principal's public value `g^s mod p`, serialisable for certificates.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PublicValue {
    /// `g^s mod p`, big-endian, left-padded to the group element length.
    pub bytes: Vec<u8>,
}

impl PrivateValue {
    /// Create a private value from `entropy` (≥ 20 bytes recommended; the
    /// exponent is reduced into `[2, p-2]`).
    ///
    /// # Panics
    /// Panics if `entropy` is empty.
    pub fn from_entropy(group: DhGroup, entropy: &[u8]) -> Self {
        assert!(!entropy.is_empty(), "private value needs entropy");
        let two = BigUint::from_u64(2);
        let span = group.p.sub(&BigUint::from_u64(3)); // p-3 ≥ 1 for real groups
        let s = BigUint::from_bytes_be(entropy).rem(&span).add(&two);
        PrivateValue { group, s }
    }

    /// The corresponding public value `g^s mod p`.
    pub fn public_value(&self) -> PublicValue {
        let v = self.group.g.modpow(&self.s, &self.group.p);
        PublicValue {
            bytes: v.to_bytes_be_padded(self.group.element_len()),
        }
    }

    /// Compute the pair-based master key `K_{S,D} = peer^s mod p`, returned
    /// as the group-element-length big-endian byte string fed to the flow
    /// key derivation hash.
    pub fn master_key(&self, peer: &PublicValue) -> Vec<u8> {
        let peer_v = BigUint::from_bytes_be(&peer.bytes);
        let shared = peer_v.modpow(&self.s, &self.group.p);
        shared.to_bytes_be_padded(self.group.element_len())
    }

    /// The group this private value belongs to.
    pub fn group(&self) -> &DhGroup {
        &self.group
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn test_group_agreement() {
        let g = DhGroup::test_group();
        let alice = PrivateValue::from_entropy(g.clone(), b"alice-secret-entropy");
        let bob = PrivateValue::from_entropy(g, b"bob-secret-entropy!!");
        let k_ab = alice.master_key(&bob.public_value());
        let k_ba = bob.master_key(&alice.public_value());
        assert_eq!(k_ab, k_ba, "DH agreement must be symmetric");
        assert!(!k_ab.iter().all(|&b| b == 0));
    }

    #[test]
    fn different_pairs_different_keys() {
        let g = DhGroup::test_group();
        let a = PrivateValue::from_entropy(g.clone(), b"aaaaaaaaaaaaaaaaaaaa");
        let b = PrivateValue::from_entropy(g.clone(), b"bbbbbbbbbbbbbbbbbbbb");
        let c = PrivateValue::from_entropy(g, b"cccccccccccccccccccc");
        let k_ab = a.master_key(&b.public_value());
        let k_ac = a.master_key(&c.public_value());
        assert_ne!(k_ab, k_ac);
    }

    #[test]
    fn oakley1_agreement() {
        // Full-size group: slowish but exercises the real code path once.
        let g = DhGroup::oakley1();
        let alice = PrivateValue::from_entropy(g.clone(), &[7u8; 24]);
        let bob = PrivateValue::from_entropy(g.clone(), &[9u8; 24]);
        let k_ab = alice.master_key(&bob.public_value());
        let k_ba = bob.master_key(&alice.public_value());
        assert_eq!(k_ab, k_ba);
        assert_eq!(k_ab.len(), g.element_len());
        assert_eq!(g.element_len(), 96); // 768 bits
    }

    #[test]
    fn oakley2_element_len() {
        assert_eq!(DhGroup::oakley2().element_len(), 128); // 1024 bits
    }

    #[test]
    fn public_value_padded_length() {
        let g = DhGroup::test_group();
        let a = PrivateValue::from_entropy(g.clone(), b"xxxxxxxxxxxxxxxxxxxx");
        assert_eq!(a.public_value().bytes.len(), g.element_len());
    }

    #[test]
    #[should_panic(expected = "entropy")]
    fn empty_entropy_panics() {
        PrivateValue::from_entropy(DhGroup::test_group(), b"");
    }
}
