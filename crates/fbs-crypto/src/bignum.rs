//! Arbitrary-precision unsigned integers for Diffie-Hellman key exchange.
//!
//! FBS's zero-message keying (paper §5.1) rests on the Diffie-Hellman
//! pair-based master key `K_{S,D} = g^{sd} mod p`. The original
//! implementation used CryptoLib's bignum routines; this module provides a
//! from-scratch replacement sufficient for modular exponentiation with the
//! 768/1024-bit Oakley primes.
//!
//! Representation: little-endian `u32` limbs with no trailing zero limbs
//! (canonical form). All arithmetic is plain schoolbook / Knuth Algorithm D,
//! which is entirely adequate for per-principal master-key computation (the
//! paper amortises this cost through the master key cache).

use std::cmp::Ordering;
use std::fmt;

/// An arbitrary-precision unsigned integer.
#[derive(Clone, PartialEq, Eq, Default)]
pub struct BigUint {
    /// Little-endian limbs; invariant: no trailing zeros (`limbs` empty ⇔ 0).
    limbs: Vec<u32>,
}

impl BigUint {
    /// The value zero.
    pub fn zero() -> Self {
        BigUint { limbs: Vec::new() }
    }

    /// The value one.
    pub fn one() -> Self {
        BigUint { limbs: vec![1] }
    }

    /// Construct from a `u64`.
    pub fn from_u64(v: u64) -> Self {
        let mut n = BigUint {
            limbs: vec![v as u32, (v >> 32) as u32],
        };
        n.normalize();
        n
    }

    /// Construct from big-endian bytes (leading zeros permitted).
    pub fn from_bytes_be(bytes: &[u8]) -> Self {
        let mut limbs = Vec::with_capacity(bytes.len() / 4 + 1);
        let mut acc: u32 = 0;
        let mut shift = 0;
        for &b in bytes.iter().rev() {
            acc |= (b as u32) << shift;
            shift += 8;
            if shift == 32 {
                limbs.push(acc);
                acc = 0;
                shift = 0;
            }
        }
        if shift > 0 {
            limbs.push(acc);
        }
        let mut n = BigUint { limbs };
        n.normalize();
        n
    }

    /// Construct from a hexadecimal string (whitespace ignored).
    ///
    /// # Panics
    /// Panics on non-hex characters; intended for compiled-in constants.
    pub fn from_hex(s: &str) -> Self {
        let digits: Vec<u8> = s
            .chars()
            .filter(|c| !c.is_whitespace())
            .map(|c| c.to_digit(16).expect("invalid hex digit") as u8)
            .collect();
        let mut bytes = Vec::with_capacity(digits.len() / 2 + 1);
        let mut iter = digits.iter();
        if digits.len() % 2 == 1 {
            bytes.push(*iter.next().unwrap());
        }
        while let Some(&hi) = iter.next() {
            let lo = *iter.next().unwrap();
            bytes.push((hi << 4) | lo);
        }
        BigUint::from_bytes_be(&bytes)
    }

    /// Big-endian byte representation with no leading zeros (empty for 0).
    pub fn to_bytes_be(&self) -> Vec<u8> {
        if self.is_zero() {
            return Vec::new();
        }
        let mut out = Vec::with_capacity(self.limbs.len() * 4);
        for &limb in self.limbs.iter().rev() {
            out.extend_from_slice(&limb.to_be_bytes());
        }
        let first_nonzero = out.iter().position(|&b| b != 0).unwrap_or(out.len());
        out.drain(..first_nonzero);
        out
    }

    /// Big-endian bytes left-padded with zeros to exactly `len` bytes.
    ///
    /// # Panics
    /// Panics if the value does not fit in `len` bytes.
    pub fn to_bytes_be_padded(&self, len: usize) -> Vec<u8> {
        let raw = self.to_bytes_be();
        assert!(raw.len() <= len, "value does not fit in {len} bytes");
        let mut out = vec![0u8; len - raw.len()];
        out.extend_from_slice(&raw);
        out
    }

    /// True iff the value is zero.
    pub fn is_zero(&self) -> bool {
        self.limbs.is_empty()
    }

    /// Number of significant bits (0 for zero).
    pub fn bit_len(&self) -> usize {
        match self.limbs.last() {
            None => 0,
            Some(&top) => (self.limbs.len() - 1) * 32 + (32 - top.leading_zeros() as usize),
        }
    }

    /// Value of bit `i` (little-endian bit numbering).
    pub fn bit(&self, i: usize) -> bool {
        let limb = i / 32;
        if limb >= self.limbs.len() {
            return false;
        }
        (self.limbs[limb] >> (i % 32)) & 1 == 1
    }

    fn normalize(&mut self) {
        while let Some(&0) = self.limbs.last() {
            self.limbs.pop();
        }
    }

    /// `self + other`.
    pub fn add(&self, other: &BigUint) -> BigUint {
        let (a, b) = if self.limbs.len() >= other.limbs.len() {
            (&self.limbs, &other.limbs)
        } else {
            (&other.limbs, &self.limbs)
        };
        let mut out = Vec::with_capacity(a.len() + 1);
        let mut carry: u64 = 0;
        for (i, &limb) in a.iter().enumerate() {
            let sum = limb as u64 + *b.get(i).unwrap_or(&0) as u64 + carry;
            out.push(sum as u32);
            carry = sum >> 32;
        }
        if carry != 0 {
            out.push(carry as u32);
        }
        let mut n = BigUint { limbs: out };
        n.normalize();
        n
    }

    /// `self - other`.
    ///
    /// # Panics
    /// Panics if `other > self` (unsigned underflow).
    pub fn sub(&self, other: &BigUint) -> BigUint {
        assert!(
            self.cmp_to(other) != Ordering::Less,
            "BigUint::sub underflow"
        );
        let mut out = Vec::with_capacity(self.limbs.len());
        let mut borrow: i64 = 0;
        for i in 0..self.limbs.len() {
            let diff = self.limbs[i] as i64 - *other.limbs.get(i).unwrap_or(&0) as i64 - borrow;
            if diff < 0 {
                out.push((diff + (1i64 << 32)) as u32);
                borrow = 1;
            } else {
                out.push(diff as u32);
                borrow = 0;
            }
        }
        let mut n = BigUint { limbs: out };
        n.normalize();
        n
    }

    /// Three-way comparison.
    pub fn cmp_to(&self, other: &BigUint) -> Ordering {
        if self.limbs.len() != other.limbs.len() {
            return self.limbs.len().cmp(&other.limbs.len());
        }
        for i in (0..self.limbs.len()).rev() {
            match self.limbs[i].cmp(&other.limbs[i]) {
                Ordering::Equal => continue,
                ord => return ord,
            }
        }
        Ordering::Equal
    }

    /// `self * other` (schoolbook multiplication).
    pub fn mul(&self, other: &BigUint) -> BigUint {
        if self.is_zero() || other.is_zero() {
            return BigUint::zero();
        }
        let mut out = vec![0u32; self.limbs.len() + other.limbs.len()];
        for (i, &a) in self.limbs.iter().enumerate() {
            let mut carry: u64 = 0;
            for (j, &b) in other.limbs.iter().enumerate() {
                let cur = out[i + j] as u64 + a as u64 * b as u64 + carry;
                out[i + j] = cur as u32;
                carry = cur >> 32;
            }
            let mut k = i + other.limbs.len();
            while carry != 0 {
                let cur = out[k] as u64 + carry;
                out[k] = cur as u32;
                carry = cur >> 32;
                k += 1;
            }
        }
        let mut n = BigUint { limbs: out };
        n.normalize();
        n
    }

    /// Left shift by `bits`.
    pub fn shl(&self, bits: usize) -> BigUint {
        if self.is_zero() {
            return BigUint::zero();
        }
        let limb_shift = bits / 32;
        let bit_shift = bits % 32;
        let mut out = vec![0u32; limb_shift];
        if bit_shift == 0 {
            out.extend_from_slice(&self.limbs);
        } else {
            let mut carry = 0u32;
            for &l in &self.limbs {
                out.push((l << bit_shift) | carry);
                carry = l >> (32 - bit_shift);
            }
            if carry != 0 {
                out.push(carry);
            }
        }
        let mut n = BigUint { limbs: out };
        n.normalize();
        n
    }

    /// Right shift by `bits`.
    pub fn shr(&self, bits: usize) -> BigUint {
        let limb_shift = bits / 32;
        if limb_shift >= self.limbs.len() {
            return BigUint::zero();
        }
        let bit_shift = bits % 32;
        let src = &self.limbs[limb_shift..];
        let mut out = Vec::with_capacity(src.len());
        if bit_shift == 0 {
            out.extend_from_slice(src);
        } else {
            for i in 0..src.len() {
                let hi = if i + 1 < src.len() {
                    src[i + 1] << (32 - bit_shift)
                } else {
                    0
                };
                out.push((src[i] >> bit_shift) | hi);
            }
        }
        let mut n = BigUint { limbs: out };
        n.normalize();
        n
    }

    /// Quotient and remainder of `self / divisor` (Knuth Algorithm D).
    ///
    /// # Panics
    /// Panics on division by zero.
    pub fn div_rem(&self, divisor: &BigUint) -> (BigUint, BigUint) {
        assert!(!divisor.is_zero(), "BigUint division by zero");
        match self.cmp_to(divisor) {
            Ordering::Less => return (BigUint::zero(), self.clone()),
            Ordering::Equal => return (BigUint::one(), BigUint::zero()),
            Ordering::Greater => {}
        }
        // Single-limb divisor: simple short division.
        if divisor.limbs.len() == 1 {
            let d = divisor.limbs[0] as u64;
            let mut rem: u64 = 0;
            let mut q = vec![0u32; self.limbs.len()];
            for i in (0..self.limbs.len()).rev() {
                let cur = (rem << 32) | self.limbs[i] as u64;
                q[i] = (cur / d) as u32;
                rem = cur % d;
            }
            let mut quo = BigUint { limbs: q };
            quo.normalize();
            return (quo, BigUint::from_u64(rem));
        }

        // Normalise so the divisor's top limb has its high bit set.
        let shift = divisor.limbs.last().unwrap().leading_zeros() as usize;
        let u = self.shl(shift);
        let v = divisor.shl(shift);
        let n = v.limbs.len();
        let m = u.limbs.len() - n;

        let mut un: Vec<u32> = u.limbs.clone();
        un.push(0); // extra high limb for the algorithm
        let vn = &v.limbs;
        let mut q = vec![0u32; m + 1];

        let v_top = vn[n - 1] as u64;
        let v_next = vn[n - 2] as u64;

        for j in (0..=m).rev() {
            // Estimate q̂.
            let num = ((un[j + n] as u64) << 32) | un[j + n - 1] as u64;
            let mut qhat = num / v_top;
            let mut rhat = num % v_top;
            while qhat >= 1u64 << 32 || qhat * v_next > ((rhat << 32) | un[j + n - 2] as u64) {
                qhat -= 1;
                rhat += v_top;
                if rhat >= 1u64 << 32 {
                    break;
                }
            }
            // Multiply-and-subtract.
            let mut borrow: i64 = 0;
            let mut carry: u64 = 0;
            for i in 0..n {
                let p = qhat * vn[i] as u64 + carry;
                carry = p >> 32;
                let t = un[i + j] as i64 - (p as u32) as i64 - borrow;
                un[i + j] = t as u32;
                borrow = if t < 0 { 1 } else { 0 };
            }
            let t = un[j + n] as i64 - carry as i64 - borrow;
            un[j + n] = t as u32;

            if t < 0 {
                // q̂ was one too large: add back.
                qhat -= 1;
                let mut carry: u64 = 0;
                for i in 0..n {
                    let sum = un[i + j] as u64 + vn[i] as u64 + carry;
                    un[i + j] = sum as u32;
                    carry = sum >> 32;
                }
                un[j + n] = (un[j + n] as u64 + carry) as u32;
            }
            q[j] = qhat as u32;
        }

        let mut quo = BigUint { limbs: q };
        quo.normalize();
        let mut rem = BigUint {
            limbs: un[..n].to_vec(),
        };
        rem.normalize();
        (quo, rem.shr(shift))
    }

    /// `self mod modulus`.
    pub fn rem(&self, modulus: &BigUint) -> BigUint {
        self.div_rem(modulus).1
    }

    /// Modular multiplication `self * other mod modulus`.
    pub fn modmul(&self, other: &BigUint, modulus: &BigUint) -> BigUint {
        self.mul(other).rem(modulus)
    }

    /// Modular inverse: the `x` with `self * x ≡ 1 (mod modulus)`, when
    /// `gcd(self, modulus) = 1`. Iterative extended Euclid with the Bezout
    /// coefficient tracked as a (magnitude, sign) pair.
    pub fn modinv(&self, modulus: &BigUint) -> Option<BigUint> {
        if modulus.is_zero() || self.is_zero() {
            return None;
        }
        // (old_r, r) gcd sequence; (old_t, t) Bezout coefficients for the
        // SELF argument, as signed magnitudes.
        let mut old_r = self.rem(modulus);
        let mut r = modulus.clone();
        let mut old_t = (BigUint::one(), false); // +1
        let mut t = (BigUint::zero(), false); // 0
        while !r.is_zero() {
            let (q, rem) = old_r.div_rem(&r);
            // new_t = old_t - q * t   (signed)
            let qt = q.mul(&t.0);
            let new_t = signed_sub(&old_t, &(qt, t.1));
            old_r = std::mem::replace(&mut r, rem);
            old_t = std::mem::replace(&mut t, new_t);
        }
        if old_r != BigUint::one() {
            return None; // not coprime
        }
        // Normalise old_t into [0, modulus).
        let (mag, neg) = old_t;
        let m = mag.rem(modulus);
        Some(if neg && !m.is_zero() {
            modulus.sub(&m)
        } else {
            m
        })
    }

    /// Miller-Rabin probable-prime test with `rounds` random bases drawn
    /// from `next_random` (a callback so callers choose the RNG grade).
    pub fn is_probable_prime(&self, rounds: u32, mut next_random: impl FnMut() -> u64) -> bool {
        let two = BigUint::from_u64(2);
        let three = BigUint::from_u64(3);
        if *self < two {
            return false;
        }
        if *self == two || *self == three {
            return true;
        }
        if !self.bit(0) {
            return false;
        }
        // Quick trial division by small primes.
        for p in [3u64, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47] {
            let pb = BigUint::from_u64(p);
            if *self == pb {
                return true;
            }
            if self.rem(&pb).is_zero() {
                return false;
            }
        }
        // n - 1 = d * 2^s with d odd.
        let n_minus_1 = self.sub(&BigUint::one());
        let mut d = n_minus_1.clone();
        let mut s = 0u32;
        while !d.bit(0) {
            d = d.shr(1);
            s += 1;
        }
        'witness: for _ in 0..rounds {
            // Base in [2, n-2]: build from two random words mod (n-3).
            let span = self.sub(&three);
            let mut raw = BigUint::from_u64(next_random());
            raw = raw.shl(64).add(&BigUint::from_u64(next_random()));
            let a = raw.rem(&span).add(&two);
            let mut x = a.modpow(&d, self);
            if x == BigUint::one() || x == n_minus_1 {
                continue 'witness;
            }
            for _ in 0..s - 1 {
                x = x.modmul(&x, self);
                if x == n_minus_1 {
                    continue 'witness;
                }
            }
            return false;
        }
        true
    }

    /// Modular exponentiation `self^exp mod modulus` via left-to-right
    /// square-and-multiply.
    ///
    /// # Panics
    /// Panics if `modulus` is zero.
    pub fn modpow(&self, exp: &BigUint, modulus: &BigUint) -> BigUint {
        assert!(!modulus.is_zero(), "modpow with zero modulus");
        if modulus.limbs == [1] {
            return BigUint::zero();
        }
        let mut result = BigUint::one();
        let base = self.rem(modulus);
        let bits = exp.bit_len();
        for i in (0..bits).rev() {
            result = result.modmul(&result, modulus);
            if exp.bit(i) {
                result = result.modmul(&base, modulus);
            }
        }
        result
    }
}

/// Signed subtraction over (magnitude, is_negative) pairs.
fn signed_sub(a: &(BigUint, bool), b: &(BigUint, bool)) -> (BigUint, bool) {
    match (a.1, b.1) {
        // a - b with both non-negative.
        (false, false) => {
            if a.0 >= b.0 {
                (a.0.sub(&b.0), false)
            } else {
                (b.0.sub(&a.0), true)
            }
        }
        // a - (-b) = a + b
        (false, true) => (a.0.add(&b.0), false),
        // (-a) - b = -(a + b)
        (true, false) => (a.0.add(&b.0), true),
        // (-a) - (-b) = b - a
        (true, true) => {
            if b.0 >= a.0 {
                (b.0.sub(&a.0), false)
            } else {
                (a.0.sub(&b.0), true)
            }
        }
    }
}

impl fmt::Debug for BigUint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_zero() {
            return write!(f, "0x0");
        }
        write!(f, "0x")?;
        for (i, limb) in self.limbs.iter().rev().enumerate() {
            if i == 0 {
                write!(f, "{limb:x}")?;
            } else {
                write!(f, "{limb:08x}")?;
            }
        }
        Ok(())
    }
}

impl fmt::Display for BigUint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

impl PartialOrd for BigUint {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for BigUint {
    fn cmp(&self, other: &Self) -> Ordering {
        self.cmp_to(other)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn big(v: u64) -> BigUint {
        BigUint::from_u64(v)
    }

    #[test]
    fn zero_and_one() {
        assert!(BigUint::zero().is_zero());
        assert!(!BigUint::one().is_zero());
        assert_eq!(BigUint::zero().bit_len(), 0);
        assert_eq!(BigUint::one().bit_len(), 1);
    }

    #[test]
    fn from_u64_roundtrip() {
        for v in [0u64, 1, 0xffff_ffff, 0x1_0000_0000, u64::MAX] {
            let n = big(v);
            let bytes = n.to_bytes_be_padded(8);
            assert_eq!(u64::from_be_bytes(bytes.try_into().unwrap()), v);
        }
    }

    #[test]
    fn hex_parsing() {
        assert_eq!(BigUint::from_hex("ff"), big(255));
        assert_eq!(BigUint::from_hex("1 00"), big(256));
        assert_eq!(BigUint::from_hex("deadbeef"), big(0xdeadbeef));
        assert_eq!(
            BigUint::from_hex("123456789abcdef0123"),
            BigUint::from_bytes_be(&[0x1, 0x23, 0x45, 0x67, 0x89, 0xab, 0xcd, 0xef, 0x01, 0x23])
        );
    }

    #[test]
    fn add_with_carry_chain() {
        let a = BigUint::from_hex("ffffffffffffffff");
        let b = BigUint::one();
        assert_eq!(a.add(&b), BigUint::from_hex("10000000000000000"));
    }

    #[test]
    fn sub_with_borrow_chain() {
        let a = BigUint::from_hex("10000000000000000");
        let b = BigUint::one();
        assert_eq!(a.sub(&b), BigUint::from_hex("ffffffffffffffff"));
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn sub_underflow_panics() {
        big(1).sub(&big(2));
    }

    #[test]
    fn mul_basic() {
        assert_eq!(big(12345).mul(&big(6789)), big(12345 * 6789));
        assert_eq!(big(0).mul(&big(6789)), BigUint::zero());
        let a = BigUint::from_hex("ffffffffffffffff");
        // (2^64-1)^2 = 2^128 - 2^65 + 1
        assert_eq!(
            a.mul(&a),
            BigUint::from_hex("fffffffffffffffe0000000000000001")
        );
    }

    #[test]
    fn shifts() {
        let a = BigUint::from_hex("deadbeef");
        assert_eq!(a.shl(4), BigUint::from_hex("deadbeef0"));
        assert_eq!(a.shl(32).shr(32), a);
        assert_eq!(a.shr(100), BigUint::zero());
        assert_eq!(a.shl(0), a);
    }

    #[test]
    fn div_rem_small() {
        let (q, r) = big(100).div_rem(&big(7));
        assert_eq!(q, big(14));
        assert_eq!(r, big(2));
    }

    #[test]
    fn div_rem_dividend_smaller() {
        let (q, r) = big(3).div_rem(&big(7));
        assert_eq!(q, BigUint::zero());
        assert_eq!(r, big(3));
    }

    #[test]
    fn div_rem_multi_limb() {
        let a = BigUint::from_hex("fedcba9876543210fedcba9876543210");
        let b = BigUint::from_hex("123456789abcdef");
        let (q, r) = a.div_rem(&b);
        // verify a == q*b + r and r < b
        assert_eq!(q.mul(&b).add(&r), a);
        assert!(r.cmp_to(&b) == Ordering::Less);
    }

    #[test]
    fn div_rem_algorithm_d_addback_path() {
        // Crafted to stress the "add back" correction: divisor with top limb
        // 0x80000000 pattern.
        let a = BigUint::from_hex("7fffffff800000010000000000000000");
        let b = BigUint::from_hex("800000008000000200000005");
        let (q, r) = a.div_rem(&b);
        assert_eq!(q.mul(&b).add(&r), a);
        assert!(r.cmp_to(&b) == Ordering::Less);
    }

    #[test]
    #[should_panic(expected = "division by zero")]
    fn div_by_zero_panics() {
        big(1).div_rem(&BigUint::zero());
    }

    #[test]
    fn modpow_small_numbers() {
        // 3^5 mod 7 = 243 mod 7 = 5
        assert_eq!(big(3).modpow(&big(5), &big(7)), big(5));
        // Fermat: a^(p-1) ≡ 1 (mod p) for prime p
        assert_eq!(big(2).modpow(&big(12), &big(13)), big(1));
        // anything mod 1 is 0
        assert_eq!(big(5).modpow(&big(5), &big(1)), BigUint::zero());
        // exponent zero ⇒ 1
        assert_eq!(big(9).modpow(&BigUint::zero(), &big(13)), big(1));
    }

    #[test]
    fn modpow_large() {
        // 2^128 mod (2^127 - 1) = 2  (since 2^127 ≡ 1 mod M127)
        let m127 = BigUint::from_hex("7fffffffffffffffffffffffffffffff");
        assert_eq!(big(2).modpow(&big(128), &m127), big(2));
    }

    #[test]
    fn dh_commutativity_small_prime() {
        // Toy DH over p=1019 (prime), g=2: g^(ab) must match both orders.
        let p = big(1019);
        let g = big(2);
        let a = big(347);
        let b = big(731);
        let ga = g.modpow(&a, &p);
        let gb = g.modpow(&b, &p);
        assert_eq!(ga.modpow(&b, &p), gb.modpow(&a, &p));
    }

    #[test]
    fn modinv_small_cases() {
        // 3 * 5 = 15 ≡ 1 (mod 7)
        assert_eq!(big(3).modinv(&big(7)), Some(big(5)));
        // 10 and 15 share factor 5: no inverse.
        assert_eq!(big(10).modinv(&big(15)), None);
        // Inverse of 1 is 1.
        assert_eq!(big(1).modinv(&big(97)), Some(big(1)));
        // Self-check across a prime modulus: a * a^-1 ≡ 1.
        let m = big(101);
        for a in 1u64..100 {
            let inv = big(a).modinv(&m).expect("prime modulus");
            assert_eq!(big(a).modmul(&inv, &m), big(1), "a={a}");
        }
    }

    #[test]
    fn modinv_large() {
        let m = BigUint::from_hex("fffffffffffffffffffffffffffffffeffffffffffffffff"); // P-192 order-ish
        let a = BigUint::from_hex("deadbeefcafebabe0123456789abcdef");
        if let Some(inv) = a.modinv(&m) {
            assert_eq!(a.modmul(&inv, &m), BigUint::one());
        } else {
            panic!("expected invertible");
        }
    }

    #[test]
    fn miller_rabin_agrees_with_small_sieve() {
        // Check against trial division for n < 2000.
        let mut seed = 0x12345u64;
        let mut rng = move || {
            seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
            seed
        };
        for n in 2u64..2000 {
            let truth = (2..n).take_while(|d| d * d <= n).all(|d| n % d != 0) && n >= 2;
            let got = big(n).is_probable_prime(16, &mut rng);
            assert_eq!(got, truth, "n={n}");
        }
    }

    #[test]
    fn miller_rabin_known_large_prime_and_composite() {
        let mut seed = 99u64;
        let mut rng = move || {
            seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
            seed
        };
        // 2^89 - 1 is a Mersenne prime.
        let m89 = BigUint::from_u64(1).shl(89).sub(&BigUint::one());
        assert!(m89.is_probable_prime(16, &mut rng));
        // 2^89 + 1 is divisible by 3.
        let c = BigUint::from_u64(1).shl(89).add(&BigUint::one());
        assert!(!c.is_probable_prime(16, &mut rng));
        // A Carmichael number (561 = 3·11·17) must be caught.
        assert!(!big(561).is_probable_prime(16, &mut rng));
    }

    #[test]
    fn bytes_be_roundtrip_strips_leading_zeros() {
        let n = BigUint::from_bytes_be(&[0, 0, 1, 2]);
        assert_eq!(n.to_bytes_be(), vec![1, 2]);
        assert_eq!(n.to_bytes_be_padded(4), vec![0, 0, 1, 2]);
    }

    #[test]
    fn ordering() {
        assert!(big(5) < big(6));
        assert!(BigUint::from_hex("100000000") > big(0xffffffff));
        assert_eq!(big(42).cmp_to(&big(42)), Ordering::Equal);
    }
}
