//! SHA-1 message digest (FIPS 180, "SHS" in the paper).
//!
//! The paper lists SHS as an alternative to MD5 for both flow-key derivation
//! and MAC computation (§5.2), noting its 160-bit output (§5.3). Provided so
//! the algorithm-identification field has a second real algorithm to select.
//!
//! **Security note:** SHA-1 is collision-broken; see the crate disclaimer.

/// Digest size in bytes.
pub const DIGEST_SIZE: usize = 20;

/// A streaming SHA-1 context.
#[derive(Clone)]
pub struct Sha1 {
    state: [u32; 5],
    len: u64,
    buf: [u8; 64],
    buf_len: usize,
}

impl Default for Sha1 {
    fn default() -> Self {
        Self::new()
    }
}

impl Sha1 {
    /// Create a fresh context.
    pub fn new() -> Self {
        Sha1 {
            state: [0x67452301, 0xEFCDAB89, 0x98BADCFE, 0x10325476, 0xC3D2E1F0],
            len: 0,
            buf: [0u8; 64],
            buf_len: 0,
        }
    }

    /// Absorb `data` into the digest.
    pub fn update(&mut self, data: &[u8]) {
        self.len = self.len.wrapping_add(data.len() as u64);
        let mut input = data;
        if self.buf_len > 0 {
            let take = (64 - self.buf_len).min(input.len());
            self.buf[self.buf_len..self.buf_len + take].copy_from_slice(&input[..take]);
            self.buf_len += take;
            input = &input[take..];
            if self.buf_len == 64 {
                let block = self.buf;
                self.compress(&block);
                self.buf_len = 0;
            }
        }
        while input.len() >= 64 {
            let block: [u8; 64] = input[..64].try_into().unwrap();
            self.compress(&block);
            input = &input[64..];
        }
        if !input.is_empty() {
            self.buf[..input.len()].copy_from_slice(input);
            self.buf_len = input.len();
        }
    }

    /// Finish and return the 20-byte digest.
    pub fn finalize(mut self) -> [u8; DIGEST_SIZE] {
        let bit_len = self.len.wrapping_mul(8);
        self.update(&[0x80]);
        while self.buf_len != 56 {
            self.update(&[0]);
        }
        let mut block = self.buf;
        block[56..64].copy_from_slice(&bit_len.to_be_bytes());
        self.compress(&block);
        let mut out = [0u8; DIGEST_SIZE];
        for (i, word) in self.state.iter().enumerate() {
            out[i * 4..i * 4 + 4].copy_from_slice(&word.to_be_bytes());
        }
        out
    }

    fn compress(&mut self, block: &[u8; 64]) {
        let mut w = [0u32; 80];
        for (i, chunk) in block.chunks_exact(4).enumerate() {
            w[i] = u32::from_be_bytes(chunk.try_into().unwrap());
        }
        for i in 16..80 {
            w[i] = (w[i - 3] ^ w[i - 8] ^ w[i - 14] ^ w[i - 16]).rotate_left(1);
        }
        let (mut a, mut b, mut c, mut d, mut e) = (
            self.state[0],
            self.state[1],
            self.state[2],
            self.state[3],
            self.state[4],
        );
        for (i, &wi) in w.iter().enumerate() {
            let (f, k) = match i / 20 {
                0 => ((b & c) | (!b & d), 0x5A827999),
                1 => (b ^ c ^ d, 0x6ED9EBA1),
                2 => ((b & c) | (b & d) | (c & d), 0x8F1BBCDC),
                _ => (b ^ c ^ d, 0xCA62C1D6),
            };
            let tmp = a
                .rotate_left(5)
                .wrapping_add(f)
                .wrapping_add(e)
                .wrapping_add(k)
                .wrapping_add(wi);
            e = d;
            d = c;
            c = b.rotate_left(30);
            b = a;
            a = tmp;
        }
        self.state[0] = self.state[0].wrapping_add(a);
        self.state[1] = self.state[1].wrapping_add(b);
        self.state[2] = self.state[2].wrapping_add(c);
        self.state[3] = self.state[3].wrapping_add(d);
        self.state[4] = self.state[4].wrapping_add(e);
    }
}

/// One-shot SHA-1 of `data`.
pub fn sha1(data: &[u8]) -> [u8; DIGEST_SIZE] {
    let mut ctx = Sha1::new();
    ctx.update(data);
    ctx.finalize()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(d: &[u8]) -> String {
        d.iter().map(|b| format!("{b:02x}")).collect()
    }

    /// FIPS 180 / NIST example vectors.
    #[test]
    fn fips180_vectors() {
        assert_eq!(
            hex(&sha1(b"abc")),
            "a9993e364706816aba3e25717850c26c9cd0d89d"
        );
        assert_eq!(
            hex(&sha1(
                b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"
            )),
            "84983e441c3bd26ebaae4aa1f95129e5e54670f1"
        );
        assert_eq!(hex(&sha1(b"")), "da39a3ee5e6b4b0d3255bfef95601890afd80709");
    }

    #[test]
    fn million_a() {
        let mut ctx = Sha1::new();
        let chunk = [b'a'; 1000];
        for _ in 0..1000 {
            ctx.update(&chunk);
        }
        assert_eq!(
            hex(&ctx.finalize()),
            "34aa973cd4c4daa4f61eeb2bdbad27316534016f"
        );
    }

    #[test]
    fn streaming_matches_oneshot() {
        let data: Vec<u8> = (0..777u32).map(|i| (i * 7) as u8).collect();
        let oneshot = sha1(&data);
        for chunk in [1usize, 13, 64, 65] {
            let mut ctx = Sha1::new();
            for c in data.chunks(chunk) {
                ctx.update(c);
            }
            assert_eq!(ctx.finalize(), oneshot, "chunk size {chunk}");
        }
    }
}
