//! RSA signatures for the certificate substrate.
//!
//! The paper assumes public values are "authenticated via a distributed
//! certification hierarchy (e.g., X.509 certificates)" (§5.2), and its
//! CryptoLib dependency shipped RSA. This module provides the signing
//! primitive that makes the `fbs-cert` authority a real public-key CA:
//! key generation (Miller-Rabin primes), PKCS#1-style signature padding
//! over an MD5 digest, and verification.
//!
//! **Security note:** RSA-with-MD5 and the key sizes used here are 1990s
//! artifacts, reproduced for fidelity. See the crate disclaimer.

use crate::bignum::BigUint;
use crate::md5::md5;
use crate::rng::Lcg64;

/// An RSA public key (n, e).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RsaPublicKey {
    /// Modulus.
    pub n: BigUint,
    /// Public exponent (65537 here).
    pub e: BigUint,
}

/// An RSA private key.
#[derive(Clone)]
pub struct RsaPrivateKey {
    /// Modulus.
    pub n: BigUint,
    /// Public exponent.
    pub e: BigUint,
    /// Private exponent.
    d: BigUint,
}

impl std::fmt::Debug for RsaPrivateKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // Never print the private exponent.
        write!(f, "RsaPrivateKey({} bits)", self.n.bit_len())
    }
}

/// The Fermat-4 public exponent.
const E: u64 = 65_537;

/// Generate a probable prime of exactly `bits` bits (`bits` must be a
/// multiple of 8). The top two bits are forced so the product of two such
/// primes has exactly `2*bits` bits.
fn gen_prime(bits: usize, rng: &mut Lcg64) -> BigUint {
    assert!(
        bits >= 16 && bits.is_multiple_of(8),
        "bits must be a multiple of 8, ≥16"
    );
    loop {
        let mut bytes = vec![0u8; bits / 8];
        rng.fill(&mut bytes);
        bytes[0] |= 0xC0; // top two bits
        *bytes.last_mut().unwrap() |= 1; // odd
        let cand = BigUint::from_bytes_be(&bytes);
        debug_assert_eq!(cand.bit_len(), bits);
        if cand.is_probable_prime(12, || rng.next_u64()) {
            return cand;
        }
    }
}

impl RsaPrivateKey {
    /// Generate a key with a modulus of roughly `modulus_bits` bits from
    /// the seeded generator (deterministic for the simulation; a real CA
    /// would use OS entropy).
    pub fn generate(modulus_bits: usize, seed: u64) -> Self {
        let mut rng = Lcg64::new(seed ^ 0x5CA1AB1E);
        let half = modulus_bits / 2;
        loop {
            let p = gen_prime(half, &mut rng);
            let q = gen_prime(half, &mut rng);
            if p == q {
                continue;
            }
            let n = p.mul(&q);
            let phi = p.sub(&BigUint::one()).mul(&q.sub(&BigUint::one()));
            let e = BigUint::from_u64(E);
            let Some(d) = e.modinv(&phi) else {
                continue; // gcd(e, phi) != 1; rare — pick new primes
            };
            return RsaPrivateKey { n, e, d };
        }
    }

    /// The corresponding public key.
    pub fn public_key(&self) -> RsaPublicKey {
        RsaPublicKey {
            n: self.n.clone(),
            e: self.e.clone(),
        }
    }

    /// Sign `message`: MD5 digest, PKCS#1-style pad, raise to `d`.
    pub fn sign(&self, message: &[u8]) -> Vec<u8> {
        let k = self.n.bit_len().div_ceil(8);
        let em = pad_digest(&md5(message), k);
        let m = BigUint::from_bytes_be(&em);
        m.modpow(&self.d, &self.n).to_bytes_be_padded(k)
    }
}

impl RsaPublicKey {
    /// Verify `signature` over `message`.
    pub fn verify(&self, message: &[u8], signature: &[u8]) -> bool {
        let k = self.n.bit_len().div_ceil(8);
        if signature.len() != k {
            return false;
        }
        let s = BigUint::from_bytes_be(signature);
        if s >= self.n {
            return false;
        }
        let em = s.modpow(&self.e, &self.n).to_bytes_be_padded(k);
        em == pad_digest(&md5(message), k)
    }
}

/// PKCS#1 v1.5-style encoding (without the ASN.1 DigestInfo, documented
/// simplification): `00 01 FF..FF 00 || digest`.
fn pad_digest(digest: &[u8; 16], k: usize) -> Vec<u8> {
    assert!(k >= digest.len() + 11, "modulus too small for padding");
    let mut em = vec![0xFFu8; k];
    em[0] = 0x00;
    em[1] = 0x01;
    em[k - digest.len() - 1] = 0x00;
    em[k - digest.len()..].copy_from_slice(digest);
    em
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Small keys keep debug-mode tests fast; release examples use larger.
    fn test_key() -> RsaPrivateKey {
        RsaPrivateKey::generate(256, 7)
    }

    #[test]
    fn sign_verify_roundtrip() {
        let key = test_key();
        let public = key.public_key();
        let sig = key.sign(b"certificate body bytes");
        assert!(public.verify(b"certificate body bytes", &sig));
    }

    #[test]
    fn verify_rejects_tampered_message() {
        let key = test_key();
        let sig = key.sign(b"original message");
        assert!(!key.public_key().verify(b"altered message!", &sig));
    }

    #[test]
    fn verify_rejects_tampered_signature() {
        let key = test_key();
        let mut sig = key.sign(b"message");
        sig[5] ^= 1;
        assert!(!key.public_key().verify(b"message", &sig));
        sig[5] ^= 1;
        let n = sig.len();
        sig.truncate(n - 1);
        assert!(!key.public_key().verify(b"message", &sig));
    }

    #[test]
    fn wrong_key_rejects() {
        let k1 = RsaPrivateKey::generate(256, 7);
        let k2 = RsaPrivateKey::generate(256, 8);
        let sig = k1.sign(b"message");
        assert!(!k2.public_key().verify(b"message", &sig));
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let a = RsaPrivateKey::generate(256, 42);
        let b = RsaPrivateKey::generate(256, 42);
        assert_eq!(a.public_key(), b.public_key());
        let c = RsaPrivateKey::generate(256, 43);
        assert_ne!(a.public_key(), c.public_key());
    }

    #[test]
    fn modulus_has_requested_size() {
        let key = test_key();
        assert_eq!(key.n.bit_len(), 256);
    }

    #[test]
    fn debug_does_not_leak_private_exponent() {
        let key = test_key();
        assert_eq!(format!("{key:?}"), "RsaPrivateKey(256 bits)");
    }
}
