//! Cipher-suite selector for the profile-driven crypto plane.
//!
//! The paper's security flow header carries MAC and encryption algorithm
//! IDs (§5.2) precisely so that endpoints can negotiate stronger or faster
//! algorithms than the DES+MD5 baseline measured in fig08. A
//! [`CipherSuite`] names a coherent *profile* — the (MAC, cipher, MAC-input
//! layout) triple sealed into the flow's key schedule at derivation time —
//! so the per-datagram fast path dispatches on the key, never on mutable
//! config, and a worker never changes crypto behaviour mid-batch.

/// A crypto-plane profile, carried in the flow key schedule and in the
/// (formerly reserved) header byte 19.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum CipherSuite {
    /// Paper-faithful profile: prefix-keyed MD5 + DES-CBC, MAC over the
    /// plaintext, byte-identical to the pre-suite wire format (byte 19
    /// stays zero, exactly as the seed wrote it).
    #[default]
    Paper,
    /// Fast classical profile: word-sliced (4-wide interleaved) DES in
    /// counter mode + prefix-keyed MD5 with a cached key-prefix context.
    /// Same primitives as the paper, restructured for ILP.
    FastDes,
    /// Modern AEAD-style profile: ChaCha20 encryption + Poly1305 one-time
    /// tag over the ciphertext (encrypt-then-MAC, RFC 8439 layout).
    AeadChaPoly,
}

impl CipherSuite {
    /// All suites, for grids and exhaustive tests.
    pub const ALL: [CipherSuite; 3] = [
        CipherSuite::Paper,
        CipherSuite::FastDes,
        CipherSuite::AeadChaPoly,
    ];

    /// Wire identifier carried in header byte 19. `Paper` is 0 so
    /// paper-profile frames remain bit-identical to the pre-suite format.
    pub fn wire_id(self) -> u8 {
        match self {
            CipherSuite::Paper => 0,
            CipherSuite::FastDes => 1,
            CipherSuite::AeadChaPoly => 2,
        }
    }

    /// Inverse of [`wire_id`](Self::wire_id).
    pub fn from_wire_id(id: u8) -> Option<Self> {
        Some(match id {
            0 => CipherSuite::Paper,
            1 => CipherSuite::FastDes,
            2 => CipherSuite::AeadChaPoly,
            _ => return None,
        })
    }

    /// Stable label used in counters, bench reports and logs.
    pub fn name(self) -> &'static str {
        match self {
            CipherSuite::Paper => "paper",
            CipherSuite::FastDes => "fast_des",
            CipherSuite::AeadChaPoly => "aead_chacha_poly",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wire_id_roundtrip() {
        for suite in CipherSuite::ALL {
            assert_eq!(CipherSuite::from_wire_id(suite.wire_id()), Some(suite));
        }
        assert_eq!(CipherSuite::from_wire_id(3), None);
        assert_eq!(CipherSuite::from_wire_id(255), None);
    }

    #[test]
    fn paper_is_wire_zero_and_default() {
        // Bit-identical compatibility hinges on Paper == 0 == the old
        // reserved byte.
        assert_eq!(CipherSuite::Paper.wire_id(), 0);
        assert_eq!(CipherSuite::default(), CipherSuite::Paper);
    }

    #[test]
    fn names_are_unique() {
        let names: Vec<_> = CipherSuite::ALL.iter().map(|s| s.name()).collect();
        for (i, a) in names.iter().enumerate() {
            for b in &names[i + 1..] {
                assert_ne!(a, b);
            }
        }
    }
}
