//! Keyed message authentication codes.
//!
//! The paper defines the FBS MAC as `HMAC(K_f | confounder | timestamp |
//! payload)` where `HMAC` is "some one-way cryptographic hash function"
//! (§5.2) — i.e. a *prefix-keyed hash*, the 1997 idiom (keyed MD5, §7.2).
//! This module provides:
//!
//! * [`keyed_digest`] — the paper's exact prefix-key construction;
//! * [`hmac_md5`] / [`hmac_sha1`] — RFC 2104 HMAC, offered as the
//!   modern-construction ablation (prefix-keyed MD5 is vulnerable to
//!   length-extension; FBS's fixed-length header fields mitigate but do not
//!   eliminate this, and the algorithm-ID field lets deployments upgrade);
//! * [`MacAlgorithm`] — the algorithm-identification selector (§5.2).

use crate::chacha::Poly1305;
use crate::md5::{self, Md5};
use crate::sha1::{self, Sha1};

/// Maximum MAC output size across supported algorithms.
pub const MAX_MAC_SIZE: usize = 20;

/// MAC algorithm selector for the FBS header's algorithm-ID field.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum MacAlgorithm {
    /// Prefix-keyed MD5 (the paper's implementation choice): 16 bytes.
    KeyedMd5,
    /// Prefix-keyed SHA-1 ("SHS" in the paper): 20 bytes, truncatable.
    KeyedSha1,
    /// RFC 2104 HMAC-MD5: 16 bytes.
    HmacMd5,
    /// RFC 2104 HMAC-SHA1: 20 bytes.
    HmacSha1,
    /// Poly1305 one-time authenticator (RFC 8439): 16 bytes. The key is a
    /// 32-byte *one-time* `r || s` pair — the AEAD suite derives a fresh one
    /// per datagram from ChaCha20 keystream block 0; it is never keyed with
    /// the long-lived flow key directly.
    Poly1305,
}

impl MacAlgorithm {
    /// Output length in bytes before truncation.
    pub fn output_len(self) -> usize {
        match self {
            MacAlgorithm::KeyedMd5 | MacAlgorithm::HmacMd5 | MacAlgorithm::Poly1305 => 16,
            MacAlgorithm::KeyedSha1 | MacAlgorithm::HmacSha1 => 20,
        }
    }

    /// Wire identifier for the algorithm-ID header field.
    pub fn wire_id(self) -> u8 {
        match self {
            MacAlgorithm::KeyedMd5 => 0,
            MacAlgorithm::KeyedSha1 => 1,
            MacAlgorithm::HmacMd5 => 2,
            MacAlgorithm::HmacSha1 => 3,
            MacAlgorithm::Poly1305 => 4,
        }
    }

    /// Inverse of [`wire_id`](Self::wire_id).
    pub fn from_wire_id(id: u8) -> Option<Self> {
        Some(match id {
            0 => MacAlgorithm::KeyedMd5,
            1 => MacAlgorithm::KeyedSha1,
            2 => MacAlgorithm::HmacMd5,
            3 => MacAlgorithm::HmacSha1,
            4 => MacAlgorithm::Poly1305,
            _ => return None,
        })
    }

    /// Compute the MAC over `parts` (logically concatenated) under `key`.
    pub fn compute(self, key: &[u8], parts: &[&[u8]]) -> Vec<u8> {
        match self {
            MacAlgorithm::KeyedMd5 => {
                let mut ctx = Md5::new();
                ctx.update(key);
                for p in parts {
                    ctx.update(p);
                }
                ctx.finalize().to_vec()
            }
            MacAlgorithm::KeyedSha1 => {
                let mut ctx = Sha1::new();
                ctx.update(key);
                for p in parts {
                    ctx.update(p);
                }
                ctx.finalize().to_vec()
            }
            MacAlgorithm::HmacMd5 => hmac_md5_parts(key, parts).to_vec(),
            MacAlgorithm::HmacSha1 => hmac_sha1_parts(key, parts).to_vec(),
            MacAlgorithm::Poly1305 => {
                let mut ctx = self.begin(key);
                for p in parts {
                    ctx.update(p);
                }
                ctx.finalize()
            }
        }
    }
}

/// An incremental MAC computation.
///
/// §5.3 observes that MAC computation "requires touching all the data in
/// the datagram" and that an efficient implementation should combine all
/// data-touching operations — MAC + encryption — into a single pass. The
/// streaming context makes that single-pass loop possible: the protocol
/// layer interleaves `update` calls with cipher-block processing.
///
/// `Clone` lets a flow key cache a context that has already absorbed the
/// key prefix: sealing a datagram then clones the cached state instead of
/// re-absorbing the key, skipping one compression-function invocation per
/// datagram for the prefix-keyed algorithms.
#[derive(Clone)]
pub enum MacContext {
    /// Prefix-keyed MD5 state.
    KeyedMd5(Md5),
    /// Prefix-keyed SHA-1 state.
    KeyedSha1(Sha1),
    /// HMAC-MD5: inner hash state + prepared key block for the outer pass.
    HmacMd5 {
        /// Inner hash, already primed with `key ⊕ ipad`.
        inner: Md5,
        /// Padded key block.
        key_block: [u8; 64],
    },
    /// HMAC-SHA1: inner hash state + prepared key block for the outer pass.
    HmacSha1 {
        /// Inner hash, already primed with `key ⊕ ipad`.
        inner: Sha1,
        /// Padded key block.
        key_block: [u8; 64],
    },
    /// Poly1305 one-time authenticator state.
    Poly1305(Poly1305),
}

impl MacContext {
    /// Absorb message bytes.
    pub fn update(&mut self, data: &[u8]) {
        match self {
            MacContext::KeyedMd5(ctx) => ctx.update(data),
            MacContext::KeyedSha1(ctx) => ctx.update(data),
            MacContext::HmacMd5 { inner, .. } => inner.update(data),
            MacContext::HmacSha1 { inner, .. } => inner.update(data),
            MacContext::Poly1305(ctx) => ctx.update(data),
        }
    }

    /// Finish and return the MAC bytes.
    pub fn finalize(self) -> Vec<u8> {
        let mut out = [0u8; MAX_MAC_SIZE];
        let len = self.finalize_into(&mut out);
        out[..len].to_vec()
    }

    /// Finish, writing the MAC into `out` and returning its length — the
    /// zero-copy fast path: no digest temporary is heap-allocated.
    pub fn finalize_into(self, out: &mut [u8; MAX_MAC_SIZE]) -> usize {
        match self {
            MacContext::KeyedMd5(ctx) => {
                out[..16].copy_from_slice(&ctx.finalize());
                16
            }
            MacContext::KeyedSha1(ctx) => {
                out[..20].copy_from_slice(&ctx.finalize());
                20
            }
            MacContext::HmacMd5 { inner, key_block } => {
                let inner_digest = inner.finalize();
                let mut outer = Md5::new();
                outer.update(&xor_block(&key_block, 0x5c));
                outer.update(&inner_digest);
                out[..16].copy_from_slice(&outer.finalize());
                16
            }
            MacContext::HmacSha1 { inner, key_block } => {
                let inner_digest = inner.finalize();
                let mut outer = Sha1::new();
                outer.update(&xor_block(&key_block, 0x5c));
                outer.update(&inner_digest);
                out[..20].copy_from_slice(&outer.finalize());
                20
            }
            MacContext::Poly1305(ctx) => {
                out[..16].copy_from_slice(&ctx.finalize());
                16
            }
        }
    }
}

/// XOR an HMAC key block with the ipad/opad byte on the stack.
fn xor_block(block: &[u8; HMAC_BLOCK], pad: u8) -> [u8; HMAC_BLOCK] {
    let mut out = *block;
    for b in &mut out {
        *b ^= pad;
    }
    out
}

impl MacAlgorithm {
    /// Begin an incremental MAC computation keyed by `key`.
    pub fn begin(self, key: &[u8]) -> MacContext {
        match self {
            MacAlgorithm::KeyedMd5 => {
                let mut ctx = Md5::new();
                ctx.update(key);
                MacContext::KeyedMd5(ctx)
            }
            MacAlgorithm::KeyedSha1 => {
                let mut ctx = Sha1::new();
                ctx.update(key);
                MacContext::KeyedSha1(ctx)
            }
            MacAlgorithm::HmacMd5 => {
                let mut k = [0u8; HMAC_BLOCK];
                if key.len() > HMAC_BLOCK {
                    k[..16].copy_from_slice(&md5::md5(key));
                } else {
                    k[..key.len()].copy_from_slice(key);
                }
                let mut inner = Md5::new();
                inner.update(&xor_block(&k, 0x36));
                MacContext::HmacMd5 {
                    inner,
                    key_block: k,
                }
            }
            MacAlgorithm::HmacSha1 => {
                let mut k = [0u8; HMAC_BLOCK];
                if key.len() > HMAC_BLOCK {
                    k[..20].copy_from_slice(&sha1::sha1(key));
                } else {
                    k[..key.len()].copy_from_slice(key);
                }
                let mut inner = Sha1::new();
                inner.update(&xor_block(&k, 0x36));
                MacContext::HmacSha1 {
                    inner,
                    key_block: k,
                }
            }
            MacAlgorithm::Poly1305 => {
                // The one-time key is exactly 32 bytes; shorter keys are
                // zero-padded (deterministic, but callers always pass the
                // full `r || s` pair), longer keys are truncated.
                let mut otk = [0u8; 32];
                let n = key.len().min(32);
                otk[..n].copy_from_slice(&key[..n]);
                MacContext::Poly1305(Poly1305::new(&otk))
            }
        }
    }
}

/// The paper's MAC: prefix-keyed hash of `key | parts...` using MD5.
pub fn keyed_digest(key: &[u8], parts: &[&[u8]]) -> [u8; 16] {
    let mut ctx = Md5::new();
    ctx.update(key);
    for p in parts {
        ctx.update(p);
    }
    ctx.finalize()
}

const HMAC_BLOCK: usize = 64;

fn hmac_md5_parts(key: &[u8], parts: &[&[u8]]) -> [u8; 16] {
    let mut k = [0u8; HMAC_BLOCK];
    if key.len() > HMAC_BLOCK {
        k[..16].copy_from_slice(&md5::md5(key));
    } else {
        k[..key.len()].copy_from_slice(key);
    }
    let mut inner = Md5::new();
    inner.update(&xor_block(&k, 0x36));
    for p in parts {
        inner.update(p);
    }
    let inner_digest = inner.finalize();
    let mut outer = Md5::new();
    outer.update(&xor_block(&k, 0x5c));
    outer.update(&inner_digest);
    outer.finalize()
}

fn hmac_sha1_parts(key: &[u8], parts: &[&[u8]]) -> [u8; 20] {
    let mut k = [0u8; HMAC_BLOCK];
    if key.len() > HMAC_BLOCK {
        k[..20].copy_from_slice(&sha1::sha1(key));
    } else {
        k[..key.len()].copy_from_slice(key);
    }
    let mut inner = Sha1::new();
    inner.update(&xor_block(&k, 0x36));
    for p in parts {
        inner.update(p);
    }
    let inner_digest = inner.finalize();
    let mut outer = Sha1::new();
    outer.update(&xor_block(&k, 0x5c));
    outer.update(&inner_digest);
    outer.finalize()
}

/// RFC 2104 HMAC-MD5 of a single message.
pub fn hmac_md5(key: &[u8], msg: &[u8]) -> [u8; 16] {
    hmac_md5_parts(key, &[msg])
}

/// RFC 2104 HMAC-SHA1 of a single message.
pub fn hmac_sha1(key: &[u8], msg: &[u8]) -> [u8; 20] {
    hmac_sha1_parts(key, &[msg])
}

/// Constant-time MAC comparison: prevents a receiver-side timing oracle on
/// MAC verification (R8 of Fig. 4).
pub fn mac_eq(a: &[u8], b: &[u8]) -> bool {
    if a.len() != b.len() {
        return false;
    }
    let mut diff = 0u8;
    for (x, y) in a.iter().zip(b) {
        diff |= x ^ y;
    }
    diff == 0
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(d: &[u8]) -> String {
        d.iter().map(|b| format!("{b:02x}")).collect()
    }

    /// RFC 2202 HMAC-MD5 test vectors.
    #[test]
    fn rfc2202_hmac_md5() {
        assert_eq!(
            hex(&hmac_md5(&[0x0b; 16], b"Hi There")),
            "9294727a3638bb1c13f48ef8158bfc9d"
        );
        assert_eq!(
            hex(&hmac_md5(b"Jefe", b"what do ya want for nothing?")),
            "750c783e6ab0b503eaa86e310a5db738"
        );
        assert_eq!(
            hex(&hmac_md5(&[0xaa; 16], &[0xdd; 50])),
            "56be34521d144c88dbb8c733f0e8b3f6"
        );
        // 80-byte key exercises the key-hashing branch.
        assert_eq!(
            hex(&hmac_md5(
                &[0xaa; 80],
                b"Test Using Larger Than Block-Size Key - Hash Key First"
            )),
            "6b1ab7fe4bd7bf8f0b62e6ce61b9d0cd"
        );
    }

    /// RFC 2202 HMAC-SHA1 test vectors.
    #[test]
    fn rfc2202_hmac_sha1() {
        assert_eq!(
            hex(&hmac_sha1(&[0x0b; 20], b"Hi There")),
            "b617318655057264e28bc0b6fb378c8ef146be00"
        );
        assert_eq!(
            hex(&hmac_sha1(b"Jefe", b"what do ya want for nothing?")),
            "effcdf6ae5eb2fa2d27416d5f184df9c259a7c79"
        );
    }

    #[test]
    fn keyed_digest_matches_manual_concat() {
        let key = b"flowkey";
        let got = keyed_digest(key, &[b"conf", b"ts", b"payload"]);
        let manual = md5::md5(b"flowkeyconftspayload");
        assert_eq!(got, manual);
    }

    #[test]
    fn parts_split_is_irrelevant() {
        for alg in [
            MacAlgorithm::KeyedMd5,
            MacAlgorithm::KeyedSha1,
            MacAlgorithm::HmacMd5,
            MacAlgorithm::HmacSha1,
        ] {
            let a = alg.compute(b"k", &[b"ab", b"cd"]);
            let b = alg.compute(b"k", &[b"abcd"]);
            let c = alg.compute(b"k", &[b"a", b"b", b"c", b"d"]);
            assert_eq!(a, b, "{alg:?}");
            assert_eq!(a, c, "{alg:?}");
        }
    }

    #[test]
    fn key_separates_macs() {
        let m1 = keyed_digest(b"key1", &[b"data"]);
        let m2 = keyed_digest(b"key2", &[b"data"]);
        assert_ne!(m1, m2);
    }

    #[test]
    fn wire_id_roundtrip() {
        for alg in [
            MacAlgorithm::KeyedMd5,
            MacAlgorithm::KeyedSha1,
            MacAlgorithm::HmacMd5,
            MacAlgorithm::HmacSha1,
            MacAlgorithm::Poly1305,
        ] {
            assert_eq!(MacAlgorithm::from_wire_id(alg.wire_id()), Some(alg));
            assert_eq!(alg.compute(b"k", &[b"x"]).len(), alg.output_len());
        }
        assert_eq!(MacAlgorithm::from_wire_id(200), None);
    }

    #[test]
    fn streaming_context_matches_oneshot_compute() {
        for alg in [
            MacAlgorithm::KeyedMd5,
            MacAlgorithm::KeyedSha1,
            MacAlgorithm::HmacMd5,
            MacAlgorithm::HmacSha1,
            MacAlgorithm::Poly1305,
        ] {
            let oneshot = alg.compute(b"the key", &[b"hello ", b"world"]);
            let mut ctx = alg.begin(b"the key");
            ctx.update(b"hel");
            ctx.update(b"lo world");
            assert_eq!(ctx.finalize(), oneshot, "{alg:?}");
        }
    }

    #[test]
    fn streaming_hmac_with_long_key() {
        let key = [0x77u8; 100]; // > block size: exercises key hashing
        let oneshot = MacAlgorithm::HmacMd5.compute(&key, &[b"msg"]);
        let mut ctx = MacAlgorithm::HmacMd5.begin(&key);
        ctx.update(b"msg");
        assert_eq!(ctx.finalize(), oneshot);
    }

    /// The cached key-prefix pattern: cloning a context that has absorbed
    /// only the key, then feeding each message into the clone, matches a
    /// fresh `begin` per message.
    #[test]
    fn cloned_prefix_context_matches_fresh() {
        for alg in [
            MacAlgorithm::KeyedMd5,
            MacAlgorithm::KeyedSha1,
            MacAlgorithm::HmacMd5,
            MacAlgorithm::HmacSha1,
        ] {
            let cached = alg.begin(b"flow key");
            for msg in [&b"first datagram"[..], b"second", b""] {
                let mut from_clone = cached.clone();
                from_clone.update(msg);
                let mut fresh = alg.begin(b"flow key");
                fresh.update(msg);
                assert_eq!(from_clone.finalize(), fresh.finalize(), "{alg:?}");
            }
        }
    }

    #[test]
    fn mac_eq_behaviour() {
        assert!(mac_eq(b"same", b"same"));
        assert!(!mac_eq(b"same", b"Same"));
        assert!(!mac_eq(b"short", b"longer"));
        assert!(mac_eq(b"", b""));
    }
}
