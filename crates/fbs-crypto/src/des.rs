//! DES block cipher (FIPS 46) with the four FIPS 81 modes of operation.
//!
//! The paper's IP mapping uses DES-CBC for data confidentiality (§7.2), with
//! the per-datagram *confounder* duplicated to 64 bits and used as the IV
//! (§5.2). The ECB-mode confounder-XOR trick from §5.2 is provided as well.
//!
//! **Security note:** DES has a 56-bit key and is thoroughly broken by modern
//! standards. It is implemented here only because the paper specifies it;
//! see the crate-level disclaimer.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;

/// DES block size in bytes.
pub const BLOCK_SIZE: usize = 8;

/// Process-wide count of DES key schedules built (one per [`Des::new`]).
///
/// The flow-key caches exist so that subkey expansion runs once per flow
/// rather than once per datagram; this counter lets tests assert that the
/// amortisation actually happens on the hot path.
static KEY_SCHEDULES: AtomicU64 = AtomicU64::new(0);

/// Number of DES key schedules built since process start. Monotonic and
/// global: tests that assert on deltas should run in their own process
/// (a dedicated integration-test binary) to avoid cross-test noise.
pub fn key_schedule_count() -> u64 {
    KEY_SCHEDULES.load(Ordering::Relaxed)
}

// --- FIPS 46 permutation tables (1-based bit positions, MSB = bit 1) ------

/// Initial permutation IP.
const IP: [u8; 64] = [
    58, 50, 42, 34, 26, 18, 10, 2, 60, 52, 44, 36, 28, 20, 12, 4, 62, 54, 46, 38, 30, 22, 14, 6,
    64, 56, 48, 40, 32, 24, 16, 8, 57, 49, 41, 33, 25, 17, 9, 1, 59, 51, 43, 35, 27, 19, 11, 3, 61,
    53, 45, 37, 29, 21, 13, 5, 63, 55, 47, 39, 31, 23, 15, 7,
];

/// Final permutation IP⁻¹.
const FP: [u8; 64] = [
    40, 8, 48, 16, 56, 24, 64, 32, 39, 7, 47, 15, 55, 23, 63, 31, 38, 6, 46, 14, 54, 22, 62, 30,
    37, 5, 45, 13, 53, 21, 61, 29, 36, 4, 44, 12, 52, 20, 60, 28, 35, 3, 43, 11, 51, 19, 59, 27,
    34, 2, 42, 10, 50, 18, 58, 26, 33, 1, 41, 9, 49, 17, 57, 25,
];

/// Expansion function E (32 → 48 bits). The fast round function inlines E
/// as a shift trick; this table remains the specification it is tested
/// against.
#[cfg_attr(not(test), allow(dead_code))]
const E: [u8; 48] = [
    32, 1, 2, 3, 4, 5, 4, 5, 6, 7, 8, 9, 8, 9, 10, 11, 12, 13, 12, 13, 14, 15, 16, 17, 16, 17, 18,
    19, 20, 21, 20, 21, 22, 23, 24, 25, 24, 25, 26, 27, 28, 29, 28, 29, 30, 31, 32, 1,
];

/// Permutation P applied to the S-box output.
const P: [u8; 32] = [
    16, 7, 20, 21, 29, 12, 28, 17, 1, 15, 23, 26, 5, 18, 31, 10, 2, 8, 24, 14, 32, 27, 3, 9, 19,
    13, 30, 6, 22, 11, 4, 25,
];

/// The eight S-boxes.
const SBOX: [[u8; 64]; 8] = [
    [
        14, 4, 13, 1, 2, 15, 11, 8, 3, 10, 6, 12, 5, 9, 0, 7, 0, 15, 7, 4, 14, 2, 13, 1, 10, 6, 12,
        11, 9, 5, 3, 8, 4, 1, 14, 8, 13, 6, 2, 11, 15, 12, 9, 7, 3, 10, 5, 0, 15, 12, 8, 2, 4, 9,
        1, 7, 5, 11, 3, 14, 10, 0, 6, 13,
    ],
    [
        15, 1, 8, 14, 6, 11, 3, 4, 9, 7, 2, 13, 12, 0, 5, 10, 3, 13, 4, 7, 15, 2, 8, 14, 12, 0, 1,
        10, 6, 9, 11, 5, 0, 14, 7, 11, 10, 4, 13, 1, 5, 8, 12, 6, 9, 3, 2, 15, 13, 8, 10, 1, 3, 15,
        4, 2, 11, 6, 7, 12, 0, 5, 14, 9,
    ],
    [
        10, 0, 9, 14, 6, 3, 15, 5, 1, 13, 12, 7, 11, 4, 2, 8, 13, 7, 0, 9, 3, 4, 6, 10, 2, 8, 5,
        14, 12, 11, 15, 1, 13, 6, 4, 9, 8, 15, 3, 0, 11, 1, 2, 12, 5, 10, 14, 7, 1, 10, 13, 0, 6,
        9, 8, 7, 4, 15, 14, 3, 11, 5, 2, 12,
    ],
    [
        7, 13, 14, 3, 0, 6, 9, 10, 1, 2, 8, 5, 11, 12, 4, 15, 13, 8, 11, 5, 6, 15, 0, 3, 4, 7, 2,
        12, 1, 10, 14, 9, 10, 6, 9, 0, 12, 11, 7, 13, 15, 1, 3, 14, 5, 2, 8, 4, 3, 15, 0, 6, 10, 1,
        13, 8, 9, 4, 5, 11, 12, 7, 2, 14,
    ],
    [
        2, 12, 4, 1, 7, 10, 11, 6, 8, 5, 3, 15, 13, 0, 14, 9, 14, 11, 2, 12, 4, 7, 13, 1, 5, 0, 15,
        10, 3, 9, 8, 6, 4, 2, 1, 11, 10, 13, 7, 8, 15, 9, 12, 5, 6, 3, 0, 14, 11, 8, 12, 7, 1, 14,
        2, 13, 6, 15, 0, 9, 10, 4, 5, 3,
    ],
    [
        12, 1, 10, 15, 9, 2, 6, 8, 0, 13, 3, 4, 14, 7, 5, 11, 10, 15, 4, 2, 7, 12, 9, 5, 6, 1, 13,
        14, 0, 11, 3, 8, 9, 14, 15, 5, 2, 8, 12, 3, 7, 0, 4, 10, 1, 13, 11, 6, 4, 3, 2, 12, 9, 5,
        15, 10, 11, 14, 1, 7, 6, 0, 8, 13,
    ],
    [
        4, 11, 2, 14, 15, 0, 8, 13, 3, 12, 9, 7, 5, 10, 6, 1, 13, 0, 11, 7, 4, 9, 1, 10, 14, 3, 5,
        12, 2, 15, 8, 6, 1, 4, 11, 13, 12, 3, 7, 14, 10, 15, 6, 8, 0, 5, 9, 2, 6, 11, 13, 8, 1, 4,
        10, 7, 9, 5, 0, 15, 14, 2, 3, 12,
    ],
    [
        13, 2, 8, 4, 6, 15, 11, 1, 10, 9, 3, 14, 5, 0, 12, 7, 1, 15, 13, 8, 10, 3, 7, 4, 12, 5, 6,
        11, 0, 14, 9, 2, 7, 11, 4, 1, 9, 12, 14, 2, 0, 6, 10, 13, 15, 3, 5, 8, 2, 1, 14, 7, 4, 10,
        8, 13, 15, 12, 9, 0, 3, 5, 6, 11,
    ],
];

/// Permuted choice 1 (64 → 56 bits, drops parity bits).
const PC1: [u8; 56] = [
    57, 49, 41, 33, 25, 17, 9, 1, 58, 50, 42, 34, 26, 18, 10, 2, 59, 51, 43, 35, 27, 19, 11, 3, 60,
    52, 44, 36, 63, 55, 47, 39, 31, 23, 15, 7, 62, 54, 46, 38, 30, 22, 14, 6, 61, 53, 45, 37, 29,
    21, 13, 5, 28, 20, 12, 4,
];

/// Permuted choice 2 (56 → 48 bits).
const PC2: [u8; 48] = [
    14, 17, 11, 24, 1, 5, 3, 28, 15, 6, 21, 10, 23, 19, 12, 4, 26, 8, 16, 7, 27, 20, 13, 2, 41, 52,
    31, 37, 47, 55, 30, 40, 51, 45, 33, 48, 44, 49, 39, 56, 34, 53, 46, 42, 50, 36, 29, 32,
];

/// Per-round left-rotation amounts for the key schedule.
const SHIFTS: [u8; 16] = [1, 1, 2, 2, 2, 2, 2, 2, 1, 2, 2, 2, 2, 2, 2, 1];

/// Apply a 1-based-source bit permutation of `src` (an `in_bits`-bit value
/// right-aligned in a u64) producing `table.len()` output bits.
fn permute(src: u64, in_bits: u32, table: &[u8]) -> u64 {
    let mut out = 0u64;
    for &pos in table {
        out <<= 1;
        out |= (src >> (in_bits - pos as u32)) & 1;
    }
    out
}

// --- Table-driven fast core ------------------------------------------------
//
// The bit-at-a-time `permute` above is the specification; the round function
// and the initial/final permutations below are rebuilt as table lookups
// *generated from that specification*, so the fast path is bit-identical by
// construction and pinned by the FIPS/NBS known-answer tests.

/// Merged S-box + P permutation tables: `SP[i][c]` is `P(SBOX[i][c])` with the
/// S-box output placed in its 4-bit lane before permutation, so one lookup per
/// S-box replaces the row/column decode and the 32-bit `P` permutation.
fn sp_tables() -> &'static [[u32; 64]; 8] {
    static SP: OnceLock<[[u32; 64]; 8]> = OnceLock::new();
    SP.get_or_init(|| {
        let mut sp = [[0u32; 64]; 8];
        for (i, sbox) in SBOX.iter().enumerate() {
            for c in 0..64u64 {
                // Row = outer bits, column = inner four bits (FIPS 46).
                let row = ((c & 0x20) >> 4) | (c & 1);
                let col = (c >> 1) & 0xf;
                let val = sbox[(row * 16 + col) as usize] as u64;
                sp[i][c as usize] = permute(val << (28 - 4 * i), 32, &P) as u32;
            }
        }
        sp
    })
}

/// Build a byte-indexed lookup table for a 64→64 bit permutation: entry
/// `[pos][val]` is the permuted contribution of byte `pos` (MSB first)
/// holding value `val`. Bit permutations are XOR-linear, so the permutation
/// of a block is the XOR of its eight byte contributions.
fn byte_perm_table(table: &[u8; 64]) -> [[u64; 256]; 8] {
    let mut t = [[0u64; 256]; 8];
    for (pos, row) in t.iter_mut().enumerate() {
        for (val, out) in row.iter_mut().enumerate() {
            *out = permute((val as u64) << (56 - 8 * pos), 64, table);
        }
    }
    t
}

fn ip_tables() -> &'static [[u64; 256]; 8] {
    static T: OnceLock<[[u64; 256]; 8]> = OnceLock::new();
    T.get_or_init(|| byte_perm_table(&IP))
}

fn fp_tables() -> &'static [[u64; 256]; 8] {
    static T: OnceLock<[[u64; 256]; 8]> = OnceLock::new();
    T.get_or_init(|| byte_perm_table(&FP))
}

fn apply_byte_perm(tab: &[[u64; 256]; 8], src: u64) -> u64 {
    src.to_be_bytes()
        .iter()
        .enumerate()
        .fold(0u64, |acc, (pos, &val)| acc ^ tab[pos][val as usize])
}

/// A DES key schedule: 16 48-bit subkeys.
///
/// ```
/// use fbs_crypto::des::{Des, Mode, encrypt, decrypt};
/// let key = Des::new(b"8bytekey");
/// let confounder_iv = 0xDEADBEEF_DEADBEEF; // duplicated 32-bit confounder
/// let ct = encrypt(&key, confounder_iv, Mode::Cbc, b"attack at dawn");
/// let pt = decrypt(&key, confounder_iv, Mode::Cbc, &ct, b"attack at dawn".len());
/// assert_eq!(pt, b"attack at dawn");
/// ```
#[derive(Clone)]
pub struct Des {
    subkeys: [u64; 16],
}

impl Des {
    /// Build the key schedule from an 8-byte key (parity bits ignored).
    pub fn new(key: &[u8; 8]) -> Self {
        KEY_SCHEDULES.fetch_add(1, Ordering::Relaxed);
        let key64 = u64::from_be_bytes(*key);
        let pc1 = permute(key64, 64, &PC1); // 56 bits
        let mut c = (pc1 >> 28) & 0x0fff_ffff;
        let mut d = pc1 & 0x0fff_ffff;
        let mut subkeys = [0u64; 16];
        for (round, &s) in SHIFTS.iter().enumerate() {
            c = ((c << s) | (c >> (28 - s as u32))) & 0x0fff_ffff;
            d = ((d << s) | (d >> (28 - s as u32))) & 0x0fff_ffff;
            subkeys[round] = permute((c << 28) | d, 56, &PC2);
        }
        Des { subkeys }
    }

    /// The Feistel function f(R, K) over the merged SP tables.
    fn feistel(r: u32, subkey: u64, sp: &[[u32; 64]; 8]) -> u32 {
        // E-expansion without a table: lay out bit 32 | bits 1..=32 | bit 1
        // as a 34-bit value; each 6-bit input chunk i then sits at bit
        // offset 28 - 4i, overlapping its neighbours exactly as E specifies.
        let t = (((r & 1) as u64) << 33) | ((r as u64) << 1) | ((r >> 31) as u64);
        let mut f = 0u32;
        for (i, lane) in sp.iter().enumerate() {
            let six = ((t >> (28 - 4 * i)) ^ (subkey >> (42 - 6 * i))) & 0x3f;
            f ^= lane[six as usize];
        }
        f
    }

    /// The Feistel function computed straight from the FIPS tables — the
    /// specification the SP-table path must match bit for bit.
    #[cfg(test)]
    fn feistel_reference(r: u32, subkey: u64) -> u32 {
        let expanded = permute(r as u64, 32, &E) ^ subkey; // 48 bits
        let mut sboxed = 0u32;
        for (i, sbox) in SBOX.iter().enumerate() {
            let chunk = ((expanded >> (42 - 6 * i)) & 0x3f) as u8;
            // Row = outer bits, column = inner four bits.
            let row = ((chunk & 0x20) >> 4) | (chunk & 1);
            let col = (chunk >> 1) & 0xf;
            sboxed = (sboxed << 4) | sbox[(row * 16 + col) as usize] as u32;
        }
        permute(sboxed as u64, 32, &P) as u32
    }

    fn crypt_block(&self, block: u64, decrypt: bool) -> u64 {
        let sp = sp_tables();
        let permuted = apply_byte_perm(ip_tables(), block);
        let mut l = (permuted >> 32) as u32;
        let mut r = permuted as u32;
        for round in 0..16 {
            let k = if decrypt {
                self.subkeys[15 - round]
            } else {
                self.subkeys[round]
            };
            let next_r = l ^ Self::feistel(r, k, sp);
            l = r;
            r = next_r;
        }
        // Note the final swap: output is R16 || L16.
        apply_byte_perm(fp_tables(), ((r as u64) << 32) | l as u64)
    }

    /// Encrypt a single 8-byte block in place.
    pub fn encrypt_block(&self, block: &mut [u8; 8]) {
        let out = self.crypt_block(u64::from_be_bytes(*block), false);
        *block = out.to_be_bytes();
    }

    /// Decrypt a single 8-byte block in place.
    pub fn decrypt_block(&self, block: &mut [u8; 8]) {
        let out = self.crypt_block(u64::from_be_bytes(*block), true);
        *block = out.to_be_bytes();
    }

    /// Encrypt four independent blocks with the 16 rounds interleaved
    /// ("word-sliced" DES). A single DES block is a 16-deep serial
    /// dependency chain — each Feistel round waits on the previous one.
    /// Four independent lanes advanced round-by-round give the CPU four
    /// chains to overlap, so table loads and XORs from different lanes fill
    /// the pipeline bubbles.
    pub fn encrypt_blocks4(&self, blocks: &mut [u64; 4]) {
        let sp = sp_tables();
        let ipt = ip_tables();
        let mut l = [0u32; 4];
        let mut r = [0u32; 4];
        for i in 0..4 {
            let p = apply_byte_perm(ipt, blocks[i]);
            l[i] = (p >> 32) as u32;
            r[i] = p as u32;
        }
        for round in 0..16 {
            let k = self.subkeys[round];
            for i in 0..4 {
                let next_r = l[i] ^ Self::feistel(r[i], k, sp);
                l[i] = r[i];
                r[i] = next_r;
            }
        }
        let fpt = fp_tables();
        for i in 0..4 {
            blocks[i] = apply_byte_perm(fpt, ((r[i] as u64) << 32) | l[i] as u64);
        }
    }

    /// Pre-split the 16 subkeys for the two-word Feistel form used by
    /// the interleaved keystream core. For S-box `i` the E-expansion
    /// window of `R` is `R` rotated right by `27 - 4i` (mod 32), so the
    /// even boxes (0,2,4,6) all read 6-bit fields at byte strides of
    /// `R >>> 3` and the odd boxes (1,3,5,7) of `R <<< 1`. Packing each
    /// round's key chunks into two matching u32s (`[even, odd]`, chunk
    /// for box 6/7 in the low byte up to box 0/1 in the top) lets the
    /// round body XOR the whole key in two 32-bit ops instead of eight
    /// 64-bit shifts, and skip building the 34-bit expansion entirely.
    pub fn subkey_chunks(&self) -> [[u32; 2]; 16] {
        let mut skc = [[0u32; 2]; 16];
        for (round, &k) in self.subkeys.iter().enumerate() {
            let chunk = |i: usize| ((k >> (42 - 6 * i)) & 0x3f) as u32;
            skc[round] = [
                chunk(6) | chunk(4) << 8 | chunk(2) << 16 | chunk(0) << 24,
                chunk(7) | chunk(5) << 8 | chunk(3) << 16 | chunk(1) << 24,
            ];
        }
        skc
    }

    /// Eight-lane variant of [`Des::encrypt_blocks4`] — the fast-profile
    /// CTR keystream core. Each Feistel evaluation is eight dependent
    /// table loads, so four lanes leave load ports idle on wide
    /// out-of-order cores; eight independent chains keep them fed. The
    /// scalar [`Des::crypt_block`] path is deliberately left on the
    /// straightforward form.
    pub fn encrypt_blocks8(&self, blocks: &mut [u64; 8]) {
        Self::encrypt_blocks8_sk(&self.subkey_chunks(), blocks)
    }

    /// [`Des::encrypt_blocks8`] over pre-split subkey chunks (see
    /// [`Des::subkey_chunks`]): the two-word round form. Bit-exact
    /// against the scalar FIPS path (`ctr_matches_scalar_reference`).
    pub fn encrypt_blocks8_sk(skc: &[[u32; 2]; 16], blocks: &mut [u64; 8]) {
        let sp = sp_tables();
        let ipt = ip_tables();
        let mut l = [0u32; 8];
        let mut r = [0u32; 8];
        for i in 0..8 {
            let p = apply_byte_perm(ipt, blocks[i]);
            l[i] = (p >> 32) as u32;
            r[i] = p as u32;
        }
        for &[ke, ko] in skc {
            for lane in 0..8 {
                let r32 = r[lane];
                let u = r32.rotate_right(3) ^ ke;
                let v = r32.rotate_left(1) ^ ko;
                let f = sp[6][(u & 0x3f) as usize]
                    ^ sp[4][((u >> 8) & 0x3f) as usize]
                    ^ sp[2][((u >> 16) & 0x3f) as usize]
                    ^ sp[0][((u >> 24) & 0x3f) as usize]
                    ^ sp[7][(v & 0x3f) as usize]
                    ^ sp[5][((v >> 8) & 0x3f) as usize]
                    ^ sp[3][((v >> 16) & 0x3f) as usize]
                    ^ sp[1][((v >> 24) & 0x3f) as usize];
                let next_r = l[lane] ^ f;
                l[lane] = r32;
                r[lane] = next_r;
            }
        }
        let fpt = fp_tables();
        for i in 0..8 {
            blocks[i] = apply_byte_perm(fpt, ((r[i] as u64) << 32) | l[i] as u64);
        }
    }
}

/// XOR DES-CTR keystream into `data` in place, starting at block index
/// `start_block` of the stream whose counter base is `base`. Keystream
/// block `i` is `E(base + i)` (64-bit wrapping counter); blocks are
/// generated four at a time through [`Des::encrypt_blocks4`]. Encryption
/// and decryption are the same operation, and no padding is needed —
/// which is why the fast profile's wire body length equals the plaintext
/// length.
pub fn ctr_xor_at(key: &Des, base: u64, start_block: u64, data: &mut [u8]) {
    let mut idx = start_block;
    let mut chunks = data.chunks_exact_mut(64);
    let skc = key.subkey_chunks();
    for chunk in &mut chunks {
        let mut ks = [0u64; 8];
        for (lane, k) in ks.iter_mut().enumerate() {
            *k = base.wrapping_add(idx.wrapping_add(lane as u64));
        }
        Des::encrypt_blocks8_sk(&skc, &mut ks);
        for (lane, part) in chunk.chunks_exact_mut(8).enumerate() {
            let word = u64::from_be_bytes(part.try_into().unwrap()) ^ ks[lane];
            part.copy_from_slice(&word.to_be_bytes());
        }
        idx = idx.wrapping_add(8);
    }
    let rem = chunks.into_remainder();
    for part in rem.chunks_mut(8) {
        let mut block = base.wrapping_add(idx).to_be_bytes();
        key.encrypt_block(&mut block);
        for (b, k) in part.iter_mut().zip(block) {
            *b ^= k;
        }
        idx = idx.wrapping_add(1);
    }
}

/// A 64-bit block cipher: the interface the FIPS 81 modes operate over.
/// Implemented by [`Des`] and [`TripleDes`] so every mode and the
/// single-pass MAC+encrypt loop work with either.
pub trait BlockCipher {
    /// Encrypt one 8-byte block in place.
    fn encrypt_block(&self, block: &mut [u8; 8]);
    /// Decrypt one 8-byte block in place.
    fn decrypt_block(&self, block: &mut [u8; 8]);
}

impl BlockCipher for Des {
    fn encrypt_block(&self, block: &mut [u8; 8]) {
        Des::encrypt_block(self, block)
    }
    fn decrypt_block(&self, block: &mut [u8; 8]) {
        Des::decrypt_block(self, block)
    }
}

impl BlockCipher for TripleDes {
    fn encrypt_block(&self, block: &mut [u8; 8]) {
        TripleDes::encrypt_block(self, block)
    }
    fn decrypt_block(&self, block: &mut [u8; 8]) {
        TripleDes::decrypt_block(self, block)
    }
}

/// Triple DES (EDE3): encrypt-decrypt-encrypt under three independent
/// subkeys. CryptoLib shipped 3DES beside DES; FBS's algorithm-ID field
/// lets a deployment select it when single DES's 56-bit key is too weak.
/// Exposes the same block interface as [`Des`], so every FIPS 81 mode and
/// the single-pass MAC+encrypt loop work unchanged.
#[derive(Clone)]
pub struct TripleDes {
    k1: Des,
    k2: Des,
    k3: Des,
}

impl TripleDes {
    /// Build from a 24-byte key (three DES keys, EDE3).
    pub fn new(key: &[u8; 24]) -> Self {
        TripleDes {
            k1: Des::new(key[0..8].try_into().unwrap()),
            k2: Des::new(key[8..16].try_into().unwrap()),
            k3: Des::new(key[16..24].try_into().unwrap()),
        }
    }

    /// Build in two-key (EDE2) form from 16 bytes: K3 = K1.
    pub fn new_ede2(key: &[u8; 16]) -> Self {
        TripleDes {
            k1: Des::new(key[0..8].try_into().unwrap()),
            k2: Des::new(key[8..16].try_into().unwrap()),
            k3: Des::new(key[0..8].try_into().unwrap()),
        }
    }

    /// Encrypt one block: `E_{k3}(D_{k2}(E_{k1}(x)))`.
    pub fn encrypt_block(&self, block: &mut [u8; 8]) {
        self.k1.encrypt_block(block);
        self.k2.decrypt_block(block);
        self.k3.encrypt_block(block);
    }

    /// Decrypt one block: `D_{k1}(E_{k2}(D_{k3}(x)))`.
    pub fn decrypt_block(&self, block: &mut [u8; 8]) {
        self.k3.decrypt_block(block);
        self.k2.encrypt_block(block);
        self.k1.decrypt_block(block);
    }
}

/// The four DES weak keys (self-inverse key schedules) with parity bits
/// set; [`is_weak_key`] checks parity-insensitively.
const WEAK_KEYS: [u64; 4] = [
    0x0101010101010101,
    0xFEFEFEFEFEFEFEFE,
    0xE0E0E0E0F1F1F1F1,
    0x1F1F1F1F0E0E0E0E,
];

/// The twelve semi-weak keys (six pairs whose schedules are mutual
/// inverses), with parity bits set.
const SEMI_WEAK_KEYS: [u64; 12] = [
    0x01FE01FE01FE01FE,
    0xFE01FE01FE01FE01,
    0x1FE01FE00EF10EF1,
    0xE01FE01FF10EF10E,
    0x01E001E001F101F1,
    0xE001E001F101F101,
    0x1FFE1FFE0EFE0EFE,
    0xFE1FFE1FFE0EFE0E,
    0x011F011F010E010E,
    0x1F011F010E010E01,
    0xE0FEE0FEF1FEF1FE,
    0xFEE0FEE0FEF1FEF1,
];

/// True when `key` is one of DES's four weak keys (for which encryption
/// equals decryption) or twelve semi-weak key pair members. Derived flow
/// keys hit these with probability ~2⁻⁵², but a careful implementation
/// checks anyway and rotates the flow (new sfl ⇒ new key) when it happens.
pub fn is_weak_key(key: &[u8; 8]) -> bool {
    // Compare with parity bits masked out (DES ignores the low bit of
    // each key byte).
    let strip = |k: u64| k & 0xFEFE_FEFE_FEFE_FEFE;
    let k = strip(u64::from_be_bytes(*key));
    WEAK_KEYS
        .iter()
        .chain(SEMI_WEAK_KEYS.iter())
        .any(|&w| strip(w) == k)
}

/// DES mode of operation (FIPS 81). The paper's confounder supplies the IV
/// for CBC/CFB/OFB; in ECB mode the confounder is XORed with every plaintext
/// block before encryption (§5.2).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Mode {
    /// Electronic codebook with confounder whitening per §5.2.
    Ecb,
    /// Cipher block chaining (the paper's implementation choice, §7.2).
    Cbc,
    /// 64-bit cipher feedback.
    Cfb,
    /// 64-bit output feedback.
    Ofb,
}

/// Pad `data` to a multiple of 8 bytes with zero bytes. FBS carries the
/// true payload length in the security flow header, so zero padding is
/// unambiguous at this layer.
pub fn zero_pad(data: &[u8]) -> Vec<u8> {
    let mut v = data.to_vec();
    let rem = v.len() % BLOCK_SIZE;
    if rem != 0 {
        v.resize(v.len() + (BLOCK_SIZE - rem), 0);
    }
    v
}

/// Length of `len` bytes of plaintext after zero padding to a block
/// multiple — what [`zero_pad`] would produce, without allocating.
pub fn padded_len(len: usize) -> usize {
    len.div_ceil(BLOCK_SIZE) * BLOCK_SIZE
}

/// Streaming block encryptor carrying the chaining state of a mode.
///
/// The single-pass MAC+encrypt loop of §5.3 needs to process one block at a
/// time; this and [`BlockDecryptor`] expose exactly that, and the
/// whole-buffer [`encrypt`]/[`decrypt`] functions are built on them.
pub struct BlockEncryptor<'a, C: BlockCipher = Des> {
    des: &'a C,
    mode: Mode,
    /// CBC: previous ciphertext. CFB: previous ciphertext. OFB: keystream
    /// feedback. ECB: the constant whitening confounder.
    state: u64,
}

impl<'a, C: BlockCipher> BlockEncryptor<'a, C> {
    /// Begin encrypting with `iv` (the duplicated confounder).
    pub fn new(des: &'a C, mode: Mode, iv: u64) -> Self {
        BlockEncryptor {
            des,
            mode,
            state: iv,
        }
    }

    /// Encrypt one block in place.
    pub fn process(&mut self, block: &mut [u8; 8]) {
        match self.mode {
            Mode::Ecb => {
                *block = (u64::from_be_bytes(*block) ^ self.state).to_be_bytes();
                self.des.encrypt_block(block);
            }
            Mode::Cbc => {
                *block = (u64::from_be_bytes(*block) ^ self.state).to_be_bytes();
                self.des.encrypt_block(block);
                self.state = u64::from_be_bytes(*block);
            }
            Mode::Cfb => {
                let mut keystream = self.state.to_be_bytes();
                self.des.encrypt_block(&mut keystream);
                let c = u64::from_be_bytes(*block) ^ u64::from_be_bytes(keystream);
                *block = c.to_be_bytes();
                self.state = c;
            }
            Mode::Ofb => {
                let mut keystream = self.state.to_be_bytes();
                self.des.encrypt_block(&mut keystream);
                self.state = u64::from_be_bytes(keystream);
                let c = u64::from_be_bytes(*block) ^ self.state;
                *block = c.to_be_bytes();
            }
        }
    }
}

/// Streaming block decryptor; see [`BlockEncryptor`].
pub struct BlockDecryptor<'a, C: BlockCipher = Des> {
    des: &'a C,
    mode: Mode,
    state: u64,
}

impl<'a, C: BlockCipher> BlockDecryptor<'a, C> {
    /// Begin decrypting with `iv` (the duplicated confounder).
    pub fn new(des: &'a C, mode: Mode, iv: u64) -> Self {
        BlockDecryptor {
            des,
            mode,
            state: iv,
        }
    }

    /// Decrypt one block in place.
    pub fn process(&mut self, block: &mut [u8; 8]) {
        match self.mode {
            Mode::Ecb => {
                self.des.decrypt_block(block);
                *block = (u64::from_be_bytes(*block) ^ self.state).to_be_bytes();
            }
            Mode::Cbc => {
                let this_cipher = u64::from_be_bytes(*block);
                self.des.decrypt_block(block);
                *block = (u64::from_be_bytes(*block) ^ self.state).to_be_bytes();
                self.state = this_cipher;
            }
            Mode::Cfb => {
                let mut keystream = self.state.to_be_bytes();
                self.des.encrypt_block(&mut keystream);
                let this_cipher = u64::from_be_bytes(*block);
                *block = (this_cipher ^ u64::from_be_bytes(keystream)).to_be_bytes();
                self.state = this_cipher;
            }
            Mode::Ofb => {
                let mut keystream = self.state.to_be_bytes();
                self.des.encrypt_block(&mut keystream);
                self.state = u64::from_be_bytes(keystream);
                let c = u64::from_be_bytes(*block) ^ self.state;
                *block = c.to_be_bytes();
            }
        }
    }
}

/// Encrypt a block-multiple buffer in place — the zero-copy fast path.
/// Callers pad with [`zero_pad`]/[`padded_len`] (or write into an already
/// block-sized region) so no ciphertext temporary is allocated.
///
/// # Panics
/// Panics if `data` is not a block multiple.
pub fn encrypt_in_place<C: BlockCipher>(key: &C, iv: u64, mode: Mode, data: &mut [u8]) {
    assert!(
        data.len().is_multiple_of(BLOCK_SIZE),
        "plaintext not a block multiple"
    );
    let mut enc = BlockEncryptor::new(key, mode, iv);
    for chunk in data.chunks_exact_mut(8) {
        enc.process(chunk.try_into().unwrap());
    }
}

/// Decrypt a block-multiple buffer in place; the caller trims padding using
/// the plaintext length carried in the security flow header.
///
/// # Panics
/// Panics if `data` is not a block multiple.
pub fn decrypt_in_place<C: BlockCipher>(key: &C, iv: u64, mode: Mode, data: &mut [u8]) {
    assert!(
        data.len().is_multiple_of(BLOCK_SIZE),
        "ciphertext not a block multiple"
    );
    let mut dec = BlockDecryptor::new(key, mode, iv);
    for chunk in data.chunks_exact_mut(8) {
        dec.process(chunk.try_into().unwrap());
    }
}

/// Encrypt `plaintext` (any length; zero-padded to a block multiple) under
/// `key` with the 64-bit `iv` (the duplicated confounder) in `mode`.
pub fn encrypt<C: BlockCipher>(key: &C, iv: u64, mode: Mode, plaintext: &[u8]) -> Vec<u8> {
    let mut data = zero_pad(plaintext);
    encrypt_in_place(key, iv, mode, &mut data);
    data
}

/// Decrypt `ciphertext` produced by [`encrypt`]; `orig_len` trims padding.
///
/// # Panics
/// Panics if `ciphertext` is not a block multiple or `orig_len` exceeds it.
pub fn decrypt<C: BlockCipher>(
    key: &C,
    iv: u64,
    mode: Mode,
    ciphertext: &[u8],
    orig_len: usize,
) -> Vec<u8> {
    assert!(orig_len <= ciphertext.len(), "orig_len exceeds ciphertext");
    let mut data = ciphertext.to_vec();
    decrypt_in_place(key, iv, mode, &mut data);
    data.truncate(orig_len);
    data
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The classic worked example from FIPS 46 teaching material.
    #[test]
    fn fips_worked_example_vector() {
        let key = Des::new(&0x133457799BBCDFF1u64.to_be_bytes());
        let mut block = 0x0123456789ABCDEFu64.to_be_bytes();
        key.encrypt_block(&mut block);
        assert_eq!(u64::from_be_bytes(block), 0x85E813540F0AB405);
        key.decrypt_block(&mut block);
        assert_eq!(u64::from_be_bytes(block), 0x0123456789ABCDEF);
    }

    /// Known-answer vectors from the NBS/NIST DES validation suite.
    #[test]
    fn known_answer_vectors() {
        let cases: [(u64, u64, u64); 4] = [
            (0x0000000000000000, 0x0000000000000000, 0x8CA64DE9C1B123A7),
            (0xFFFFFFFFFFFFFFFF, 0xFFFFFFFFFFFFFFFF, 0x7359B2163E4EDC58),
            (0x3000000000000000, 0x1000000000000001, 0x958E6E627A05557B),
            (0x1111111111111111, 0x1111111111111111, 0xF40379AB9E0EC533),
        ];
        for (k, p, c) in cases {
            let des = Des::new(&k.to_be_bytes());
            let mut block = p.to_be_bytes();
            des.encrypt_block(&mut block);
            assert_eq!(u64::from_be_bytes(block), c, "key={k:016x}");
            des.decrypt_block(&mut block);
            assert_eq!(u64::from_be_bytes(block), p);
        }
    }

    #[test]
    fn all_modes_roundtrip() {
        let des = Des::new(b"8bytekey");
        let msg = b"The quick brown fox jumps over the lazy dog";
        for mode in [Mode::Ecb, Mode::Cbc, Mode::Cfb, Mode::Ofb] {
            let ct = encrypt(&des, 0xDEADBEEF_CAFEBABE, mode, msg);
            assert_eq!(ct.len() % 8, 0);
            let pt = decrypt(&des, 0xDEADBEEF_CAFEBABE, mode, &ct, msg.len());
            assert_eq!(&pt, msg, "mode {mode:?}");
        }
    }

    #[test]
    fn wrong_iv_fails_to_decrypt() {
        let des = Des::new(b"8bytekey");
        let msg = b"confounder matters!!";
        let ct = encrypt(&des, 1, Mode::Cbc, msg);
        let pt = decrypt(&des, 2, Mode::Cbc, &ct, msg.len());
        assert_ne!(&pt, msg);
    }

    #[test]
    fn cbc_identical_blocks_differ_in_ciphertext() {
        let des = Des::new(b"8bytekey");
        let msg = [0xAA; 16]; // two identical plaintext blocks
        let ct = encrypt(&des, 7, Mode::Cbc, &msg);
        assert_ne!(ct[..8], ct[8..16], "CBC must hide identical blocks");
    }

    #[test]
    fn ecb_confounder_whitening_hides_repeats_across_datagrams() {
        // Same plaintext, different confounders ⇒ different ciphertexts even
        // in ECB (the §5.2 confounder-XOR construction).
        let des = Des::new(b"8bytekey");
        let msg = [0x42; 8];
        let c1 = encrypt(&des, 1111, Mode::Ecb, &msg);
        let c2 = encrypt(&des, 2222, Mode::Ecb, &msg);
        assert_ne!(c1, c2);
    }

    #[test]
    fn empty_plaintext() {
        let des = Des::new(b"8bytekey");
        let ct = encrypt(&des, 0, Mode::Cbc, b"");
        assert!(ct.is_empty());
        assert!(decrypt(&des, 0, Mode::Cbc, &ct, 0).is_empty());
    }

    #[test]
    fn exact_block_multiple_no_padding_growth() {
        let des = Des::new(b"8bytekey");
        let msg = [7u8; 24];
        let ct = encrypt(&des, 9, Mode::Ofb, &msg);
        assert_eq!(ct.len(), 24);
    }

    #[test]
    fn incremental_matches_whole_buffer() {
        let des = Des::new(b"8bytekey");
        let msg = [0x5Au8; 32];
        for mode in [Mode::Ecb, Mode::Cbc, Mode::Cfb, Mode::Ofb] {
            let whole = encrypt(&des, 0x1234, mode, &msg);
            let mut inc = msg;
            let mut e = BlockEncryptor::new(&des, mode, 0x1234);
            for chunk in inc.chunks_exact_mut(8) {
                e.process(chunk.try_into().unwrap());
            }
            assert_eq!(&inc[..], &whole[..], "encrypt {mode:?}");
            let mut d = BlockDecryptor::new(&des, mode, 0x1234);
            for chunk in inc.chunks_exact_mut(8) {
                d.process(chunk.try_into().unwrap());
            }
            assert_eq!(inc, msg, "decrypt {mode:?}");
        }
    }

    #[test]
    fn triple_des_roundtrip_and_known_vector() {
        // EDE3 with all-equal subkeys degenerates to single DES — the
        // classic interop check.
        let single = Des::new(&0x0123456789ABCDEFu64.to_be_bytes());
        let mut key24 = [0u8; 24];
        for chunk in key24.chunks_mut(8) {
            chunk.copy_from_slice(&0x0123456789ABCDEFu64.to_be_bytes());
        }
        let triple = TripleDes::new(&key24);
        let mut b1 = *b"8bytemsg";
        let mut b2 = *b"8bytemsg";
        single.encrypt_block(&mut b1);
        triple.encrypt_block(&mut b2);
        assert_eq!(b1, b2, "EDE3 with equal keys == single DES");
        triple.decrypt_block(&mut b2);
        assert_eq!(&b2, b"8bytemsg");
    }

    #[test]
    fn triple_des_distinct_keys_differ_from_single() {
        let mut key24 = [0u8; 24];
        key24[..8].copy_from_slice(b"key-one!");
        key24[8..16].copy_from_slice(b"key-two!");
        key24[16..].copy_from_slice(b"key-tre!");
        let triple = TripleDes::new(&key24);
        let single = Des::new(b"key-one!");
        let mut b1 = *b"blockblk";
        let mut b2 = *b"blockblk";
        triple.encrypt_block(&mut b1);
        single.encrypt_block(&mut b2);
        assert_ne!(b1, b2);
        triple.decrypt_block(&mut b1);
        assert_eq!(&b1, b"blockblk");
    }

    #[test]
    fn ede2_sets_k3_equal_k1() {
        let mut key16 = [0u8; 16];
        key16[..8].copy_from_slice(b"key-one!");
        key16[8..].copy_from_slice(b"key-two!");
        let ede2 = TripleDes::new_ede2(&key16);
        let mut key24 = [0u8; 24];
        key24[..16].copy_from_slice(&key16);
        key24[16..].copy_from_slice(b"key-one!");
        let ede3 = TripleDes::new(&key24);
        let mut b1 = *b"testblok";
        let mut b2 = *b"testblok";
        ede2.encrypt_block(&mut b1);
        ede3.encrypt_block(&mut b2);
        assert_eq!(b1, b2);
    }

    #[test]
    fn weak_key_detection() {
        // The four weak keys, with and without parity bits.
        assert!(is_weak_key(&[0x01; 8]));
        assert!(is_weak_key(&[0x00; 8])); // parity-stripped 0101...
        assert!(is_weak_key(&[0xFE; 8]));
        assert!(is_weak_key(&0xE0E0E0E0F1F1F1F1u64.to_be_bytes()));
        assert!(is_weak_key(&0x1F1F1F1F0E0E0E0Eu64.to_be_bytes()));
        // A semi-weak pair member: 01FE01FE01FE01FE.
        assert!(is_weak_key(&0x01FE01FE01FE01FEu64.to_be_bytes()));
        assert!(is_weak_key(&0xE01FE01FF10EF10Eu64.to_be_bytes()));
        // Ordinary keys are not flagged.
        assert!(!is_weak_key(b"8bytekey"));
        assert!(!is_weak_key(&0x133457799BBCDFF1u64.to_be_bytes()));
    }

    #[test]
    fn weak_key_property_encryption_is_involution() {
        // The defining property: under a weak key, E(E(x)) = x.
        let weak = Des::new(&[0x01; 8]);
        let mut b = *b"involute";
        weak.encrypt_block(&mut b);
        weak.encrypt_block(&mut b);
        assert_eq!(&b, b"involute");
    }

    #[test]
    fn fast_feistel_matches_reference() {
        // The SP-table round function must equal the FIPS-table one for a
        // spread of (R, subkey) inputs, including edge bits.
        let sp = sp_tables();
        let mut x = 0x9E3779B97F4A7C15u64; // weyl-ish generator, deterministic
        for _ in 0..4096 {
            x = x.wrapping_mul(0x2545F4914F6CDD1D).wrapping_add(1);
            let r = (x >> 16) as u32;
            let k = x & 0xFFFF_FFFF_FFFF; // 48-bit subkey
            assert_eq!(Des::feistel(r, k, sp), Des::feistel_reference(r, k));
        }
        for r in [0u32, 1, 0x8000_0000, u32::MAX] {
            for k in [0u64, 0xFFFF_FFFF_FFFF, 0xAAAA_AAAA_AAAA] {
                assert_eq!(Des::feistel(r, k, sp), Des::feistel_reference(r, k));
            }
        }
    }

    #[test]
    fn byte_perm_tables_match_permute() {
        let mut x = 0x0123456789ABCDEFu64;
        for _ in 0..1024 {
            x = x.wrapping_mul(0x2545F4914F6CDD1D).wrapping_add(0xB5);
            assert_eq!(apply_byte_perm(ip_tables(), x), permute(x, 64, &IP));
            assert_eq!(apply_byte_perm(fp_tables(), x), permute(x, 64, &FP));
        }
    }

    #[test]
    fn in_place_matches_allocating_path() {
        let des = Des::new(b"8bytekey");
        let msg = [0x3Cu8; 40];
        for mode in [Mode::Ecb, Mode::Cbc, Mode::Cfb, Mode::Ofb] {
            let whole = encrypt(&des, 0xFEED, mode, &msg);
            let mut buf = msg;
            encrypt_in_place(&des, 0xFEED, mode, &mut buf);
            assert_eq!(&buf[..], &whole[..], "encrypt {mode:?}");
            decrypt_in_place(&des, 0xFEED, mode, &mut buf);
            assert_eq!(buf, msg, "decrypt {mode:?}");
        }
    }

    #[test]
    fn padded_len_matches_zero_pad() {
        for len in [0usize, 1, 7, 8, 9, 15, 16, 8191, 8192] {
            assert_eq!(padded_len(len), zero_pad(&vec![0u8; len]).len());
        }
    }

    #[test]
    fn key_schedule_counter_increments() {
        let before = key_schedule_count();
        let _ = Des::new(b"8bytekey");
        assert!(key_schedule_count() > before);
    }

    #[test]
    fn blocks4_matches_scalar() {
        let des = Des::new(b"8bytekey");
        let mut blocks = [
            0x0123456789ABCDEFu64,
            0xFEDCBA9876543210,
            0x0000000000000000,
            0xFFFFFFFFFFFFFFFF,
        ];
        let expected: Vec<u64> = blocks
            .iter()
            .map(|&b| {
                let mut bytes = b.to_be_bytes();
                des.encrypt_block(&mut bytes);
                u64::from_be_bytes(bytes)
            })
            .collect();
        des.encrypt_blocks4(&mut blocks);
        assert_eq!(blocks.to_vec(), expected);
    }

    #[test]
    fn ctr_matches_scalar_reference() {
        let des = Des::new(b"ctr key!");
        let base = 0xDEADBEEF_00000042u64;
        for len in [0usize, 1, 7, 8, 9, 31, 32, 33, 63, 200] {
            let plain: Vec<u8> = (0..len).map(|i| (i * 31 + 7) as u8).collect();
            let mut fast = plain.clone();
            ctr_xor_at(&des, base, 0, &mut fast);
            // Scalar reference: block i of keystream is E(base + i).
            let mut reference = plain.clone();
            for (i, part) in reference.chunks_mut(8).enumerate() {
                let mut ks = base.wrapping_add(i as u64).to_be_bytes();
                des.encrypt_block(&mut ks);
                for (b, k) in part.iter_mut().zip(ks) {
                    *b ^= k;
                }
            }
            assert_eq!(fast, reference, "len {len}");
            // Same operation decrypts.
            ctr_xor_at(&des, base, 0, &mut fast);
            assert_eq!(fast, plain, "roundtrip len {len}");
        }
    }

    #[test]
    fn ctr_resumes_at_block_offset() {
        // Processing a buffer in two calls with the right start_block must
        // equal one call over the whole buffer (the fused MAC+encrypt loop
        // relies on this).
        let des = Des::new(b"ctr key!");
        let base = 77u64;
        let mut whole: Vec<u8> = (0..96u32).map(|i| i as u8).collect();
        let mut split = whole.clone();
        ctr_xor_at(&des, base, 0, &mut whole);
        ctr_xor_at(&des, base, 0, &mut split[..64]);
        ctr_xor_at(&des, base, 8, &mut split[64..]);
        assert_eq!(whole, split);
    }

    #[test]
    fn complementation_property() {
        // DES has the property E_{~k}(~p) = ~E_k(p).
        let k = 0x133457799BBCDFF1u64;
        let p = 0x0123456789ABCDEFu64;
        let des = Des::new(&k.to_be_bytes());
        let des_comp = Des::new(&(!k).to_be_bytes());
        let mut b1 = p.to_be_bytes();
        des.encrypt_block(&mut b1);
        let mut b2 = (!p).to_be_bytes();
        des_comp.encrypt_block(&mut b2);
        assert_eq!(u64::from_be_bytes(b1), !u64::from_be_bytes(b2));
    }
}
