//! Property-based tests for the cryptographic substrate.

// Property tests are opt-in: run with `cargo test --features props`.
#![cfg(feature = "props")]
use fbs_crypto::bignum::BigUint;
use fbs_crypto::{des, Des, DesMode, MacAlgorithm};
use proptest::prelude::*;

fn biguint_strategy() -> impl Strategy<Value = BigUint> {
    proptest::collection::vec(any::<u8>(), 0..40).prop_map(|v| BigUint::from_bytes_be(&v))
}

proptest! {
    // ---------------- bignum algebra ----------------

    #[test]
    fn addition_commutes(a in biguint_strategy(), b in biguint_strategy()) {
        prop_assert_eq!(a.add(&b), b.add(&a));
    }

    #[test]
    fn addition_associates(
        a in biguint_strategy(),
        b in biguint_strategy(),
        c in biguint_strategy(),
    ) {
        prop_assert_eq!(a.add(&b).add(&c), a.add(&b.add(&c)));
    }

    #[test]
    fn add_then_sub_roundtrips(a in biguint_strategy(), b in biguint_strategy()) {
        prop_assert_eq!(a.add(&b).sub(&b), a);
    }

    #[test]
    fn multiplication_commutes(a in biguint_strategy(), b in biguint_strategy()) {
        prop_assert_eq!(a.mul(&b), b.mul(&a));
    }

    #[test]
    fn multiplication_distributes(
        a in biguint_strategy(),
        b in biguint_strategy(),
        c in biguint_strategy(),
    ) {
        prop_assert_eq!(a.mul(&b.add(&c)), a.mul(&b).add(&a.mul(&c)));
    }

    #[test]
    fn division_identity(a in biguint_strategy(), b in biguint_strategy()) {
        prop_assume!(!b.is_zero());
        let (q, r) = a.div_rem(&b);
        // a = q*b + r with r < b — Knuth Algorithm D's contract.
        prop_assert_eq!(q.mul(&b).add(&r), a.clone());
        prop_assert!(r < b);
    }

    #[test]
    fn shifts_invert(a in biguint_strategy(), s in 0usize..130) {
        prop_assert_eq!(a.shl(s).shr(s), a);
    }

    #[test]
    fn bytes_roundtrip(a in biguint_strategy()) {
        prop_assert_eq!(BigUint::from_bytes_be(&a.to_bytes_be()), a);
    }

    #[test]
    fn modpow_matches_naive(base in 0u64..1000, exp in 0u64..24, modulus in 2u64..1000) {
        let got = BigUint::from_u64(base)
            .modpow(&BigUint::from_u64(exp), &BigUint::from_u64(modulus));
        let mut naive = 1u128;
        for _ in 0..exp {
            naive = naive * base as u128 % modulus as u128;
        }
        prop_assert_eq!(got, BigUint::from_u64(naive as u64));
    }

    // ---------------- DES ----------------

    #[test]
    fn des_roundtrips_all_modes(
        key in any::<[u8; 8]>(),
        iv in any::<u64>(),
        payload in proptest::collection::vec(any::<u8>(), 0..300),
        mode_idx in 0usize..4,
    ) {
        let mode = [DesMode::Ecb, DesMode::Cbc, DesMode::Cfb, DesMode::Ofb][mode_idx];
        let des = Des::new(&key);
        let ct = des::encrypt(&des, iv, mode, &payload);
        prop_assert_eq!(ct.len() % 8, 0);
        prop_assert!(ct.len() >= payload.len());
        let pt = des::decrypt(&des, iv, mode, &ct, payload.len());
        prop_assert_eq!(pt, payload);
    }

    #[test]
    fn des_block_is_a_permutation(key in any::<[u8; 8]>(), block in any::<[u8; 8]>()) {
        let des = Des::new(&key);
        let mut b = block;
        des.encrypt_block(&mut b);
        des.decrypt_block(&mut b);
        prop_assert_eq!(b, block);
    }

    #[test]
    fn des_ciphertext_differs_from_plaintext(
        key in any::<[u8; 8]>(),
        payload in proptest::collection::vec(any::<u8>(), 16..64),
    ) {
        // Not a security proof — just catches identity-function bugs.
        let des = Des::new(&key);
        let ct = des::encrypt(&des, 0, DesMode::Cbc, &payload);
        prop_assert_ne!(&ct[..payload.len()], &payload[..]);
    }

    // ---------------- digests and MACs ----------------

    #[test]
    fn md5_streaming_equals_oneshot(
        data in proptest::collection::vec(any::<u8>(), 0..500),
        split in 0usize..500,
    ) {
        let split = split.min(data.len());
        let mut ctx = fbs_crypto::md5::Md5::new();
        ctx.update(&data[..split]);
        ctx.update(&data[split..]);
        prop_assert_eq!(ctx.finalize(), fbs_crypto::md5(&data));
    }

    #[test]
    fn sha1_streaming_equals_oneshot(
        data in proptest::collection::vec(any::<u8>(), 0..500),
        split in 0usize..500,
    ) {
        let split = split.min(data.len());
        let mut ctx = fbs_crypto::sha1::Sha1::new();
        ctx.update(&data[..split]);
        ctx.update(&data[split..]);
        prop_assert_eq!(ctx.finalize(), fbs_crypto::sha1(&data));
    }

    #[test]
    fn mac_context_equals_compute(
        key in proptest::collection::vec(any::<u8>(), 1..80),
        data in proptest::collection::vec(any::<u8>(), 0..200),
        alg_idx in 0usize..4,
    ) {
        let alg = [
            MacAlgorithm::KeyedMd5,
            MacAlgorithm::KeyedSha1,
            MacAlgorithm::HmacMd5,
            MacAlgorithm::HmacSha1,
        ][alg_idx];
        let mut ctx = alg.begin(&key);
        ctx.update(&data);
        prop_assert_eq!(ctx.finalize(), alg.compute(&key, &[&data]));
    }

    #[test]
    fn crc32_streaming_equals_oneshot(
        data in proptest::collection::vec(any::<u8>(), 0..300),
        split in 0usize..300,
    ) {
        let split = split.min(data.len());
        let mut c = fbs_crypto::crc32::Crc32::new();
        c.update(&data[..split]);
        c.update(&data[split..]);
        prop_assert_eq!(c.finalize(), fbs_crypto::crc32(&data));
    }
}
