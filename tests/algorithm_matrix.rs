//! Full algorithm-ID matrix: every MAC algorithm × every encryption
//! algorithm × key-derivation hash must round trip, and receivers must
//! honour the *header's* algorithm fields (§5.2's algorithm-identification
//! field in action).

use fbs::core::{
    Datagram, EncAlgorithm, FbsConfig, FbsEndpoint, KeyDerivation, ManualClock, MasterKeyDaemon,
    PinnedDirectory, Principal,
};
use fbs::crypto::dh::{DhGroup, PrivateValue};
use fbs::crypto::MacAlgorithm;
use std::sync::Arc;

fn pair(tx_cfg: FbsConfig, rx_cfg: FbsConfig) -> (FbsEndpoint, FbsEndpoint) {
    let clock = ManualClock::starting_at(44_000);
    let group = DhGroup::test_group();
    let a_priv = PrivateValue::from_entropy(group.clone(), b"matrix-alice-entropy");
    let b_priv = PrivateValue::from_entropy(group, b"matrix-bob-entropy!!");
    let alice = Principal::named("alice");
    let bob = Principal::named("bob");
    let mut da = PinnedDirectory::new();
    da.pin(bob.clone(), b_priv.public_value());
    let mut db = PinnedDirectory::new();
    db.pin(alice.clone(), a_priv.public_value());
    (
        FbsEndpoint::new(
            alice,
            tx_cfg,
            Arc::new(clock.clone()),
            5,
            MasterKeyDaemon::new(a_priv, Box::new(da)),
        ),
        FbsEndpoint::new(
            bob,
            rx_cfg,
            Arc::new(clock),
            6,
            MasterKeyDaemon::new(b_priv, Box::new(db)),
        ),
    )
}

const MACS: [MacAlgorithm; 4] = [
    MacAlgorithm::KeyedMd5,
    MacAlgorithm::KeyedSha1,
    MacAlgorithm::HmacMd5,
    MacAlgorithm::HmacSha1,
];

const ENCS: [EncAlgorithm; 6] = [
    EncAlgorithm::None,
    EncAlgorithm::DesCbc,
    EncAlgorithm::DesEcb,
    EncAlgorithm::DesCfb,
    EncAlgorithm::DesOfb,
    EncAlgorithm::TdeaCbc,
];

#[test]
fn every_mac_times_enc_combination_roundtrips() {
    for kd in [KeyDerivation::Md5, KeyDerivation::Sha1] {
        for mac_alg in MACS {
            for enc_alg in ENCS {
                let cfg = FbsConfig {
                    key_derivation: kd,
                    mac_alg,
                    enc_alg,
                    ..FbsConfig::default()
                };
                let (mut tx, mut rx) = pair(cfg.clone(), cfg);
                let body = format!("combo {mac_alg:?}/{enc_alg:?}/{kd:?}");
                let d = Datagram::new(
                    Principal::named("alice"),
                    Principal::named("bob"),
                    body.clone().into_bytes(),
                );
                let pd = tx.send(1, d, true).unwrap();
                assert_eq!(pd.header.mac_alg, mac_alg);
                assert_eq!(pd.header.enc_alg, enc_alg);
                let got = rx.receive(pd).unwrap();
                assert_eq!(got.body, body.into_bytes(), "{mac_alg:?}/{enc_alg:?}");
            }
        }
    }
}

#[test]
fn receiver_uses_header_algorithms_not_its_own_config() {
    // Sender configured for HMAC-SHA1 + 3DES; receiver configured with the
    // paper defaults. The receiver must still verify, because algorithm
    // identity travels in the header (§5.2) — only the key-derivation hash
    // (deployment-wide, tied to the keying infrastructure) must match.
    let tx_cfg = FbsConfig {
        mac_alg: MacAlgorithm::HmacSha1,
        enc_alg: EncAlgorithm::TdeaCbc,
        ..FbsConfig::default()
    };
    let rx_cfg = FbsConfig::default();
    let (mut tx, mut rx) = pair(tx_cfg, rx_cfg);
    let d = Datagram::new(
        Principal::named("alice"),
        Principal::named("bob"),
        b"negotiation-free agility".to_vec(),
    );
    let pd = tx.send(1, d, true).unwrap();
    assert_eq!(rx.receive(pd).unwrap().body, b"negotiation-free agility");
}

#[test]
fn mismatched_key_derivation_fails_closed() {
    // The one parameter that MUST match: K_f derivation. A sender deriving
    // with SHA-1 against a receiver deriving with MD5 produces different
    // flow keys, so the MAC fails — fail closed, never fail open.
    let tx_cfg = FbsConfig {
        key_derivation: KeyDerivation::Sha1,
        ..FbsConfig::default()
    };
    let rx_cfg = FbsConfig {
        key_derivation: KeyDerivation::Md5,
        ..FbsConfig::default()
    };
    let (mut tx, mut rx) = pair(tx_cfg, rx_cfg);
    let d = Datagram::new(
        Principal::named("alice"),
        Principal::named("bob"),
        b"must not verify".to_vec(),
    );
    let pd = tx.send(1, d, false).unwrap();
    assert!(rx.receive(pd).is_err());
}

#[test]
fn truncated_macs_roundtrip_at_every_length() {
    for n in [4usize, 8, 12, 16] {
        let cfg = FbsConfig {
            mac_truncate: Some(n),
            ..FbsConfig::default()
        };
        let (mut tx, mut rx) = pair(cfg.clone(), cfg);
        let d = Datagram::new(
            Principal::named("alice"),
            Principal::named("bob"),
            vec![7u8; 100],
        );
        let pd = tx.send(1, d, true).unwrap();
        assert_eq!(pd.header.mac.len(), n);
        assert!(rx.receive(pd).is_ok(), "truncate {n}");
    }
}
