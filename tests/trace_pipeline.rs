//! Integration tests of the full §7.3 measurement pipeline: workload
//! generation → text serialisation → parsing → flow simulation → figure
//! statistics, including the round trip through a real file (what the
//! `fbstrace` CLI does).

use fbs::trace::flowsim::{flow_durations, flow_sizes};
use fbs::trace::record::{read_trace, write_trace};
use fbs::trace::stats::{cdf_points, LogHistogram};
use fbs::trace::{
    generate_campus_trace, generate_www_trace, simulate_flows, CampusConfig, FlowSimConfig,
    WwwConfig,
};

fn small_campus() -> CampusConfig {
    CampusConfig {
        duration_secs: 1200,
        desktops: 8,
        ..CampusConfig::default()
    }
}

#[test]
fn trace_survives_text_roundtrip_exactly() {
    let trace = generate_campus_trace(&small_campus());
    let text = write_trace(&trace);
    let parsed = read_trace(&text);
    assert_eq!(parsed, trace);
}

#[test]
fn trace_roundtrip_through_a_real_file() {
    let trace = generate_www_trace(&WwwConfig {
        duration_secs: 1800,
        ..WwwConfig::default()
    });
    let path = std::env::temp_dir().join("fbs-test-trace.txt");
    std::fs::write(&path, write_trace(&trace)).unwrap();
    let parsed = read_trace(&std::fs::read_to_string(&path).unwrap());
    std::fs::remove_file(&path).ok();
    assert_eq!(parsed, trace);
}

#[test]
fn flow_analysis_identical_before_and_after_serialisation() {
    // The figure statistics must not depend on in-memory vs re-parsed
    // traces (the CLI path and the bench path must agree).
    let trace = generate_campus_trace(&small_campus());
    let reparsed = read_trace(&write_trace(&trace));
    let cfg = FlowSimConfig::default();
    let a = simulate_flows(&trace, &cfg);
    let b = simulate_flows(&reparsed, &cfg);
    assert_eq!(a.flows_started, b.flows_started);
    assert_eq!(a.repeated_flows, b.repeated_flows);
    assert_eq!(flow_sizes(&a), flow_sizes(&b));
    assert_eq!(flow_durations(&a), flow_durations(&b));
}

#[test]
fn histogram_and_cdf_agree_on_totals() {
    let trace = generate_campus_trace(&small_campus());
    let result = simulate_flows(&trace, &FlowSimConfig::default());
    let (pkts, _) = flow_sizes(&result);
    let mut hist = LogHistogram::new();
    for &p in &pkts {
        hist.add(p);
    }
    assert_eq!(hist.total(), pkts.len() as u64);
    let cdf = cdf_points(&pkts, 10);
    assert_eq!(cdf.last().unwrap().1, 1.0);
    // The CDF endpoint equals the max flow size.
    assert_eq!(cdf.last().unwrap().0, *pkts.last().unwrap());
}

#[test]
fn www_and_campus_have_distinct_signatures() {
    // Sanity on the two environments: WWW flows are uniformly short;
    // campus includes long-lived sessions.
    let campus = simulate_flows(
        &generate_campus_trace(&small_campus()),
        &FlowSimConfig::default(),
    );
    let www = simulate_flows(
        &generate_www_trace(&WwwConfig {
            duration_secs: 1200,
            ..WwwConfig::default()
        }),
        &FlowSimConfig::default(),
    );
    let campus_max = flow_durations(&campus).last().copied().unwrap_or(0);
    let www_max = flow_durations(&www).last().copied().unwrap_or(0);
    assert!(
        campus_max > 300,
        "campus has long-lived flows: {campus_max}"
    );
    assert!(www_max < 300, "www flows are short: {www_max}");
}
