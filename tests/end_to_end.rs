//! Cross-crate integration: full FBS-secured LANs exercising certificates,
//! keying, the FAM, the stack hooks, and both transports together.

use fbs::crypto::dh::DhGroup;
use fbs::ip::hooks::IpMappingConfig;
use fbs::ip::host::SecureNet;
use fbs::net::segment::Impairments;

const A: [u8; 4] = [10, 0, 0, 1];
const B: [u8; 4] = [10, 0, 0, 2];
const C: [u8; 4] = [10, 0, 0, 3];

fn lan(seed: u64, imp: Impairments, cfg: IpMappingConfig) -> SecureNet {
    SecureNet::new(seed, imp, cfg, DhGroup::test_group())
}

#[test]
fn three_hosts_full_mesh_udp() {
    let mut net = lan(1, Impairments::default(), IpMappingConfig::default());
    let hooks: Vec<_> = [A, B, C].into_iter().map(|a| net.add_host(a)).collect();
    for addr in [A, B, C] {
        net.host_mut(addr).udp.bind(7000).unwrap();
    }
    // Every host sends to every other host.
    for (i, src) in [A, B, C].into_iter().enumerate() {
        for dst in [A, B, C] {
            if src != dst {
                let now = net.now_us();
                net.host_mut(src)
                    .udp_send(6000 + i as u16, dst, 7000, b"mesh datagram", now)
                    .unwrap();
            }
        }
    }
    net.run(100_000, 1_000);
    for addr in [A, B, C] {
        assert_eq!(net.host_mut(addr).udp.pending(7000), 2, "host {addr:?}");
    }
    // Each host computed master keys for exactly its two peers.
    for h in &hooks {
        assert_eq!(h.mkd_stats().upcalls, 2);
    }
}

#[test]
fn concurrent_mrt_and_udp_over_one_pair() {
    let mut net = lan(2, Impairments::default(), IpMappingConfig::default());
    let ha = net.add_host(A);
    let _hb = net.add_host(B);

    net.host_mut(B).udp.bind(53).unwrap();
    net.host_mut(B).mrt.listen(80);
    let key = net.host_mut(A).mrt.connect(3000, B, 80);
    net.run(200_000, 1_000);

    let bulk: Vec<u8> = (0..8000u32).map(|i| (i % 250) as u8).collect();
    net.host_mut(A).mrt.send(&key, &bulk).unwrap();
    for i in 0..5 {
        let now = net.now_us();
        net.host_mut(A)
            .udp_send(4000, B, 53, format!("interleaved {i}").as_bytes(), now)
            .unwrap();
        net.run(50_000, 1_000);
    }
    net.run(2_000_000, 1_000);

    assert_eq!(net.host_mut(B).udp.pending(53), 5);
    assert_eq!(net.host_mut(B).mrt.recv(&(80, A, 3000), usize::MAX), bulk);
    // Two separate flows at A: one MRT 5-tuple, one UDP 5-tuple (plus the
    // handshake ACK flow is B-side).
    assert_eq!(ha.combined_stats().unwrap().new_flows, 2);
}

#[test]
fn survives_loss_duplication_corruption_and_reordering() {
    let mut net = lan(
        3,
        Impairments::lossy(0.12, 0.03, 0.03, 2_000),
        IpMappingConfig::default(),
    );
    let ha = net.add_host(A);
    let hb = net.add_host(B);
    net.host_mut(B).mrt.listen(80);
    let key = net.host_mut(A).mrt.connect(3000, B, 80);
    net.run(3_000_000, 1_000);
    let data: Vec<u8> = (0..60_000u32).map(|i| (i % 249) as u8).collect();
    net.host_mut(A).mrt.send(&key, &data).unwrap();

    let mut got = Vec::new();
    for _ in 0..600 {
        net.run(100_000, 1_000);
        got.extend(net.host_mut(B).mrt.recv(&(80, A, 3000), usize::MAX));
        if got.len() >= data.len() {
            break;
        }
    }
    assert_eq!(
        got, data,
        "reliable, authenticated transfer over bad medium"
    );
    // The medium really did injure frames...
    let seg = net.net.segment.stats();
    assert!(seg.lost > 0, "impairments active: {seg:?}");
    // ...and every corrupted frame that reached a host was caught by a
    // checksum or the FBS MAC (drops can land on either side since ACKs
    // are corrupted too). A corrupted *address* makes the frame vanish
    // instead, so the counters only need to be consistent, not equal.
    let drops: u64 = [A, B]
        .into_iter()
        .map(|h| net.host_mut(h).stats().header_drops)
        .sum::<u64>()
        + ha.stats().input_errors
        + hb.stats().input_errors;
    assert!(
        drops > 0 || seg.corrupted < 3,
        "corrupted frames must surface as verified drops: seg={seg:?}"
    );
}

#[test]
fn udp_fragmentation_through_fbs() {
    // One protected UDP datagram bigger than the MTU: FBS protects the
    // whole datagram once; fragmentation/reassembly happens below it.
    let mut net = lan(4, Impairments::default(), IpMappingConfig::default());
    let ha = net.add_host(A);
    net.add_host(B);
    net.host_mut(B).udp.bind(53).unwrap();
    let big = vec![0x3Cu8; 4000];
    net.host_mut(A).udp_send(4000, B, 53, &big, 0).unwrap();
    net.run(100_000, 1_000);
    let got = net.host_mut(B).udp.recv(53).expect("reassembled datagram");
    assert_eq!(got.data, big);
    // One FBS protection despite multiple fragments on the wire.
    assert_eq!(ha.stats().protected, 1);
    assert!(net.host_mut(A).stats().frames_sent >= 3);
}

#[test]
fn authentication_only_mode() {
    let cfg = IpMappingConfig {
        encrypt: false,
        ..IpMappingConfig::default()
    };
    let mut net = lan(5, Impairments::default(), cfg);
    let ha = net.add_host(A);
    net.add_host(B);
    net.host_mut(B).udp.bind(53).unwrap();
    net.host_mut(A)
        .udp_send(4000, B, 53, b"authenticated cleartext", 0)
        .unwrap();
    net.run(50_000, 1_000);
    assert_eq!(
        net.host_mut(B).udp.recv(53).unwrap().data,
        b"authenticated cleartext"
    );
    assert_eq!(ha.endpoint_stats().encryptions, 0);
    assert_eq!(ha.stats().protected, 1);
}

#[test]
fn textbook_and_combined_paths_interoperate() {
    // Sender uses the separate FAM+TFKC path, receiver is identical
    // either way — the wire format does not change.
    let cfg = IpMappingConfig {
        combined: false,
        ..IpMappingConfig::default()
    };
    let mut net = lan(6, Impairments::default(), cfg);
    net.add_host(A);
    net.add_host(B);
    net.host_mut(B).udp.bind(53).unwrap();
    for _ in 0..3 {
        let now = net.now_us();
        net.host_mut(A)
            .udp_send(4000, B, 53, b"textbook wire format", now)
            .unwrap();
        net.run(20_000, 1_000);
    }
    assert_eq!(net.host_mut(B).udp.pending(53), 3);
}

#[test]
fn long_run_many_flows_stay_bounded() {
    // Soak: hundreds of short conversations; soft state must not grow
    // without bound and every datagram must arrive.
    let mut net = lan(7, Impairments::ideal(), IpMappingConfig::default());
    let ha = net.add_host(A);
    net.add_host(B);
    net.host_mut(B).udp.bind(9000).unwrap();
    let mut sent = 0;
    for round in 0..50u16 {
        for port in 0..4u16 {
            let now = net.now_us();
            net.host_mut(A)
                .udp_send(1024 + round * 4 + port, B, 9000, b"short conversation", now)
                .unwrap();
            sent += 1;
        }
        net.run(30_000, 1_000);
    }
    net.run(200_000, 1_000);
    assert_eq!(net.host_mut(B).udp.pending(9000), sent);
    let cs = ha.combined_stats().unwrap();
    assert_eq!(cs.new_flows + cs.hits, sent as u64);
    assert_eq!(ha.mkd_stats().upcalls, 1, "still only one master key");
}
