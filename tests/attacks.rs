//! Adversarial integration tests: the attacks of §2.2, §6 and §7.1 run
//! against the full system (endpoints + caches + certificates), verifying
//! both that FBS stops what it claims to stop and that it admits what the
//! paper admits it admits.

use fbs::baselines::{HostPairService, SecureDatagramService};
use fbs::cert::{CertificateAuthority, Directory, Pvc};
use fbs::core::policy::IdleTimeoutPolicy;
use fbs::core::{
    Datagram, Fam, FbsConfig, FbsEndpoint, FbsError, ManualClock, MasterKeyDaemon, PinnedDirectory,
    Principal, ProtectedDatagram, SflAllocator,
};
use fbs::crypto::dh::{DhGroup, PrivateValue};
use std::sync::Arc;
use std::time::Duration;

fn pair() -> (FbsEndpoint, FbsEndpoint, ManualClock) {
    let clock = ManualClock::starting_at(500_000);
    let group = DhGroup::test_group();
    let a_priv = PrivateValue::from_entropy(group.clone(), b"attack-test-alice-entropy");
    let b_priv = PrivateValue::from_entropy(group, b"attack-test-bob-entropy!!");
    let alice = Principal::named("alice");
    let bob = Principal::named("bob");
    let mut da = PinnedDirectory::new();
    da.pin(bob.clone(), b_priv.public_value());
    let mut db = PinnedDirectory::new();
    db.pin(alice.clone(), a_priv.public_value());
    (
        FbsEndpoint::new(
            alice,
            FbsConfig::default(),
            Arc::new(clock.clone()),
            0xA77AC4,
            MasterKeyDaemon::new(a_priv, Box::new(da)),
        ),
        FbsEndpoint::new(
            bob,
            FbsConfig::default(),
            Arc::new(clock.clone()),
            0xDEFE45E,
            MasterKeyDaemon::new(b_priv, Box::new(db)),
        ),
        clock,
    )
}

fn dgram(body: &[u8]) -> Datagram {
    Datagram::new(Principal::named("alice"), Principal::named("bob"), body)
}

#[test]
fn bit_flips_anywhere_in_wire_payload_are_caught() {
    // Exhaustively flip one bit in every byte position of a protected
    // datagram's wire form; every variant must be rejected (or fail to
    // parse) — none may decrypt to a *different accepted* datagram.
    let (mut tx, mut rx, _) = pair();
    let pd = tx.send(9, dgram(b"sixteen byte msg"), true).unwrap();
    let wire = pd.encode_payload();
    let mut accepted_identical = 0;
    for i in 0..wire.len() {
        let mut corrupted = wire.clone();
        corrupted[i] ^= 0x01;
        let Ok(parsed) = ProtectedDatagram::decode_payload(
            Principal::named("alice"),
            Principal::named("bob"),
            &corrupted,
        ) else {
            continue; // framing rejected at parse
        };
        match rx.receive(parsed) {
            Err(_) => {}
            Ok(d) => {
                // Only acceptable if the flip hit a bit the protocol
                // legitimately ignores AND the payload is untouched.
                assert_eq!(
                    d.body, b"sixteen byte msg",
                    "flip at byte {i} accepted with altered body"
                );
                accepted_identical += 1;
            }
        }
    }
    // The only ignorable bits are inside the reserved header byte.
    assert!(
        accepted_identical <= 1,
        "too many corrupted-but-accepted variants: {accepted_identical}"
    );
}

#[test]
fn truncation_and_extension_rejected() {
    let (mut tx, mut rx, _) = pair();
    let pd = tx.send(9, dgram(b"length matters here"), true).unwrap();
    let wire = pd.encode_payload();

    for cut in [1usize, 7, 8, 16] {
        let truncated = &wire[..wire.len() - cut];
        match ProtectedDatagram::decode_payload(
            Principal::named("alice"),
            Principal::named("bob"),
            truncated,
        ) {
            Err(_) => {}
            Ok(pd) => assert!(rx.receive(pd).is_err(), "truncated by {cut} accepted"),
        }
    }
    let mut extended = wire.clone();
    extended.extend_from_slice(&[0u8; 8]);
    let pd = ProtectedDatagram::decode_payload(
        Principal::named("alice"),
        Principal::named("bob"),
        &extended,
    )
    .unwrap();
    assert!(rx.receive(pd).is_err(), "extension accepted");
}

#[test]
fn reflection_attack_fails() {
    // A datagram sent A→B replayed back to A (claiming source B) must not
    // verify: flow keys are direction-bound via (S, D) in the derivation.
    let (mut tx, _, _) = pair();
    let pd = tx.send(9, dgram(b"reflect me"), true).unwrap();
    let reflected = ProtectedDatagram {
        source: Principal::named("bob"),
        destination: Principal::named("alice"),
        header: pd.header.clone(),
        body: pd.body.clone(),
    };
    assert_eq!(tx.receive(reflected), Err(FbsError::BadMac));
}

#[test]
fn cross_pair_splice_fails() {
    // Traffic for pair (A,B) replayed into pair (A,C): C cannot verify it
    // even knowing its own master key with A.
    let clock = ManualClock::starting_at(500_000);
    let group = DhGroup::test_group();
    let a_priv = PrivateValue::from_entropy(group.clone(), b"multi-alice-entropy!");
    let b_priv = PrivateValue::from_entropy(group.clone(), b"multi-bob-entropy!!!");
    let c_priv = PrivateValue::from_entropy(group, b"multi-carol-entropy!");
    let (alice, bob, carol) = (
        Principal::named("alice"),
        Principal::named("bob"),
        Principal::named("carol"),
    );
    let mut da = PinnedDirectory::new();
    da.pin(bob.clone(), b_priv.public_value());
    da.pin(carol.clone(), c_priv.public_value());
    let mut dc = PinnedDirectory::new();
    dc.pin(alice.clone(), a_priv.public_value());
    let mut a = FbsEndpoint::new(
        alice.clone(),
        FbsConfig::default(),
        Arc::new(clock.clone()),
        1,
        MasterKeyDaemon::new(a_priv, Box::new(da)),
    );
    let mut c = FbsEndpoint::new(
        carol.clone(),
        FbsConfig::default(),
        Arc::new(clock.clone()),
        2,
        MasterKeyDaemon::new(c_priv, Box::new(dc)),
    );
    let pd = a
        .send(
            5,
            Datagram::new(alice.clone(), bob, b"for bob only".to_vec()),
            true,
        )
        .unwrap();
    // Redirect to carol.
    let redirected = ProtectedDatagram {
        source: alice,
        destination: carol,
        header: pd.header,
        body: pd.body,
    };
    assert!(c.receive(redirected).is_err());
}

#[test]
fn replay_window_boundaries_are_exact() {
    let (mut tx, mut rx, clock) = pair();
    let pd = tx.send(9, dgram(b"boundary test"), false).unwrap();
    // Default window is ±2 minutes. At +2 min it is still fresh...
    clock.advance(2 * 60);
    assert!(rx.receive(pd.clone()).is_ok());
    // ...at +3 min (minute counter moved 3) it is stale.
    clock.advance(60);
    assert!(matches!(
        rx.receive(pd),
        Err(FbsError::StaleTimestamp { .. })
    ));
}

#[test]
fn receiver_clock_behind_sender_still_accepts_within_window() {
    // §6.2: loose synchronisation — the window is symmetric, so a sender
    // ahead of the receiver is tolerated up to the half-width.
    let (mut tx, mut rx, clock) = pair();
    let pd = tx.send(9, dgram(b"from the future"), false).unwrap();
    clock.set(500_000 - 60); // receiver now 1 minute behind send time
    assert!(rx.receive(pd).is_ok());
}

#[test]
fn certificate_substitution_is_caught_by_pvc_verification() {
    // An attacker who can tamper with the directory cannot substitute a
    // forged certificate: the PVC verifies against the CA on every use.
    let ca = CertificateAuthority::new("real-ca", [1u8; 16]);
    let rogue = CertificateAuthority::new("real-ca", [2u8; 16]); // forged secret
    let dir = Arc::new(Directory::new(Duration::ZERO));
    let clock = ManualClock::starting_at(1000);
    let group = DhGroup::test_group();
    let victim = Principal::named("victim");
    let attacker_pv = PrivateValue::from_entropy(group, b"attacker-owned-value").public_value();
    // The directory serves a certificate issued by the ROGUE ca binding
    // the victim's name to the attacker's public value.
    dir.publish(rogue.issue(victim.clone(), attacker_pv, 0, u64::MAX));
    let pvc = Pvc::new(8, dir, ca.verifier(), Arc::new(clock.clone()));
    use fbs::core::PublicValueSource;
    assert!(matches!(
        pvc.fetch(&victim),
        Err(FbsError::CertificateInvalid(_))
    ));
}

#[test]
fn port_reuse_attack_end_to_end_with_fam() {
    // §7.1 attack narrative, at the FAM level: the attacker inherits the
    // victim's flow when the port is reused within THRESHOLD, and the
    // receiving endpoint will happily decrypt replayed flow traffic.
    let (mut tx, mut rx, _) = pair();
    let mut fam = Fam::new(64, IdleTimeoutPolicy::new(600), SflAllocator::new(77));
    let attrs = "udp:alice:2222->bob:9999".to_string();

    let now = rx.clock().now_secs();
    let victim_class = fam.classify(attrs.clone(), now, 64);
    let recorded = tx
        .send(victim_class.sfl, dgram(b"victim's secret"), true)
        .unwrap();

    // Victim exits; attacker binds the same port seconds later: the FAM
    // continues the SAME flow.
    let attacker_class = fam.classify(attrs, now + 10, 64);
    assert_eq!(victim_class.sfl, attacker_class.sfl);

    // The receiver decrypts the replayed datagram while it is fresh —
    // the §7.1 vulnerability — which is why the port quarantine exists
    // (tested in fbs-net::ports and examples/attack_demos).
    assert_eq!(rx.receive(recorded).unwrap().body, b"victim's secret");
}

#[test]
fn host_pair_vs_fbs_attack_matrix() {
    // Summary matrix: which paradigm stops which attack.
    let group = DhGroup::test_group();
    let (mut hp_a, mut hp_b, hp_a_name, hp_b_name) =
        HostPairService::pair(&group, ("alice", "bob"));
    let (mut fbs_tx, mut fbs_rx, _) = pair();

    // Cross-conversation replay: host-pair accepts, FBS's flow binding
    // means the datagram stays in ITS OWN flow (sfl in header) — the
    // attack that matters is ciphertext splicing, which FBS rejects.
    let hp_wire = hp_a.protect(&hp_b_name, 1, b"conv 1").unwrap();
    assert!(hp_b.unprotect(&hp_a_name, 2, &hp_wire).is_ok());

    let pd1 = fbs_tx.send(1, dgram(b"conv one"), true).unwrap();
    let mut pd2 = fbs_tx.send(2, dgram(b"conv two"), true).unwrap();
    pd2.body = pd1.body.clone();
    assert_eq!(fbs_rx.receive(pd2), Err(FbsError::BadMac));
}
