//! Cross-suite integration: the PR 10 crypto plane. Every cipher-suite
//! profile must round trip end to end, batch (zero-copy `seal_into`) and
//! scalar (`send`) sealing must be bit-identical per profile, a flow
//! sealed under one suite must never open under another, the paper
//! profile's wire bytes are pinned (bit-identical DES+MD5), and the
//! `mac_truncate = Some(0)` forgery hole stays closed.

use fbs::core::{
    Datagram, FbsConfig, FbsEndpoint, ManualClock, MasterKeyDaemon, PinnedDirectory, Principal,
    MIN_SHIPPED_MAC,
};
use fbs::crypto::dh::{DhGroup, PrivateValue};
use fbs::crypto::CipherSuite;
use std::sync::Arc;

fn pair(tx_cfg: FbsConfig, rx_cfg: FbsConfig) -> (FbsEndpoint, FbsEndpoint) {
    let clock = ManualClock::starting_at(44_000);
    let group = DhGroup::test_group();
    let a_priv = PrivateValue::from_entropy(group.clone(), b"suites-alice-entropy");
    let b_priv = PrivateValue::from_entropy(group, b"suites-bob-entropy!!");
    let alice = Principal::named("alice");
    let bob = Principal::named("bob");
    let mut da = PinnedDirectory::new();
    da.pin(bob.clone(), b_priv.public_value());
    let mut db = PinnedDirectory::new();
    db.pin(alice.clone(), a_priv.public_value());
    (
        FbsEndpoint::new(
            alice,
            tx_cfg,
            Arc::new(clock.clone()),
            5,
            MasterKeyDaemon::new(a_priv, Box::new(da)),
        ),
        FbsEndpoint::new(
            bob,
            rx_cfg,
            Arc::new(clock),
            6,
            MasterKeyDaemon::new(b_priv, Box::new(db)),
        ),
    )
}

fn dgram(body: &[u8]) -> Datagram {
    Datagram::new(
        Principal::named("alice"),
        Principal::named("bob"),
        body.to_vec(),
    )
}

fn suite_cfg(suite: CipherSuite) -> FbsConfig {
    FbsConfig {
        suite,
        ..FbsConfig::default()
    }
}

#[test]
fn every_suite_roundtrips_end_to_end() {
    for &suite in CipherSuite::ALL.iter() {
        let (mut tx, mut rx) = pair(suite_cfg(suite), suite_cfg(suite));
        for (i, body) in [b"first datagram".as_slice(), b"", b"third, longer datagram body"]
            .iter()
            .enumerate()
        {
            let pd = tx.send(1, dgram(body), true).unwrap();
            assert_eq!(pd.header.suite, suite, "suite must ride the header");
            let got = rx.receive(pd).unwrap();
            assert_eq!(got.body, body.to_vec(), "{suite:?} datagram {i}");
        }
    }
}

/// Batch == scalar, bit-identical, per profile: two endpoints built from
/// the same seeds draw the same confounder sequence, so the zero-copy
/// `seal_into` path must emit exactly the bytes `send` +
/// `encode_payload` would — for every suite, not just the paper one.
#[test]
fn zero_copy_seal_is_bit_identical_to_scalar_send_per_suite() {
    for &suite in CipherSuite::ALL.iter() {
        let (mut scalar_tx, _) = pair(suite_cfg(suite), suite_cfg(suite));
        let (mut batch_tx, mut rx) = pair(suite_cfg(suite), suite_cfg(suite));
        let bob = Principal::named("bob");
        for round in 0..8u8 {
            let body: Vec<u8> = (0..(round as usize) * 17 + 3).map(|i| i as u8 ^ round).collect();
            let wire_scalar = scalar_tx.send(1, dgram(&body), true).unwrap().encode_payload();
            let mut wire_batch = Vec::new();
            batch_tx
                .seal_into(1, &bob, &body, true, &mut wire_batch)
                .unwrap();
            assert_eq!(
                wire_scalar, wire_batch,
                "{suite:?} round {round}: batch and scalar wires diverge"
            );
            // And the wire actually opens on the structured receive path.
            let mut out = Vec::new();
            rx.open_into(&Principal::named("alice"), &wire_batch, &mut out)
                .unwrap();
            assert_eq!(out, body);
        }
    }
}

/// Negative interop: a flow sealed under one suite must never open on a
/// receiver speaking another — the suite rides the key schedule and the
/// header, and a mismatch is an authentication failure, not a silent
/// downgrade.
#[test]
fn flow_sealed_under_one_suite_never_opens_under_another() {
    for &seal_suite in CipherSuite::ALL.iter() {
        for &open_suite in CipherSuite::ALL.iter() {
            if seal_suite == open_suite {
                continue;
            }
            let (mut tx, mut rx) = pair(suite_cfg(seal_suite), suite_cfg(open_suite));
            let pd = tx.send(1, dgram(b"cross-suite probe"), true).unwrap();
            let err = rx.receive(pd);
            assert!(
                err.is_err(),
                "sealed {seal_suite:?}, opened {open_suite:?}: must not interoperate"
            );
        }
    }
}

/// The paper profile's wire bytes, pinned. Everything feeding the seal is
/// deterministic here (fixed DH entropy, manual clock, fixed endpoint
/// seeds), so any drift in the DES-CBC + keyed-MD5 output — a refactor
/// that reorders padding, truncates differently, or touches the
/// confounder stream — changes these bytes and fails this test. This is
/// the "paper suite stays bit-identical" acceptance gate.
#[test]
fn paper_suite_wire_bytes_are_pinned() {
    let (mut tx, mut rx) = pair(suite_cfg(CipherSuite::Paper), suite_cfg(CipherSuite::Paper));
    let pd = tx.send(7, dgram(b"golden paper datagram"), true).unwrap();
    let wire = pd.encode_payload();
    let hex: String = wire.iter().map(|b| format!("{b:02x}")).collect();
    assert_eq!(hex, GOLDEN_PAPER_WIRE_HEX, "paper-suite wire drifted");
    // The pin is of real, openable bytes — not a stale constant.
    let got = rx.receive(pd).unwrap();
    assert_eq!(got.body, b"golden paper datagram".to_vec());
}

/// Regression for the `mac_truncate = Some(0)` forgery: a zero-length
/// shipped MAC compares vacuously equal, so every forged datagram
/// verified. Config validation now rejects sub-minimum truncation and
/// normalisation clamps it; either way at least [`MIN_SHIPPED_MAC`]
/// bytes ship and tampering is caught on the structured receive path.
#[test]
fn mac_truncate_zero_forgery_stays_closed() {
    // Explicit validation rejects the degenerate configs outright.
    for n in 0..MIN_SHIPPED_MAC {
        let cfg = FbsConfig {
            mac_truncate: Some(n),
            ..FbsConfig::default()
        };
        assert!(
            cfg.validate().is_err(),
            "mac_truncate Some({n}) must fail validation"
        );
    }
    assert!(FbsConfig {
        mac_truncate: Some(MIN_SHIPPED_MAC),
        ..FbsConfig::default()
    }
    .validate()
    .is_ok());

    // Normalisation clamps instead of shipping a forgeable MAC, and the
    // clamped endpoint really rejects a forgery end to end.
    let cfg = FbsConfig {
        mac_truncate: Some(0),
        ..FbsConfig::default()
    }
    .normalized();
    assert_eq!(cfg.mac_truncate, Some(MIN_SHIPPED_MAC));
    let (mut tx, mut rx) = pair(cfg.clone(), cfg);
    let mut pd = tx.send(1, dgram(b"forgery target"), true).unwrap();
    // Clean copy of the same flow still works afterwards, so start with
    // the forgery: flip one ciphertext byte.
    pd.body[0] ^= 0x80;
    assert!(
        rx.receive(pd).is_err(),
        "tampered datagram must be rejected under clamped truncation"
    );
    let pd = tx.send(1, dgram(b"honest datagram"), true).unwrap();
    assert_eq!(rx.receive(pd).unwrap().body, b"honest datagram".to_vec());
}

/// Pinned by `paper_suite_wire_bytes_are_pinned`; regenerate only for a
/// deliberate, documented wire-format change.
const GOLDEN_PAPER_WIRE_HEX: &str = "0000000000000007cd9f4061000002dd000110000000001580ff5904372d62580abe3f77e1fae56fdfb73f00026e063f69a738c02ab627762b642832ae161c81";
